//! E9 (slide 51): discrete/hybrid optimization — the `innodb_flush_method`
//! categorical. Compares one-hot GP-BO, SMAC's forest, and a pure
//! multi-armed bandit over the six flush methods (all other knobs fixed at
//! a tuned base).

use crate::report::{f, Report};
use autotune::{Objective, Target};
use autotune_optimizer::bandit::{Bandit, BanditPolicy};
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use autotune_sim::{DbmsSim, Environment, Workload};
use autotune_space::{Param, Space};
use rand::rngs::StdRng;
use rand::SeedableRng;

const METHODS: [&str; 6] = [
    "fsync",
    "O_DSYNC",
    "O_DIRECT",
    "O_DIRECT_NO_FSYNC",
    "littlesync",
    "nosync",
];

/// Write-heavy target exposing only the flush knob + one continuous knob.
fn flush_target() -> Target {
    Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::ycsb_a(2_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    )
}

/// Scores one flush method with everything else fixed.
fn eval_method(target: &Target, method: &str, rng: &mut StdRng) -> f64 {
    let cfg = target
        .space()
        .default_config()
        .with("buffer_pool_gb", 8.0)
        .with("flush_method", method);
    target.evaluate(&cfg, rng).cost
}

/// Runs the experiment.
pub fn run() -> Report {
    let target = flush_target();
    let mut rng = StdRng::seed_from_u64(0);
    // Ground truth ranking by brute force (20 repeats each).
    let mut truth: Vec<(&str, f64)> = METHODS
        .iter()
        .map(|m| {
            let mean = (0..20)
                .map(|_| eval_method(&target, m, &mut rng))
                .sum::<f64>()
                / 20.0;
            (*m, mean)
        })
        .collect();
    truth.sort_by(|a, b| a.1.total_cmp(&b.1));
    // "nosync" is unsafe-but-fastest; the *durable* optimum is the best
    // of the safe methods. We let optimizers find the global optimum.
    let true_best = truth[0].0;

    // Bandit over the categorical.
    let budget = 36;
    let mut bandit = Bandit::new(METHODS.len(), BanditPolicy::Ucb { c: 1.0 });
    let mut rng_b = StdRng::seed_from_u64(1);
    for _ in 0..budget {
        let arm = bandit.select(&mut rng_b);
        let cost = eval_method(&target, METHODS[arm], &mut rng_b);
        bandit.update(arm, cost);
    }
    let bandit_pick = METHODS[bandit.greedy_arm()];

    // One-hot GP and SMAC over a 2-knob hybrid space.
    let space = Space::builder()
        .add(Param::float("buffer_pool_gb", 4.0, 12.0))
        .add(Param::categorical("flush_method", &METHODS))
        .build()
        .expect("valid space");
    let run_opt = |mut opt: Box<dyn Optimizer>, seed: u64| -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..budget {
            let c = opt.suggest(&mut rng);
            let full = target
                .space()
                .default_config()
                .with(
                    "buffer_pool_gb",
                    c.get_f64("buffer_pool_gb").expect("knob present"),
                )
                .with(
                    "flush_method",
                    c.get_str("flush_method").expect("knob present"),
                );
            let cost = target.evaluate(&full, &mut rng).cost;
            opt.observe(&c, cost);
        }
        opt.best()
            .expect("budget > 0")
            .config
            .get_str("flush_method")
            .expect("categorical present")
            .to_string()
    };
    let gp_pick = run_opt(Box::new(BayesianOptimizer::gp(space.clone())), 2);
    let smac_pick = run_opt(Box::new(BayesianOptimizer::smac(space)), 3);

    let rows: Vec<Vec<String>> = truth
        .iter()
        .map(|(m, cost)| vec![m.to_string(), format!("{} ms", f(*cost, 4))])
        .chain([
            vec!["bandit picked".into(), bandit_pick.to_string()],
            vec!["gp_onehot picked".into(), gp_pick.clone()],
            vec!["smac picked".into(), smac_pick.clone()],
        ])
        .collect();

    // Accept the true best or the runner-up (they are close).
    let acceptable = [truth[0].0, truth[1].0];
    let ok = |pick: &str| acceptable.contains(&pick);
    let shape_holds = ok(bandit_pick) && ok(&gp_pick) && ok(&smac_pick);
    Report {
        id: "E9",
        title: "Discrete/hybrid optimization: innodb_flush_method (slide 51)",
        headers: vec!["method / optimizer", "mean latency / pick"],
        rows,
        paper_claim: "bandits and alternative surrogates both handle categorical knobs",
        measured: format!(
            "true best '{true_best}'; picks: bandit '{bandit_pick}', GP '{gp_pick}', SMAC '{smac_pick}'"
        ),
        shape_holds,
    }
}

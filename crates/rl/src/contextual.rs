//! Contextual bandits (tutorial slides 82-83).
//!
//! Workload-aware online tuning: each decision sees a *context* vector
//! (workload features, requests/sec, data size) and must pick an arm
//! (configuration). [`LinUcb`] assumes linear reward in the context with
//! per-arm ridge-regression posteriors; [`ContextualEpsilonGreedy`] is the
//! simple baseline.
//!
//! Reward convention: **maximize**.

use crate::{Result, RlError};
use autotune_linalg::{Cholesky, Matrix};
use rand::Rng;

/// LinUCB: per-arm linear payoff model with an optimism bonus
/// (Li et al. 2010, used by OPPerTune-style tuners).
#[derive(Debug)]
pub struct LinUcb {
    n_arms: usize,
    dim: usize,
    /// Exploration weight α.
    alpha: f64,
    /// Per-arm ridge Gram matrix `A = λI + Σ x xᵀ`.
    a: Vec<Matrix>,
    /// Per-arm response vector `b = Σ r x`.
    b: Vec<Vec<f64>>,
}

impl LinUcb {
    /// Creates a LinUCB policy. `alpha` scales the exploration bonus;
    /// `ridge` is the regularization λ.
    pub fn new(n_arms: usize, dim: usize, alpha: f64, ridge: f64) -> Self {
        assert!(n_arms > 0 && dim > 0, "dimensions must be positive");
        assert!(ridge > 0.0, "ridge must be positive");
        let mut eye = Matrix::identity(dim);
        eye = eye.scale(ridge);
        LinUcb {
            n_arms,
            dim,
            alpha,
            a: vec![eye; n_arms],
            b: vec![vec![0.0; dim]; n_arms],
        }
    }

    /// Number of arms.
    pub fn n_arms(&self) -> usize {
        self.n_arms
    }

    fn check_context(&self, x: &[f64]) -> Result<()> {
        if x.len() != self.dim {
            return Err(RlError::FeatureDimension {
                expected: self.dim,
                actual: x.len(),
            });
        }
        Ok(())
    }

    /// UCB score of one arm at context `x`: `θ̂ᵀx + α √(xᵀA⁻¹x)`.
    pub fn score(&self, arm: usize, x: &[f64]) -> Result<f64> {
        self.check_context(x)?;
        if arm >= self.n_arms {
            return Err(RlError::IndexOutOfRange {
                what: "arm",
                index: arm,
                bound: self.n_arms,
            });
        }
        let chol = Cholesky::new(&self.a[arm]).expect("ridge Gram matrix is SPD"); // lint: allow(D5) ridge term keeps the Gram matrix SPD
        let theta = chol.solve_vec(&self.b[arm]);
        let a_inv_x = chol.solve_vec(x);
        let mean = autotune_linalg::dot(&theta, x);
        let bonus = self.alpha * autotune_linalg::dot(x, &a_inv_x).max(0.0).sqrt();
        Ok(mean + bonus)
    }

    /// Selects the arm with the highest UCB score at context `x`.
    pub fn select(&self, x: &[f64]) -> Result<usize> {
        self.check_context(x)?;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for arm in 0..self.n_arms {
            let s = self.score(arm, x)?;
            if s > best_score {
                best_score = s;
                best = arm;
            }
        }
        Ok(best)
    }

    /// Records the observed reward for pulling `arm` at context `x`.
    pub fn update(&mut self, arm: usize, x: &[f64], reward: f64) -> Result<()> {
        self.check_context(x)?;
        if arm >= self.n_arms {
            return Err(RlError::IndexOutOfRange {
                what: "arm",
                index: arm,
                bound: self.n_arms,
            });
        }
        if reward.is_nan() {
            return Ok(());
        }
        for i in 0..self.dim {
            for j in 0..self.dim {
                self.a[arm][(i, j)] += x[i] * x[j];
            }
            self.b[arm][i] += reward * x[i];
        }
        Ok(())
    }
}

/// ε-greedy contextual bandit with per-arm linear models — the simple
/// baseline LinUCB is measured against.
#[derive(Debug)]
pub struct ContextualEpsilonGreedy {
    inner: LinUcb,
    epsilon: f64,
}

impl ContextualEpsilonGreedy {
    /// Creates an ε-greedy contextual bandit.
    pub fn new(n_arms: usize, dim: usize, epsilon: f64, ridge: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        ContextualEpsilonGreedy {
            // alpha = 0 disables the UCB bonus: scores are plain means.
            inner: LinUcb::new(n_arms, dim, 0.0, ridge),
            epsilon,
        }
    }

    /// Selects an arm: uniform with probability ε, otherwise greedy.
    pub fn select(&self, x: &[f64], rng: &mut impl Rng) -> Result<usize> {
        if rng.gen::<f64>() < self.epsilon {
            Ok(rng.gen_range(0..self.inner.n_arms()))
        } else {
            self.inner.select(x)
        }
    }

    /// Records an observed reward.
    pub fn update(&mut self, arm: usize, x: &[f64], reward: f64) -> Result<()> {
        self.inner.update(arm, x, reward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two contexts, two arms, payoffs flipped per context.
    fn contextual_world(arm: usize, ctx: &[f64], rng: &mut StdRng) -> f64 {
        let good = (ctx[0] > 0.5 && arm == 0) || (ctx[1] > 0.5 && arm == 1);
        let base = if good { 1.0 } else { 0.0 };
        base + 0.1 * rng.gen::<f64>()
    }

    #[test]
    fn linucb_learns_context_dependent_arms() {
        let mut policy = LinUcb::new(2, 2, 0.5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let contexts = [[1.0, 0.0], [0.0, 1.0]];
        for step in 0..400 {
            let ctx = contexts[step % 2];
            let arm = policy.select(&ctx).unwrap();
            let r = contextual_world(arm, &ctx, &mut rng);
            policy.update(arm, &ctx, r).unwrap();
        }
        assert_eq!(policy.select(&contexts[0]).unwrap(), 0);
        assert_eq!(policy.select(&contexts[1]).unwrap(), 1);
    }

    #[test]
    fn linucb_bonus_shrinks_with_data() {
        let mut policy = LinUcb::new(1, 2, 1.0, 1.0);
        let ctx = [1.0, 0.5];
        let before = policy.score(0, &ctx).unwrap();
        for _ in 0..100 {
            policy.update(0, &ctx, 0.0).unwrap();
        }
        let after = policy.score(0, &ctx).unwrap();
        // All rewards are 0, so the score is purely the bonus; it must fall.
        assert!(after < before * 0.2, "bonus {after} vs initial {before}");
    }

    #[test]
    fn epsilon_greedy_learns_with_exploration() {
        let mut policy = ContextualEpsilonGreedy::new(2, 2, 0.1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let contexts = [[1.0, 0.0], [0.0, 1.0]];
        let mut correct = 0;
        for step in 0..600 {
            let ctx = contexts[step % 2];
            let arm = policy.select(&ctx, &mut rng).unwrap();
            let r = contextual_world(arm, &ctx, &mut rng);
            policy.update(arm, &ctx, r).unwrap();
            if step >= 400 {
                let good = (ctx[0] > 0.5 && arm == 0) || (ctx[1] > 0.5 && arm == 1);
                if good {
                    correct += 1;
                }
            }
        }
        // Late-phase accuracy should be near 1-ε.
        assert!(correct > 150, "late accuracy too low: {correct}/200");
    }

    #[test]
    fn dimension_checks() {
        let mut policy = LinUcb::new(2, 3, 1.0, 1.0);
        assert!(matches!(
            policy.select(&[1.0]),
            Err(RlError::FeatureDimension { .. })
        ));
        assert!(matches!(
            policy.update(5, &[1.0, 0.0, 0.0], 1.0),
            Err(RlError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn nan_reward_ignored() {
        let mut policy = LinUcb::new(1, 1, 1.0, 1.0);
        let before = policy.score(0, &[1.0]).unwrap();
        policy.update(0, &[1.0], f64::NAN).unwrap();
        let after = policy.score(0, &[1.0]).unwrap();
        assert_eq!(before, after);
    }
}

//! Nelder–Mead downhill simplex, for local refinement of a tuned
//! configuration (the last mile after a global search).
//!
//! Runs in the unit cube; reflection/expansion/contraction points are
//! clamped to bounds. Ask/tell adaptation: the simplex algorithm is driven
//! lazily, emitting one probe point per `suggest` call.

use crate::{BestTracker, Observation, Optimizer};
use autotune_space::{Config, Space};
use rand::RngCore;

/// Phase of the simplex update awaiting an evaluation.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Still evaluating the initial simplex; index of the next vertex.
    Init(usize),
    /// Awaiting the reflection point's value.
    Reflect,
    /// Awaiting the expansion point's value.
    Expand,
    /// Awaiting the contraction point's value.
    Contract,
    /// Shrinking: evaluating replacement vertices one at a time.
    Shrink(usize),
}

/// Nelder–Mead simplex optimizer.
#[derive(Debug)]
pub struct NelderMead {
    space: Space,
    /// Simplex vertices (unit cube) with values; NaN value = unevaluated.
    simplex: Vec<(Vec<f64>, f64)>,
    phase: Phase,
    /// Point whose evaluation we are waiting for.
    probe: Vec<f64>,
    /// Value of the reflected point (needed in the expand branch).
    reflected: Option<(Vec<f64>, f64)>,
    tracker: BestTracker,
}

impl NelderMead {
    /// Standard coefficients.
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    /// Creates a simplex around `start` with edge length `step` (unit-cube
    /// units).
    pub fn new(space: Space, start: &Config, step: f64) -> Self {
        let x0 = space
            .encode_unit(start)
            .expect("start config must belong to the space"); // lint: allow(D5) documented precondition on the start config
        let d = x0.len();
        let mut simplex = vec![(x0.clone(), f64::NAN)];
        for i in 0..d {
            let mut v = x0.clone();
            v[i] = (v[i] + step).min(1.0);
            if (v[i] - x0[i]).abs() < 1e-12 {
                v[i] = (x0[i] - step).max(0.0);
            }
            simplex.push((v, f64::NAN));
        }
        let probe = simplex[0].0.clone();
        NelderMead {
            space,
            simplex,
            phase: Phase::Init(0),
            probe,
            reflected: None,
            tracker: BestTracker::default(),
        }
    }

    fn decode(&self, x: &[f64]) -> Config {
        self.space
            .decode_unit(x)
            .expect("unit points of space dimension decode") // lint: allow(D5) unit points carry the space dimension
    }

    /// Centroid of all vertices except the worst (last after sorting).
    fn centroid(&self) -> Vec<f64> {
        let n = self.simplex.len() - 1;
        let d = self.simplex[0].0.len();
        let mut c = vec![0.0; d];
        for (v, _) in &self.simplex[..n] {
            autotune_linalg::axpy(1.0, v, &mut c);
        }
        for x in c.iter_mut() {
            *x /= n as f64;
        }
        c
    }

    fn point_along(&self, coeff: f64) -> Vec<f64> {
        // centroid + coeff * (centroid - worst), clamped.
        let c = self.centroid();
        let worst = &self.simplex.last().expect("simplex non-empty").0; // lint: allow(D5) simplex holds d+1 points by construction
        c.iter()
            .zip(worst.iter())
            .map(|(&ci, &wi)| (ci + coeff * (ci - wi)).clamp(0.0, 1.0))
            .collect()
    }

    fn sort_simplex(&mut self) {
        self.simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    }

    /// Decides the next probe after the simplex is fully evaluated.
    fn plan_next(&mut self) {
        self.sort_simplex();
        self.probe = self.point_along(Self::ALPHA);
        self.phase = Phase::Reflect;
    }
}

impl Optimizer for NelderMead {
    fn suggest(&mut self, _rng: &mut dyn RngCore) -> Config {
        match self.phase {
            Phase::Init(i) => {
                self.probe = self.simplex[i].0.clone();
                self.decode(&self.probe)
            }
            Phase::Shrink(i) => {
                let best = self.simplex[0].0.clone();
                let target = &self.simplex[i].0;
                self.probe = best
                    .iter()
                    .zip(target)
                    .map(|(&b, &t)| b + Self::SIGMA * (t - b))
                    .collect();
                self.decode(&self.probe)
            }
            _ => self.decode(&self.probe),
        }
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
        let value = if value.is_nan() { f64::INFINITY } else { value };
        match self.phase {
            Phase::Init(i) => {
                self.simplex[i].1 = value;
                if i + 1 < self.simplex.len() {
                    self.phase = Phase::Init(i + 1);
                } else {
                    self.plan_next();
                }
            }
            Phase::Reflect => {
                let best = self.simplex[0].1;
                let second_worst = self.simplex[self.simplex.len() - 2].1;
                if value < best {
                    // Try expanding further.
                    self.reflected = Some((self.probe.clone(), value));
                    self.probe = self.point_along(Self::GAMMA);
                    self.phase = Phase::Expand;
                } else if value < second_worst {
                    // Accept reflection, replace worst.
                    let worst = self.simplex.len() - 1;
                    self.simplex[worst] = (self.probe.clone(), value);
                    self.plan_next();
                } else {
                    // Contract toward the centroid.
                    self.reflected = Some((self.probe.clone(), value));
                    self.probe = self.point_along(-Self::RHO);
                    self.phase = Phase::Contract;
                }
            }
            Phase::Expand => {
                let worst = self.simplex.len() - 1;
                let (rx, rv) = self.reflected.take().expect("expand follows reflect"); // lint: allow(D5) state machine sets reflected before Expand
                if value < rv {
                    self.simplex[worst] = (self.probe.clone(), value);
                } else {
                    self.simplex[worst] = (rx, rv);
                }
                self.plan_next();
            }
            Phase::Contract => {
                let worst_idx = self.simplex.len() - 1;
                let worst_val = self.simplex[worst_idx].1;
                let reflected_val = self.reflected.take().map_or(f64::INFINITY, |(_, v)| v);
                if value < worst_val.min(reflected_val) {
                    self.simplex[worst_idx] = (self.probe.clone(), value);
                    self.plan_next();
                } else {
                    // Shrink everything toward the best vertex.
                    self.phase = Phase::Shrink(1);
                }
            }
            Phase::Shrink(i) => {
                self.simplex[i] = (self.probe.clone(), value);
                if i + 1 < self.simplex.len() {
                    self.phase = Phase::Shrink(i + 1);
                } else {
                    self.plan_next();
                }
            }
        }
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        "nelder_mead"
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};

    #[test]
    fn refines_to_sphere_optimum() {
        let space = sphere_space();
        let start = space.default_config().with("x", -1.0).with("y", 1.5);
        let mut opt = NelderMead::new(space, &start, 0.2);
        let best = run_loop(&mut opt, sphere, 120, 1);
        assert!(best < 1e-3, "Nelder-Mead best {best}");
    }

    #[test]
    fn quadratic_1d_converges_fast() {
        use autotune_space::{Param, Space};
        let space = Space::builder()
            .add(Param::float("x", 0.0, 10.0))
            .build()
            .unwrap();
        let start = space.default_config().with("x", 9.0);
        let mut opt = NelderMead::new(space, &start, 0.1);
        let best = run_loop(&mut opt, |c| (c.get_f64("x").unwrap() - 3.0).powi(2), 60, 2);
        assert!(best < 1e-3, "best {best}");
    }

    #[test]
    fn all_probes_in_bounds() {
        let space = sphere_space();
        // Start at a corner so reflections try to escape the box.
        let start = space.default_config().with("x", 2.0).with("y", 2.0);
        let mut opt = NelderMead::new(space.clone(), &start, 0.3);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        for _ in 0..80 {
            let c = opt.suggest(&mut rng);
            assert!(space.validate_config(&c).is_ok());
            let v = sphere(&c);
            opt.observe(&c, v);
        }
    }

    #[test]
    fn nan_handled_as_infinite() {
        let space = sphere_space();
        let start = space.default_config();
        let mut opt = NelderMead::new(space, &start, 0.2);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        for i in 0..30 {
            let c = opt.suggest(&mut rng);
            let v = if i % 7 == 0 { f64::NAN } else { sphere(&c) };
            opt.observe(&c, v);
        }
        // Simplex values stay finite-or-inf, never NaN (sort would break).
        assert!(opt.simplex.iter().all(|(_, v)| !v.is_nan()));
    }
}

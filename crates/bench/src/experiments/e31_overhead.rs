//! E31 (systems challenges): tuner overhead vs trial cost. The "tuning
//! the tuner" question — how much real compute does the optimizer itself
//! burn per suggestion, and does it matter next to the benchmark time a
//! trial costs? Model-free search suggests in microseconds; GP-based BO
//! pays cubic-in-observations suggestion costs plus periodic
//! hyperparameter refits, yet even that stays negligible against
//! seconds-long trials. Measured with the telemetry subsystem's injected
//! wall timer, so the virtual-clock campaign stays deterministic while
//! the overhead histograms carry real nanoseconds.

use crate::report::{f, Report};
use autotune::executor::{Executor, OptimizerSource, SchedulePolicy};
use autotune::telemetry::{MetricsSnapshot, SpanRecorder, WallTimer};
use autotune::TrialStorage;
use autotune_optimizer::{BayesianOptimizer, Optimizer, RandomSearch};
use std::time::Instant;

const BUDGET: usize = 40;

/// A real wall timer for overhead attribution (core itself never reads
/// real time; the bench harness injects this).
struct StdTimer(Instant);

impl WallTimer for StdTimer {
    fn now_ns(&mut self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

fn run_instrumented(mut opt: Box<dyn Optimizer>, record_spans: bool) -> (MetricsSnapshot, String) {
    let target = super::dbms_target();
    let mut source = OptimizerSource::new(opt.as_mut(), BUDGET);
    let mut storage = TrialStorage::new();
    let mut spans = SpanRecorder::new();
    let report = {
        let mut exec = Executor::new(&target, SchedulePolicy::Sequential)
            .with_timer(Box::new(StdTimer(Instant::now())));
        if record_spans {
            exec = exec.with_subscriber(Box::new(&mut spans));
        }
        exec.run(&mut source, &mut storage, 3_100)
    };
    let trace = if record_spans {
        spans.validate_all().expect("well-formed spans");
        spans.to_chrome_trace()
    } else {
        String::new()
    };
    (report.metrics, trace)
}

fn row(label: &str, m: &MetricsSnapshot) -> Vec<String> {
    // Overhead share: real tuner seconds per virtual benchmark second.
    let share = m.tuner_wall_ns as f64 / 1e9 / m.wall_clock_s.max(1e-9);
    vec![
        label.into(),
        format!("{} us", f(m.suggest_ns.mean() / 1e3, 1)),
        format!("{} us", f(m.suggest_ns.quantile(0.95) / 1e3, 1)),
        format!("{} us", f(m.observe_ns.mean() / 1e3, 1)),
        m.n_refits.to_string(),
        format!("{} ms", f(m.tuner_wall_ns as f64 / 1e6, 2)),
        format!("{:.6}%", share * 100.0),
    ]
}

/// Runs the experiment.
pub fn run() -> Report {
    let (random, _) = run_instrumented(
        Box::new(RandomSearch::new(super::dbms_target().space().clone())),
        false,
    );
    let (bo, trace) = run_instrumented(
        Box::new(BayesianOptimizer::gp(super::dbms_target().space().clone())),
        true,
    );

    let trace_path = std::path::Path::new("target").join("e31_trace.json");
    let trace_note = match std::fs::write(&trace_path, &trace) {
        Ok(()) => format!("trace: {}", trace_path.display()),
        Err(e) => format!("trace not written ({e})"),
    };

    let rows = vec![row("random search", &random), row("BO (GP)", &bo)];

    // Shape: BO's model fitting makes suggestions far costlier than
    // random's (≥5x mean), it refits hyperparameters at least once, and
    // even so the tuner's real compute stays under 10% of the virtual
    // benchmark seconds a campaign spends.
    let bo_costlier = bo.suggest_ns.mean() >= 5.0 * random.suggest_ns.mean().max(1.0);
    let refits = bo.n_refits >= 1;
    let negligible = bo.tuner_wall_ns as f64 / 1e9 <= 0.10 * bo.wall_clock_s;
    Report {
        id: "E31",
        title: "Tuner overhead vs trial cost (telemetry wall timer)",
        headers: vec![
            "optimizer",
            "suggest mean",
            "suggest p95",
            "observe mean",
            "refits",
            "tuner total",
            "overhead/trial-s",
        ],
        rows,
        paper_claim: "model-based suggestion costs orders of magnitude more compute than random \
                      search, but stays negligible against benchmark-scale trial times",
        measured: format!(
            "BO suggest {} us vs random {} us ({}x), {} refits, tuner share {:.5}% of virtual \
             time; {trace_note}",
            f(bo.suggest_ns.mean() / 1e3, 1),
            f(random.suggest_ns.mean() / 1e3, 1),
            f(bo.suggest_ns.mean() / random.suggest_ns.mean().max(1.0), 0),
            bo.n_refits,
            bo.tuner_wall_ns as f64 / 1e9 / bo.wall_clock_s.max(1e-9) * 100.0,
        ),
        shape_holds: bo_costlier && refits && negligible,
    }
}

//! The sharded config cache.

use crate::key::fingerprint_key;
use crate::{CacheError, Result};
use autotune::sync::PoisonFree;
use autotune_space::Config;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use autotune_wid::{Fingerprint, StreamAssignment, StreamingClusters};
use serde::{Deserialize, Serialize};

/// Snapshot format version, bumped on incompatible layout changes.
const SNAPSHOT_VERSION: u32 = 1;

/// Shape and policy of a [`ShardedCache`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Streaming-cluster spawn threshold (Euclidean distance): a lookup
    /// farther than this from every family centroid is a new family.
    pub threshold: f64,
    /// Number of independent shards; families map to shards by
    /// `family % n_shards`.
    pub n_shards: usize,
    /// Soft per-shard entry capacity. Exceeding it triggers eviction;
    /// "soft" because protected entries (sole entry of a hot family) are
    /// never evicted even if the shard stays over capacity.
    pub capacity_per_shard: usize,
    /// A family counts as *hot* (its last entry is protected) if it served
    /// a hit within this many logical ticks.
    pub hot_window: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            threshold: 1.0,
            n_shards: 16,
            capacity_per_shard: 64,
            hot_window: 4096,
        }
    }
}

/// A successful cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheHit {
    /// Workload family that served the hit.
    pub family: usize,
    /// Exact fingerprint key of the serving entry.
    pub key: u64,
    /// The cached configuration.
    pub config: Config,
    /// Cost observed when the entry was tuned (lower is better).
    pub cost: f64,
    /// True when the serving entry's key differs from the lookup's exact
    /// key — the family incumbent answered for a sibling tenant.
    pub borrowed: bool,
}

/// Outcome of [`ShardedCache::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// Served from cache.
    Hit(CacheHit),
    /// No usable entry.
    Miss {
        /// `Some(family)` when the fingerprint routed to an existing
        /// family that has no entry yet (campaign in flight or evicted);
        /// `None` when it would spawn a new family.
        family: Option<usize>,
    },
}

/// Monotonic counters describing cache behavior, mirrored into
/// `MetricsSnapshot` by the serve layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries evicted by the LRU + quality policy.
    pub evictions: u64,
    /// Entries inserted by campaign backfill.
    pub backfills: u64,
    /// Workload families spawned by the streaming clustering.
    pub families: u64,
    /// Live entries across all shards.
    pub entries: u64,
    /// Current logical tick (advances once per lookup).
    pub tick: u64,
}

/// One cached entry. LRU bookkeeping is atomic so the hit path runs under
/// a shard *read* lock: concurrent readers never block each other, and a
/// writer (backfill/eviction) excludes them only for the insert itself.
#[derive(Debug)]
struct Entry {
    features: Vec<f64>,
    config: Config,
    cost: f64,
    hits: AtomicU64,
    last_used: AtomicU64,
    inserted_at: u64,
}

/// Mutable interior of one shard. `entries` is keyed `(family, key)` so a
/// family's entries are contiguous under range scans; `incumbent` caches
/// the lowest-cost entry per family so a hit is two `BTreeMap` gets.
#[derive(Debug, Default)]
struct ShardInner {
    entries: BTreeMap<(u64, u64), Entry>,
    /// family → (key, cost) of its lowest-cost entry.
    incumbent: BTreeMap<u64, (u64, f64)>,
    /// family → logical tick of its most recent hit. Atomic so the read
    /// path can refresh heat without a write lock.
    heat: BTreeMap<u64, AtomicU64>,
}

/// The fingerprint-keyed config cache. See the crate docs for the design;
/// all methods take `&self` and the structure is `Sync`, so one instance
/// can be shared across server threads behind an `Arc`.
#[derive(Debug)]
pub struct ShardedCache {
    config: CacheConfig,
    clusters: RwLock<StreamingClusters>,
    shards: Vec<RwLock<ShardInner>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    backfills: AtomicU64,
}

// Lock poisoning recovery went through per-crate helpers here until PR 10;
// acquisitions now use `autotune::sync::PoisonFree` (`.pread()`/`.pwrite()`),
// which is sound for the same reason the helpers were: cache state is plain
// data, and every mutation either fully inserts or fully removes an entry.

impl ShardedCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics if `n_shards` or `capacity_per_shard` is zero, or the
    /// clustering threshold is not finite and positive.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.n_shards > 0, "cache needs at least one shard");
        assert!(
            config.capacity_per_shard > 0,
            "cache shards need capacity for at least one entry"
        );
        let clusters = RwLock::new(StreamingClusters::new(config.threshold));
        let shards = (0..config.n_shards)
            .map(|_| RwLock::new(ShardInner::default()))
            .collect();
        ShardedCache {
            config,
            clusters,
            shards,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            backfills: AtomicU64::new(0),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn shard_of(&self, family: u64) -> &RwLock<ShardInner> {
        &self.shards[(family as usize) % self.shards.len()]
    }

    /// Looks up a fingerprint. Advances the logical tick, routes to the
    /// nearest family within the threshold, and serves the family
    /// incumbent (preferring an exact-key entry when one exists). Hits
    /// refresh the entry's LRU tick and the family's heat; the clustering
    /// model is *not* updated here — misses feed it via
    /// [`ShardedCache::admit_family`], keeping this path read-only.
    pub fn lookup(&self, features: &[f64]) -> CacheLookup {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let fp = Fingerprint::from_features(features.to_vec());
        let family = self.clusters.pread().classify(&fp).map(|(f, _)| f);
        let Some(family) = family else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss { family: None };
        };
        let f = family as u64;
        let inner = self.shard_of(f).pread();
        let key = fingerprint_key(features);
        // Exact entry first, else the family incumbent.
        let serving = if inner.entries.contains_key(&(f, key)) {
            Some(key)
        } else {
            inner.incumbent.get(&f).map(|&(k, _)| k)
        };
        let Some(serve_key) = serving else {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss {
                family: Some(family),
            };
        };
        let Some(entry) = inner.entries.get(&(f, serve_key)) else {
            // Incumbent index pointing at a missing entry would be a bug;
            // degrade to a miss rather than panic in the serve path.
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss {
                family: Some(family),
            };
        };
        entry.hits.fetch_add(1, Ordering::Relaxed);
        // LRU tick and family heat feed eviction decisions (a control
        // path), so the stores are Release, pairing with the Acquire
        // loads in `evict_over_capacity`. The shard RwLock alone would
        // already order them (eviction holds the write lock), but the
        // explicit pairing keeps the invariant independent of the lock.
        entry.last_used.store(tick, Ordering::Release);
        if let Some(heat) = inner.heat.get(&f) {
            heat.store(tick, Ordering::Release);
        }
        let hit = CacheHit {
            family,
            key: serve_key,
            config: entry.config.clone(),
            cost: entry.cost,
            borrowed: serve_key != key,
        };
        drop(inner);
        self.hits.fetch_add(1, Ordering::Relaxed);
        CacheLookup::Hit(hit)
    }

    /// Folds a missed fingerprint into the clustering model, spawning a
    /// new family when it is past the threshold. Call exactly once per
    /// miss (the router does) so replaying the same lookup sequence
    /// rebuilds identical centroids.
    pub fn admit_family(&self, features: &[f64]) -> StreamAssignment {
        let fp = Fingerprint::from_features(features.to_vec());
        self.clusters.pwrite().assign(&fp)
    }

    /// Backfills a tuned config for `(family, exact fingerprint)` at the
    /// given observed cost, then enforces the shard capacity via the
    /// LRU + quality eviction policy.
    pub fn insert(&self, family: usize, features: &[f64], config: Config, cost: f64) {
        let f = family as u64;
        let key = fingerprint_key(features);
        let tick = self.tick.load(Ordering::Acquire);
        let mut inner = self.shard_of(f).pwrite();
        let entry = Entry {
            features: features.to_vec(),
            config,
            cost,
            hits: AtomicU64::new(0),
            last_used: AtomicU64::new(tick),
            inserted_at: tick,
        };
        inner.entries.insert((f, key), entry);
        inner.heat.entry(f).or_insert_with(|| AtomicU64::new(tick));
        match inner.incumbent.get(&f) {
            Some(&(_, best)) if best.total_cmp(&cost).is_le() => {}
            _ => {
                inner.incumbent.insert(f, (key, cost));
            }
        }
        self.backfills.fetch_add(1, Ordering::Relaxed);
        self.evict_over_capacity(&mut inner, tick);
    }

    /// Evicts until the shard is within capacity or only protected entries
    /// remain. Victim order: least-recently-used among entries that
    /// underperform their family incumbent, then least-recently-used
    /// overall; the sole entry of a hot family is never a candidate.
    fn evict_over_capacity(&self, inner: &mut ShardInner, tick: u64) {
        while inner.entries.len() > self.config.capacity_per_shard {
            let mut family_sizes: BTreeMap<u64, usize> = BTreeMap::new();
            for &(f, _) in inner.entries.keys() {
                *family_sizes.entry(f).or_insert(0) += 1;
            }
            let hot_floor = tick.saturating_sub(self.config.hot_window);
            // Acquire pairs with the Release stores on the lookup hit
            // path: a heat/LRU refresh published before the evictor took
            // the shard write lock is always observed here.
            let protected = |f: u64| -> bool {
                family_sizes.get(&f).copied().unwrap_or(0) <= 1
                    && inner
                        .heat
                        .get(&f)
                        .map(|h| h.load(Ordering::Acquire) >= hot_floor)
                        .unwrap_or(false)
            };
            // (underperforms_incumbent, last_used, key) — BTreeMap order
            // makes the scan and tie-breaks deterministic.
            let mut victim: Option<((u64, u64), bool, u64)> = None;
            for (&k, e) in inner.entries.iter() {
                let (f, key) = k;
                if protected(f) {
                    continue;
                }
                let is_incumbent = inner.incumbent.get(&f).map(|&(ik, _)| ik) == Some(key);
                let underperforms = !is_incumbent;
                let lu = e.last_used.load(Ordering::Acquire);
                let better = match victim {
                    None => true,
                    // Underperformers strictly outrank incumbents as
                    // victims; within a class, older LRU tick wins, and
                    // the BTreeMap scan order settles exact ties.
                    Some((_, v_under, v_lu)) => {
                        (underperforms && !v_under) || (underperforms == v_under && lu < v_lu)
                    }
                };
                if better {
                    victim = Some((k, underperforms, lu));
                }
            }
            let Some(((f, key), _, _)) = victim else {
                // Everything left is the sole entry of a hot family:
                // accept the soft-capacity overflow.
                return;
            };
            inner.entries.remove(&(f, key));
            self.evictions.fetch_add(1, Ordering::Relaxed);
            // Repair the incumbent index if the victim held it.
            if inner.incumbent.get(&f).map(|&(ik, _)| ik) == Some(key) {
                let next = inner
                    .entries
                    .range((f, 0)..=(f, u64::MAX))
                    .min_by(|(_, a), (_, b)| a.cost.total_cmp(&b.cost))
                    .map(|(&(_, k), e)| (k, e.cost));
                match next {
                    Some((k, c)) => {
                        inner.incumbent.insert(f, (k, c));
                    }
                    None => {
                        inner.incumbent.remove(&f);
                    }
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.pread().entries.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed), // lint: allow(D9) monotone counter; reporting only, no decision reads it
            misses: self.misses.load(Ordering::Relaxed), // lint: allow(D9) monotone counter; reporting only, no decision reads it
            evictions: self.evictions.load(Ordering::Relaxed), // lint: allow(D9) monotone counter; reporting only, no decision reads it
            backfills: self.backfills.load(Ordering::Relaxed), // lint: allow(D9) monotone counter; reporting only, no decision reads it
            families: self.clusters.pread().len() as u64,
            entries,
            tick: self.tick.load(Ordering::Acquire),
        }
    }

    /// A copy of the clustering model (for inspection and tests).
    pub fn clusters(&self) -> StreamingClusters {
        self.clusters.pread().clone()
    }

    /// Total live entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.pread().entries.len()).sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializable deep copy of the full cache state (entries in shard
    /// then key order, so equal states snapshot to equal bytes).
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut entries = Vec::new();
        let mut heat = Vec::new();
        for shard in &self.shards {
            let inner = shard.pread();
            for (&(family, key), e) in inner.entries.iter() {
                entries.push(SnapshotEntry {
                    family,
                    key,
                    features: e.features.clone(),
                    config: e.config.clone(),
                    cost: e.cost,
                    hits: e.hits.load(Ordering::Relaxed), // lint: allow(D9) monotone per-entry counter; serialized for reporting, ordered by the shard lock
                    last_used: e.last_used.load(Ordering::Acquire),
                    inserted_at: e.inserted_at,
                });
            }
            for (&f, h) in inner.heat.iter() {
                heat.push((f, h.load(Ordering::Acquire)));
            }
        }
        CacheSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            clusters: self.clusters.pread().clone(),
            tick: self.tick.load(Ordering::Acquire),
            hits: self.hits.load(Ordering::Relaxed), // lint: allow(D9) monotone counter; snapshot equality rests on quiescence (no concurrent ops), not counter ordering
            misses: self.misses.load(Ordering::Relaxed), // lint: allow(D9) monotone counter; snapshot equality rests on quiescence (no concurrent ops), not counter ordering
            evictions: self.evictions.load(Ordering::Relaxed), // lint: allow(D9) monotone counter; snapshot equality rests on quiescence (no concurrent ops), not counter ordering
            backfills: self.backfills.load(Ordering::Relaxed), // lint: allow(D9) monotone counter; snapshot equality rests on quiescence (no concurrent ops), not counter ordering
            entries,
            heat,
        }
    }

    /// Rebuilds a cache from a snapshot, byte-identical to the original
    /// (same counters, ticks, incumbents, and clustering state).
    pub fn restore(snap: &CacheSnapshot) -> Result<Self> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(CacheError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                got: snap.version,
            });
        }
        let cache = ShardedCache::new(snap.config.clone());
        *cache.clusters.pwrite() = snap.clusters.clone();
        cache.tick.store(snap.tick, Ordering::Release);
        cache.hits.store(snap.hits, Ordering::Relaxed); // lint: allow(D9) restore runs before the cache is shared; publication happens-before comes from handing out the Arc
        cache.misses.store(snap.misses, Ordering::Relaxed); // lint: allow(D9) restore runs before the cache is shared; publication happens-before comes from handing out the Arc
        cache.evictions.store(snap.evictions, Ordering::Relaxed); // lint: allow(D9) restore runs before the cache is shared; publication happens-before comes from handing out the Arc
        cache.backfills.store(snap.backfills, Ordering::Relaxed); // lint: allow(D9) restore runs before the cache is shared; publication happens-before comes from handing out the Arc
        for e in &snap.entries {
            let mut inner = cache.shard_of(e.family).pwrite();
            inner.entries.insert(
                (e.family, e.key),
                Entry {
                    features: e.features.clone(),
                    config: e.config.clone(),
                    cost: e.cost,
                    hits: AtomicU64::new(e.hits),
                    last_used: AtomicU64::new(e.last_used),
                    inserted_at: e.inserted_at,
                },
            );
            match inner.incumbent.get(&e.family) {
                Some(&(_, best)) if best.total_cmp(&e.cost).is_le() => {}
                _ => {
                    inner.incumbent.insert(e.family, (e.key, e.cost));
                }
            }
        }
        for &(f, h) in &snap.heat {
            cache.shard_of(f).pwrite().heat.insert(f, AtomicU64::new(h));
        }
        Ok(cache)
    }
}

/// One entry of a [`CacheSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Workload family id.
    pub family: u64,
    /// Exact fingerprint key.
    pub key: u64,
    /// Feature vector the entry was keyed from.
    pub features: Vec<f64>,
    /// Cached configuration.
    pub config: Config,
    /// Tuned cost.
    pub cost: f64,
    /// Hit count.
    pub hits: u64,
    /// LRU tick of the last hit (or insert).
    pub last_used: u64,
    /// Tick at insert time.
    pub inserted_at: u64,
}

/// Full serializable cache state; see [`ShardedCache::snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Format version.
    pub version: u32,
    /// Cache shape and policy.
    pub config: CacheConfig,
    /// Streaming clustering model.
    pub clusters: StreamingClusters,
    /// Logical clock.
    pub tick: u64,
    /// Hit counter.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
    /// Eviction counter.
    pub evictions: u64,
    /// Backfill counter.
    pub backfills: u64,
    /// All live entries, shard then key order.
    pub entries: Vec<SnapshotEntry>,
    /// Per-family heat ticks.
    pub heat: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: f64, capacity: usize) -> CacheConfig {
        CacheConfig {
            threshold,
            n_shards: 4,
            capacity_per_shard: capacity,
            hot_window: 100,
        }
    }

    fn config_with(v: i64) -> Config {
        Config::new().with("knob", v)
    }

    #[test]
    fn miss_then_backfill_then_hit() {
        let cache = ShardedCache::new(cfg(1.0, 8));
        let fp = [5.0, 5.0];
        assert_eq!(cache.lookup(&fp), CacheLookup::Miss { family: None });
        let a = cache.admit_family(&fp);
        assert!(a.spawned);
        cache.insert(a.family, &fp, config_with(1), 10.0);
        match cache.lookup(&fp) {
            CacheLookup::Hit(h) => {
                assert_eq!(h.family, a.family);
                assert!(!h.borrowed);
                assert_eq!(h.config, config_with(1));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.backfills), (1, 1, 1));
    }

    #[test]
    fn sibling_tenant_borrows_incumbent() {
        let cache = ShardedCache::new(cfg(1.0, 8));
        let a = [0.0, 0.0];
        let b = [0.2, 0.0]; // same family, different exact key
        cache.lookup(&a);
        let fam = cache.admit_family(&a).family;
        cache.insert(fam, &a, config_with(1), 10.0);
        match cache.lookup(&b) {
            CacheLookup::Hit(h) => {
                assert!(h.borrowed);
                assert_eq!(h.config, config_with(1));
            }
            other => panic!("expected borrowed hit, got {other:?}"),
        }
    }

    #[test]
    fn incumbent_is_lowest_cost() {
        let cache = ShardedCache::new(cfg(2.0, 8));
        let a = [0.0];
        let b = [0.5];
        cache.lookup(&a);
        let fam = cache.admit_family(&a).family;
        cache.insert(fam, &a, config_with(1), 10.0);
        cache.insert(fam, &b, config_with(2), 5.0);
        // A third tenant in the family gets the cost-5 incumbent.
        match cache.lookup(&[0.2]) {
            CacheLookup::Hit(h) => assert_eq!(h.config, config_with(2)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn eviction_prefers_underperformers_lru_first() {
        let cache = ShardedCache::new(CacheConfig {
            threshold: 0.4,
            n_shards: 1,
            capacity_per_shard: 2,
            hot_window: 1000,
        });
        // Two families, far apart; family 0 has the incumbent + a worse entry.
        let f0a = [0.0];
        let f0b = [0.1];
        let f1 = [10.0];
        cache.lookup(&f0a);
        let fam0 = cache.admit_family(&f0a).family;
        cache.lookup(&f1);
        let fam1 = cache.admit_family(&f1).family;
        cache.insert(fam0, &f0a, config_with(1), 5.0); // incumbent
        cache.insert(fam0, &f0b, config_with(2), 9.0); // underperformer
        cache.insert(fam1, &f1, config_with(3), 7.0); // third entry: over capacity
        assert_eq!(cache.stats().evictions, 1);
        // The underperformer died; incumbent and family-1 entry live.
        assert!(matches!(cache.lookup(&f0a), CacheLookup::Hit(_)));
        assert!(matches!(cache.lookup(&f1), CacheLookup::Hit(_)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sole_entry_of_hot_family_survives() {
        let cache = ShardedCache::new(CacheConfig {
            threshold: 0.4,
            n_shards: 1,
            capacity_per_shard: 1,
            hot_window: 1000,
        });
        let f0 = [0.0];
        let f1 = [10.0];
        cache.lookup(&f0);
        let fam0 = cache.admit_family(&f0).family;
        cache.insert(fam0, &f0, config_with(1), 5.0);
        assert!(matches!(cache.lookup(&f0), CacheLookup::Hit(_))); // keeps family 0 hot
        cache.lookup(&f1);
        let fam1 = cache.admit_family(&f1).family;
        cache.insert(fam1, &f1, config_with(2), 7.0);
        // Both families are sole + hot: soft overflow, no eviction.
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(&f0), CacheLookup::Hit(_)));
        assert!(matches!(cache.lookup(&f1), CacheLookup::Hit(_)));
    }

    #[test]
    fn cold_sole_entry_is_evictable() {
        let cache = ShardedCache::new(CacheConfig {
            threshold: 0.4,
            n_shards: 1,
            capacity_per_shard: 1,
            hot_window: 2,
        });
        let f0 = [0.0];
        let f1 = [10.0];
        cache.lookup(&f0);
        let fam0 = cache.admit_family(&f0).family;
        cache.insert(fam0, &f0, config_with(1), 5.0);
        // Let family 0 go cold: many ticks with no hit on it.
        for _ in 0..10 {
            cache.lookup(&[20.0]);
        }
        cache.lookup(&f1);
        let fam1 = cache.admit_family(&f1).family;
        cache.insert(fam1, &f1, config_with(2), 7.0);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 1);
        assert!(matches!(cache.lookup(&f1), CacheLookup::Hit(_)));
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let cache = ShardedCache::new(cfg(1.0, 4));
        for i in 0..6 {
            let fp = [i as f64 * 5.0];
            cache.lookup(&fp);
            let fam = cache.admit_family(&fp).family;
            cache.insert(fam, &fp, config_with(i), 10.0 - i as f64);
            cache.lookup(&fp);
        }
        let snap = cache.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheSnapshot = serde_json::from_str(&json).unwrap();
        let restored = ShardedCache::restore(&back).unwrap();
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(
            serde_json::to_string(&restored.snapshot()).unwrap(),
            json,
            "snapshot bytes must round-trip"
        );
        // Behavior equivalence: same lookups give same answers.
        for i in 0..6 {
            let fp = [i as f64 * 5.0];
            assert_eq!(cache.lookup(&fp), restored.lookup(&fp));
        }
    }

    #[test]
    fn restore_rejects_future_versions() {
        let cache = ShardedCache::new(cfg(1.0, 4));
        let mut snap = cache.snapshot();
        snap.version = 99;
        assert!(matches!(
            ShardedCache::restore(&snap),
            Err(CacheError::VersionMismatch { got: 99, .. })
        ));
    }
}

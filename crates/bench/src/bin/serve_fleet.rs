//! Perf trajectory for the serving layer: campaigns/sec vs. worker count.
//!
//! Drives the E33 mixed fleet (256 campaigns; see
//! `experiments::e33_serve::fleet_specs`) through a [`CampaignRegistry`]
//! at several pool sizes and records a machine-readable trajectory:
//!
//! * `BENCH_serve.json` — per worker count: the deterministic virtual
//!   makespan and speedup (reproducible on any host), the serving rate in
//!   campaigns per virtual kilosecond, real wall seconds for the whole
//!   drive, and real mean suggest/observe nanoseconds measured by an
//!   injected wall timer.
//!
//! (`BENCH_bo.json` is owned by the `bo_scale` bin, which carries both
//! the perf_smoke baseline headline and the E36 scaling points.)
//!
//! ```text
//! cargo run -p autotune-bench --release --bin serve_fleet
//! ```

use autotune::telemetry::WallTimer;
use autotune_bench::experiments::e33_serve::{fleet_specs, FLEET_N};
use autotune_bench::experiments::e34_chaos::{chaos_drive, overload_drive, CHAOS_N};
use autotune_serve::{AdmissionConfig, CampaignRegistry};
use std::time::Instant;

const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// A real wall timer for overhead attribution (core itself never reads
/// real time; the bench harness injects this).
struct StdTimer(Instant);

impl WallTimer for StdTimer {
    fn now_ns(&mut self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

struct Point {
    workers: usize,
    virtual_makespan_s: f64,
    pool_speedup: f64,
    campaigns_per_ks: f64,
    real_elapsed_s: f64,
    mean_suggest_ns: f64,
    mean_observe_ns: f64,
}

fn drive(workers: usize) -> Point {
    let specs = fleet_specs(FLEET_N);
    let mut reg = CampaignRegistry::new(workers);
    for spec in &specs {
        let campaign = spec.build().with_timer(Box::new(StdTimer(Instant::now())));
        reg.register(spec.name.clone(), campaign);
    }
    let start = Instant::now();
    reg.run_all().expect("fleet drive failed");
    let real_elapsed_s = start.elapsed().as_secs_f64();
    let fs = reg.fleet_stats();
    let m = reg.merged_metrics();
    Point {
        workers,
        virtual_makespan_s: fs.virtual_makespan_s,
        pool_speedup: fs.pool_speedup,
        campaigns_per_ks: FLEET_N as f64 * 1_000.0 / fs.virtual_makespan_s.max(1e-9),
        real_elapsed_s,
        mean_suggest_ns: m.suggest_ns.mean(),
        mean_observe_ns: m.observe_ns.mean(),
    }
}

fn main() {
    let mut points = Vec::new();
    for workers in WORKER_COUNTS {
        eprintln!("driving {FLEET_N}-campaign fleet at {workers} workers...");
        let p = drive(workers);
        println!(
            "workers={:>2}  makespan={:>8.0}s  speedup={:>5.2}x  rate={:>6.2} campaigns/ks  real={:>5.2}s  suggest={:>9.0}ns  observe={:>9.0}ns",
            p.workers,
            p.virtual_makespan_s,
            p.pool_speedup,
            p.campaigns_per_ks,
            p.real_elapsed_s,
            p.mean_suggest_ns,
            p.mean_observe_ns
        );
        points.push(p);
    }

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"workers\": {}, \"virtual_makespan_s\": {:.1}, \"pool_speedup\": {:.3}, \"campaigns_per_virtual_ks\": {:.3}, \"real_elapsed_s\": {:.3}, \"mean_suggest_ns\": {:.0}, \"mean_observe_ns\": {:.0} }}",
                p.workers,
                p.virtual_makespan_s,
                p.pool_speedup,
                p.campaigns_per_ks,
                p.real_elapsed_s,
                p.mean_suggest_ns,
                p.mean_observe_ns
            )
        })
        .collect();
    // Robustness trajectory (E34): WAL recovery latency under chaos
    // crashes and the shed rate under bounded admission.
    eprintln!("driving {CHAOS_N}-campaign fleet under chaos for recovery latency...");
    let specs = fleet_specs(CHAOS_N);
    let chaos = chaos_drive(&specs, 0xE34, 0.002, 0.004);
    let want: Vec<String> = specs
        .iter()
        .map(|s| {
            let mut c = s.build();
            c.run();
            c.storage().to_json()
        })
        .collect();
    let overload = overload_drive(
        &specs,
        &want,
        AdmissionConfig {
            max_active: 24,
            max_pending: 40,
        },
    );
    let shed_rate = overload.shed as f64 / overload.offered as f64;
    println!(
        "chaos: {} crashes, {} panic recoveries, {} torn bytes, mean open {:.1} ms; overload: {}/{} shed ({:.1}%)",
        chaos.crashes,
        chaos.panic_recoveries,
        chaos.torn_bytes,
        chaos.mean_open_ms,
        overload.shed,
        overload.offered,
        shed_rate * 100.0
    );
    let robustness = format!(
        "  \"robustness\": {{\n    \"campaigns\": {CHAOS_N},\n    \"crashes\": {},\n    \"panic_recoveries\": {},\n    \"torn_bytes_truncated\": {},\n    \"mean_recovery_open_ms\": {:.2},\n    \"wal_appends\": {},\n    \"overload_offered\": {},\n    \"overload_accepted\": {},\n    \"overload_shed\": {},\n    \"shed_rate\": {:.4}\n  }},\n",
        chaos.crashes,
        chaos.panic_recoveries,
        chaos.torn_bytes,
        chaos.mean_open_ms,
        chaos.wal_appends,
        overload.offered,
        overload.accepted,
        overload.shed,
        shed_rate
    );

    let serve_json = format!(
        "{{\n  \"benchmark\": \"serve_fleet: E33 mixed fleet of {FLEET_N} campaigns through CampaignRegistry\",\n  \"note\": \"virtual_* fields are deterministic (virtual pool model); real_* and *_ns fields are host-dependent; robustness block is the E34 chaos/overload arm; trajectory rows are appended by tools/bench_record.sh\",\n{robustness}  \"points\": [\n{}\n  ],\n  \"trajectory\": []\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &serve_json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json ({} worker counts)", points.len());
}

//! Early abort of hopeless trials (tutorial slide 69).
//!
//! For elapsed-time benchmarks (TPC-H style: run the queries, report the
//! wall-clock), a trial that is already slower than `ratio x` the best
//! time can be killed immediately: we know its score is bad without paying
//! for the rest of the run. The policy reports the *censored* cost and how
//! much benchmark time was saved.

use serde::{Deserialize, Serialize};

/// Early-abort policy for elapsed-time objectives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EarlyAbort {
    /// A trial is cut once it reaches `ratio * best_cost` (ratio > 1).
    pub ratio: f64,
    best_cost: Option<f64>,
    total_saved_s: f64,
    n_aborted: usize,
}

impl EarlyAbort {
    /// Creates a policy with the given abort ratio (e.g. 1.5).
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 1.0, "abort ratio must exceed 1");
        EarlyAbort {
            ratio,
            best_cost: None,
            total_saved_s: 0.0,
            n_aborted: 0,
        }
    }

    /// The abort threshold, if an incumbent exists.
    pub fn threshold(&self) -> Option<f64> {
        self.best_cost.map(|b| b * self.ratio)
    }

    /// Total benchmark seconds saved by aborting.
    pub fn total_saved_s(&self) -> f64 {
        self.total_saved_s
    }

    /// Number of trials aborted so far.
    pub fn n_aborted(&self) -> usize {
        self.n_aborted
    }

    /// Processes a trial whose *full* cost and elapsed time are known
    /// (the simulator computes them analytically; a real harness would
    /// stream progress and kill the process instead).
    ///
    /// Returns `(reported_cost, charged_elapsed_s, aborted)`: when the
    /// trial would have been aborted, the reported cost is censored at the
    /// threshold and only the time-to-threshold is charged.
    ///
    /// This mapping is exact for [`crate::Objective::MinimizeElapsed`]
    /// (cost *is* seconds); for other objectives the policy is
    /// conservative and never aborts.
    pub fn process(
        &mut self,
        full_cost: f64,
        full_elapsed_s: f64,
        cost_is_elapsed: bool,
    ) -> (f64, f64, bool) {
        if !full_cost.is_finite() {
            // Crashes are handled elsewhere; charge what was spent.
            return (full_cost, full_elapsed_s, false);
        }
        let decision = match (self.best_cost, cost_is_elapsed) {
            (Some(best), true) if full_cost > best * self.ratio => {
                let threshold = best * self.ratio;
                // Time-to-threshold: the run is killed when the clock hits
                // the censored cost.
                let charged = full_elapsed_s * (threshold / full_cost).min(1.0);
                self.total_saved_s += full_elapsed_s - charged;
                self.n_aborted += 1;
                (threshold, charged, true)
            }
            _ => (full_cost, full_elapsed_s, false),
        };
        if !decision.2 && full_cost.is_finite() {
            self.best_cost = Some(match self.best_cost {
                Some(b) => b.min(full_cost),
                None => full_cost,
            });
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_trial_sets_incumbent() {
        let mut ea = EarlyAbort::new(1.5);
        assert_eq!(ea.threshold(), None);
        let (cost, elapsed, aborted) = ea.process(100.0, 100.0, true);
        assert_eq!((cost, elapsed, aborted), (100.0, 100.0, false));
        assert_eq!(ea.threshold(), Some(150.0));
    }

    #[test]
    fn slow_trial_censored_and_time_saved() {
        let mut ea = EarlyAbort::new(1.5);
        ea.process(100.0, 100.0, true);
        let (cost, elapsed, aborted) = ea.process(400.0, 400.0, true);
        assert!(aborted);
        assert_eq!(cost, 150.0);
        assert!((elapsed - 150.0).abs() < 1e-9);
        assert!((ea.total_saved_s() - 250.0).abs() < 1e-9);
        assert_eq!(ea.n_aborted(), 1);
    }

    #[test]
    fn aborted_trials_do_not_move_the_incumbent() {
        let mut ea = EarlyAbort::new(1.5);
        ea.process(100.0, 100.0, true);
        ea.process(500.0, 500.0, true); // aborted
        assert_eq!(ea.threshold(), Some(150.0));
        // A genuinely better trial still lowers the threshold.
        ea.process(60.0, 60.0, true);
        assert_eq!(ea.threshold(), Some(90.0));
    }

    #[test]
    fn non_elapsed_objectives_never_abort() {
        let mut ea = EarlyAbort::new(1.2);
        ea.process(10.0, 60.0, false);
        let (cost, elapsed, aborted) = ea.process(1e9, 60.0, false);
        assert!(!aborted);
        assert_eq!(cost, 1e9);
        assert_eq!(elapsed, 60.0);
    }

    #[test]
    fn crash_passthrough() {
        let mut ea = EarlyAbort::new(1.5);
        ea.process(100.0, 100.0, true);
        let (cost, _, aborted) = ea.process(f64::NAN, 5.0, true);
        assert!(cost.is_nan());
        assert!(!aborted);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn ratio_must_exceed_one() {
        let _ = EarlyAbort::new(0.9);
    }
}

//! Genetic algorithm (tutorial slides 81-84: HUNTER, RFHOC and friends use
//! GAs for online cloud-database tuning).
//!
//! Generational GA with tournament selection, uniform crossover in config
//! space, mutation via the space's neighbourhood kernel, and elitism.

use crate::{BestTracker, Observation, Optimizer};
use autotune_space::{Config, Space};
use rand::{Rng, RngCore};

/// Genetic-algorithm hyperparameters.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of taking each gene from the first parent in crossover.
    pub crossover_bias: f64,
    /// Per-individual mutation probability.
    pub mutation_rate: f64,
    /// Mutation step scale in unit-cube units.
    pub mutation_scale: f64,
    /// Top individuals copied unchanged into the next generation.
    pub elites: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 16,
            tournament: 3,
            crossover_bias: 0.5,
            mutation_rate: 0.4,
            mutation_scale: 0.15,
            elites: 2,
        }
    }
}

/// Generational genetic algorithm over a configuration space.
#[derive(Debug)]
pub struct GeneticAlgorithm {
    space: Space,
    config: GaConfig,
    /// Scored individuals of the last completed generation.
    scored: Vec<(Config, f64)>,
    /// Individuals of the current generation awaiting evaluation.
    pending: std::collections::VecDeque<Config>,
    /// Scores arriving for the current generation.
    incoming: Vec<(Config, f64)>,
    generation: usize,
    tracker: BestTracker,
}

impl GeneticAlgorithm {
    /// Creates a GA over `space`.
    pub fn new(space: Space, config: GaConfig) -> Self {
        assert!(config.population >= 4, "population must be at least 4");
        assert!(
            config.elites < config.population,
            "elites must leave room for offspring"
        );
        GeneticAlgorithm {
            space,
            config,
            scored: Vec::new(),
            pending: std::collections::VecDeque::new(),
            incoming: Vec::new(),
            generation: 0,
            tracker: BestTracker::default(),
        }
    }

    /// Completed generations so far.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Tournament selection from the scored population.
    fn select<'a>(&'a self, rng: &mut dyn RngCore) -> &'a Config {
        let mut best: Option<&(Config, f64)> = None;
        // A zero tournament size would select nothing; clamp to one draw.
        for _ in 0..self.config.tournament.max(1) {
            let c = &self.scored[rng.gen_range(0..self.scored.len())];
            if best.is_none_or(|b| c.1 < b.1) {
                best = Some(c);
            }
        }
        &best.expect("tournament >= 1").0 // lint: allow(D5) loop above clamps to at least one draw
    }

    /// Uniform crossover of two parents at the parameter level.
    fn crossover(&self, a: &Config, b: &Config, rng: &mut dyn RngCore) -> Config {
        let mut child = Config::new();
        for p in self.space.params() {
            let from_a = rng.gen::<f64>() < self.config.crossover_bias;
            let donor = if from_a { a } else { b };
            // Fall back to the other parent (then default) when the chosen
            // donor deactivated this conditional parameter.
            let v = donor
                .get(&p.name)
                .or_else(|| {
                    if from_a {
                        b.get(&p.name)
                    } else {
                        a.get(&p.name)
                    }
                })
                .unwrap_or(&p.default);
            child.set(p.name.clone(), v.clone());
        }
        // Strip genes that the combined parent choices deactivate.
        let x = self
            .space
            .encode_unit(&child)
            .expect("crossover child covers all params"); // lint: allow(D5) child covers every param of the space
        self.space.decode_unit(&x).expect("encoded child decodes") // lint: allow(D5) encoded child always decodes
    }

    /// Builds the next generation from the scored one.
    fn breed(&mut self, rng: &mut dyn RngCore) {
        let mut rng = rng;
        self.scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut next: Vec<Config> = self
            .scored
            .iter()
            .take(self.config.elites)
            .map(|(c, _)| c.clone())
            .collect();
        while next.len() < self.config.population {
            let a = self.select(&mut rng).clone();
            let b = self.select(&mut rng).clone();
            let mut child = self.crossover(&a, &b, &mut rng);
            if rng.gen::<f64>() < self.config.mutation_rate {
                child = self
                    .space
                    .neighbor(&child, self.config.mutation_scale, &mut rng);
            }
            next.push(child);
        }
        self.pending = next.into();
        self.generation += 1;
    }
}

impl Optimizer for GeneticAlgorithm {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> Config {
        let mut rng = rng;
        if let Some(c) = self.pending.pop_front() {
            return c;
        }
        if self.incoming.len() >= self.config.population && !self.incoming.is_empty() {
            self.scored = std::mem::take(&mut self.incoming);
            self.breed(&mut rng);
            if let Some(c) = self.pending.pop_front() {
                return c;
            }
        }
        // First generation (or waiting on stragglers): random individuals.
        self.space.sample(&mut rng)
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
        let v = if value.is_nan() { f64::INFINITY } else { value };
        self.incoming.push((config.clone(), v));
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        "genetic"
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};

    #[test]
    fn solves_sphere() {
        let mut opt = GeneticAlgorithm::new(sphere_space(), GaConfig::default());
        let best = run_loop(&mut opt, sphere, 300, 31);
        assert!(best < 0.05, "GA best {best} after 300 trials");
    }

    #[test]
    fn generations_advance() {
        let mut opt = GeneticAlgorithm::new(sphere_space(), GaConfig::default());
        run_loop(&mut opt, sphere, 100, 37);
        assert!(
            opt.generation() >= 3,
            "only {} generations",
            opt.generation()
        );
    }

    #[test]
    fn elitism_preserves_best() {
        let cfg = GaConfig {
            elites: 2,
            mutation_rate: 1.0,
            ..Default::default()
        };
        let mut opt = GeneticAlgorithm::new(sphere_space(), cfg);
        let before_after: Vec<f64> = (0..2)
            .map(|phase| {
                run_loop(&mut opt, sphere, 100, 41 + phase);
                opt.best().unwrap().value
            })
            .collect();
        // Best never regresses across further evolution.
        assert!(before_after[1] <= before_after[0] + 1e-12);
    }

    #[test]
    fn crossover_children_valid_on_conditional_space() {
        use autotune_space::{Condition, Param, Space};
        let space = Space::builder()
            .add(Param::bool("jit"))
            .add(Param::float("jit_cost", 1.0, 100.0))
            .condition(Condition::equals("jit_cost", "jit", true))
            .build()
            .unwrap();
        let mut opt = GeneticAlgorithm::new(space.clone(), GaConfig::default());
        let objective = |c: &Config| {
            if c.get_bool("jit").unwrap() {
                c.get_f64("jit_cost").unwrap()
            } else {
                200.0
            }
        };
        let best = run_loop(&mut opt, objective, 200, 43);
        assert!(best < 20.0, "GA best {best} on conditional space");
        // All suggested configs were valid (run_loop would have panicked in
        // objective otherwise because jit_cost may be missing).
    }

    #[test]
    fn nan_treated_as_worst() {
        let space = sphere_space();
        let mut opt = GeneticAlgorithm::new(space.clone(), GaConfig::default());
        let c = space.default_config();
        opt.observe(&c, f64::NAN);
        assert_eq!(opt.incoming[0].1, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        let _ = GeneticAlgorithm::new(
            sphere_space(),
            GaConfig {
                population: 2,
                ..Default::default()
            },
        );
    }
}

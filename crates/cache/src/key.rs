//! Exact fingerprint keys.
//!
//! Within a family the cache distinguishes entries by an exact 64-bit key
//! over the fingerprint's feature bits. Two telemetry captures of the same
//! tenant produce identical feature vectors in this codebase (featurization
//! is deterministic), so bit-exact hashing is the right identity; nearby
//!-but-different fingerprints intentionally get different keys and fall
//! back to the family incumbent.

/// FNV-1a over the little-endian bit patterns of the features.
///
/// Hand-rolled so the key is stable across platforms and Rust versions —
/// it is persisted in WAL journals and must never drift (`std`'s hashers
/// are explicitly unstable). `-0.0` is folded onto `0.0` so the two
/// representations of zero share a key; NaNs are accepted (any payload
/// hashes to *some* key) because fingerprints are validated upstream.
pub fn fingerprint_key(features: &[f64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &f in features {
        let bits = if f == 0.0 { 0u64 } else { f.to_bits() };
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_golden_value() {
        // Pinned: a change here means persisted journals stop resolving.
        assert_eq!(fingerprint_key(&[1.0, 2.0, 3.0]), 0xe2d5_ae79_fc4e_9a70);
    }

    #[test]
    fn distinguishes_close_vectors() {
        let a = fingerprint_key(&[1.0, 2.0]);
        let b = fingerprint_key(&[1.0, 2.0 + 1e-12]);
        assert_ne!(a, b);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(fingerprint_key(&[1.0, 2.0]), fingerprint_key(&[2.0, 1.0]));
    }

    #[test]
    fn signed_zero_folds() {
        assert_eq!(fingerprint_key(&[0.0]), fingerprint_key(&[-0.0]));
    }

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(fingerprint_key(&[]), 0xcbf2_9ce4_8422_2325);
    }
}

//! Durable write-ahead log + snapshot store for the campaign fleet.
//!
//! PR 6 made campaigns *resumable* (snapshot → byte-verified replay);
//! this module makes the whole serving layer *crash-safe*: every
//! [`CampaignEvent`] a campaign emits is appended to an on-disk WAL
//! before the round is acknowledged, periodic [`CampaignSnapshot`]
//! checkpoints bound replay time, and [`DurableRegistry::open`] rebuilds
//! the exact fleet from whatever the filesystem holds — including a
//! torn final record from a crash mid-write.
//!
//! # Record format
//!
//! A WAL is a directory of numbered segments (`wal-000001.seg`, …).
//! Each segment is a sequence of length-prefixed, CRC-checked records:
//!
//! ```text
//! ┌──────────┬──────────┬───────────────────┐
//! │ len: u32 │ crc: u32 │ payload (JSON)    │   little-endian header,
//! └──────────┴──────────┴───────────────────┘   crc32(payload)
//! ```
//!
//! The payload is a [`WalRecord`]: a campaign registration (spec +
//! assigned id), a batch of events, a self-contained checkpoint, or an
//! administrative stop. Recovery reads segments in order and stops at
//! the first record whose header or CRC fails *in the final segment* —
//! that tail is a torn write from the crash and is truncated, not
//! fatal. The same failure in an earlier segment means real corruption
//! and is reported as [`ServeError::Storage`].
//!
//! # Recovery invariant
//!
//! For every campaign, `checkpoint snapshot + logged events` is a
//! (possibly mid-tick) prefix of its deterministic history, so
//! [`Campaign::resume_prefix`] rebuilds it byte-identically and live
//! measurement takes over exactly where the durable log ends. If replay
//! regenerates events past the durable frontier (a cut between a tick's
//! measurements and its outcomes), the delta is healed back into the
//! WAL on open.
//!
//! # Chaos
//!
//! Arm a [`ChaosPlan`] with [`DurableRegistry::set_chaos`] and every
//! append consults [`ChaosPlan::crash_at`] on a monotone operation
//! counter: `PreAppend` kills the process before any byte lands,
//! `MidAppend` leaves a torn record, `PostAppendPreAck` persists the
//! record but loses the acknowledgement. A fired crash poisons the
//! handle (every later call returns the same error) — the in-process
//! analogue of being dead — and the harness recovers with
//! [`DurableRegistry::open`]. Worker panics are injected inside the
//! measurement pool and caught here at the `step_round` boundary: the
//! suspect in-memory fleet is discarded and rebuilt from the WAL.

use crate::chaos::{ChaosPlan, CrashPoint};
use crate::registry::{AdmissionConfig, CampaignRegistry, RoundReport, ServeError};
use crate::spec::CampaignSpec;
use autotune::executor::SNAPSHOT_VERSION;
use autotune::{Campaign, CampaignEvent, CampaignSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One durable WAL record.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum WalRecord {
    /// A campaign was admitted: everything needed to rebuild it from
    /// scratch plus the idempotency key that created it.
    Register {
        id: u64,
        name: String,
        spec: CampaignSpec,
        request_id: Option<u64>,
    },
    /// Events appended to a campaign's log since its last record.
    Events { id: u64, events: Vec<CampaignEvent> },
    /// A self-contained checkpoint: spec + snapshot supersede all
    /// earlier records for this campaign.
    Checkpoint {
        id: u64,
        name: String,
        spec: CampaignSpec,
        request_id: Option<u64>,
        stopped: bool,
        snapshot: CampaignSnapshot,
    },
    /// The campaign was stopped administratively.
    Stop { id: u64 },
    /// An auxiliary journal record for a subsystem layered on the
    /// registry (e.g. the config-cache router). Records are replayed to
    /// the owner in append order on recovery; the WAL itself does not
    /// interpret `json`.
    Aux { key: String, json: String },
}

/// WAL sizing and cadence knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a new segment once the current one exceeds this.
    pub segment_bytes: u64,
    /// Checkpoint + compact every this many scheduling rounds.
    pub checkpoint_every_rounds: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 4 * 1024 * 1024,
            checkpoint_every_rounds: 32,
        }
    }
}

/// What [`DurableRegistry::open`] found and rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments read.
    pub segments_read: usize,
    /// Valid records replayed.
    pub records_read: u64,
    /// Torn-tail bytes truncated from the final segment.
    pub truncated_bytes: u64,
    /// Campaigns rebuilt.
    pub campaigns: usize,
    /// Campaigns whose durable log ended inside a tick (live
    /// measurement resumed mid-wave).
    pub mid_tick_campaigns: usize,
    /// Events regenerated past the durable frontier and healed back
    /// into the WAL.
    pub healed_events: u64,
}

/// Outcome of one [`DurableRegistry::step_round`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DurableRound {
    /// The scheduling round's report (zeroed when the round was lost to
    /// a recovery).
    pub report: RoundReport,
    /// Whether a worker panic forced a rebuild from the WAL instead of
    /// a normal round.
    pub recovered: bool,
}

/// A [`CampaignRegistry`] whose state survives `kill -9`: every event
/// is WAL-appended before the round is acknowledged, worker panics are
/// caught and recovered at this boundary, and [`DurableRegistry::open`]
/// rebuilds the fleet byte-identically from disk.
pub struct DurableRegistry {
    registry: CampaignRegistry,
    dir: PathBuf,
    config: WalConfig,
    admission: AdmissionConfig,
    chaos: Option<ChaosPlan>,
    /// Monotone append counter driving chaos rolls. Owned by the
    /// handle, not derived from WAL contents, so a recovered process
    /// does not re-roll the crash that killed it.
    ops: u64,
    seg_index: u64,
    seg: Option<std::fs::File>,
    seg_bytes: u64,
    /// Per-campaign count of events already durable.
    durable_len: BTreeMap<u64, usize>,
    /// Per-campaign registration info, for checkpoints.
    specs: BTreeMap<u64, (String, CampaignSpec, Option<u64>)>,
    /// Every auxiliary record in append order, kept in memory so
    /// checkpoint compaction can re-emit the journal into the fresh
    /// segment before older segments are deleted.
    aux_log: Vec<(String, String)>,
    rounds_since_checkpoint: u64,
    /// Set once a simulated crash fires; every later call fails.
    crashed: Option<CrashPoint>,
}

impl DurableRegistry {
    /// Creates a fresh durable registry writing to `dir` (created if
    /// missing; must not already hold WAL segments).
    pub fn create(
        dir: impl Into<PathBuf>,
        workers: usize,
        config: WalConfig,
    ) -> Result<Self, ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        if !list_segments(&dir)?.is_empty() {
            return Err(ServeError::Storage(format!(
                "{} already holds WAL segments; use open",
                dir.display()
            )));
        }
        let mut s = DurableRegistry {
            registry: CampaignRegistry::new(workers),
            dir,
            config,
            admission: AdmissionConfig::default(),
            chaos: None,
            ops: 0,
            seg_index: 0,
            seg: None,
            seg_bytes: 0,
            durable_len: BTreeMap::new(),
            specs: BTreeMap::new(),
            aux_log: Vec::new(),
            rounds_since_checkpoint: 0,
            crashed: None,
        };
        s.rotate_segment()?;
        Ok(s)
    }

    /// Rebuilds the fleet from the WAL in `dir`: reads every segment,
    /// truncates a torn tail, replays each campaign through
    /// [`Campaign::resume_prefix`], and heals regenerated events back
    /// into the log. Chaos is disarmed on the recovered handle.
    pub fn open(
        dir: impl Into<PathBuf>,
        workers: usize,
        config: WalConfig,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        let dir = dir.into();
        let (registry, durable_len, specs, aux_log, seg_index, report) =
            recover_dir(&dir, workers)?;
        let mut s = DurableRegistry {
            registry,
            dir,
            config,
            admission: AdmissionConfig::default(),
            chaos: None,
            ops: 0,
            seg_index,
            seg: None,
            seg_bytes: 0,
            durable_len,
            specs,
            aux_log,
            rounds_since_checkpoint: 0,
            crashed: None,
        };
        s.registry.note_fleet_recovery();
        s.registry.note_wal_truncated(report.truncated_bytes);
        s.rotate_segment()?;
        // Heal: any events replay regenerated past the durable frontier
        // become durable now, so the next crash recovers to this exact
        // state.
        s.flush_events()?;
        let mut healed_report = report;
        healed_report.healed_events = report.healed_events;
        Ok((s, healed_report))
    }

    /// Applies admission limits (also re-applied after panic recovery).
    pub fn set_admission(&mut self, admission: AdmissionConfig) {
        self.admission = admission;
        self.registry.set_admission(admission);
    }

    /// Arms chaos injection: WAL crash points on this handle's append
    /// counter and worker panics inside the measurement pool.
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = Some(plan);
        self.registry.inject_worker_panics(plan);
    }

    /// The wrapped registry (stats, snapshots, campaign access).
    pub fn registry(&self) -> &CampaignRegistry {
        &self.registry
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The crash point that poisoned this handle, if any.
    pub fn crashed(&self) -> Option<CrashPoint> {
        self.crashed
    }

    fn check_alive(&self) -> Result<(), ServeError> {
        match self.crashed {
            Some(p) => Err(ServeError::Storage(format!(
                "simulated crash ({}); reopen from the WAL",
                p.label()
            ))),
            None => Ok(()),
        }
    }

    /// Admission-controlled, WAL-backed registration. The campaign is
    /// durable before the id is returned; a crash in between poisons
    /// the handle and the client's idempotent retry lands on the
    /// recovered fleet without double-creating.
    pub fn admit_spec(
        &mut self,
        spec: &CampaignSpec,
        request_id: Option<u64>,
    ) -> Result<u64, ServeError> {
        self.check_alive()?;
        let known = request_id.map(|_| self.registry.len()).unwrap_or_default();
        let id = self.registry.admit_spec(spec, request_id)?;
        if request_id.is_some() && self.registry.len() == known {
            // Idempotent replay of an existing registration: nothing
            // new to persist.
            return Ok(id);
        }
        self.specs
            .insert(id, (spec.name.clone(), spec.clone(), request_id));
        self.durable_len.insert(id, 0);
        self.append(&WalRecord::Register {
            id,
            name: spec.name.clone(),
            spec: spec.clone(),
            request_id,
        })?;
        self.registry.note_wal_appends(id, 1);
        Ok(id)
    }

    /// Registers without admission control or idempotency key.
    pub fn register_spec(&mut self, spec: &CampaignSpec) -> Result<u64, ServeError> {
        self.admit_spec(spec, None)
    }

    /// Appends one auxiliary journal record under `key`, durable before
    /// return. Subsystems layered on the registry (the config-cache
    /// router) journal their operations here and replay them in order
    /// after [`DurableRegistry::open`] via [`DurableRegistry::aux_log`].
    pub fn append_aux(&mut self, key: &str, json: String) -> Result<(), ServeError> {
        self.check_alive()?;
        self.append(&WalRecord::Aux {
            key: key.to_string(),
            json: json.clone(),
        })?;
        self.aux_log.push((key.to_string(), json));
        Ok(())
    }

    /// All auxiliary records appended under `key`, in append order
    /// (surviving crashes, recoveries, and checkpoint compaction).
    pub fn aux_log(&self, key: &str) -> Vec<&str> {
        self.aux_log
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, j)| j.as_str())
            .collect()
    }

    /// Stops a campaign, durably.
    pub fn stop(&mut self, id: u64) -> Result<bool, ServeError> {
        self.check_alive()?;
        let was_active = self.registry.stop(id)?;
        self.append(&WalRecord::Stop { id })?;
        self.registry.note_wal_appends(id, 1);
        Ok(was_active)
    }

    /// One scheduling round with durability: the round runs, its new
    /// events are WAL-appended, and only then is the round
    /// acknowledged. A worker panic is caught here; the suspect
    /// in-memory fleet is discarded and rebuilt from the WAL (losing
    /// only the unacknowledged round, which re-executes identically).
    pub fn step_round(&mut self) -> Result<DurableRound, ServeError> {
        self.check_alive()?;
        // With chaos armed, injected worker panics are expected control
        // flow; silence the default hook's backtrace spray for the
        // duration of the guarded call.
        let silence = self.chaos.is_some();
        let prev_hook = silence.then(std::panic::take_hook);
        if silence {
            std::panic::set_hook(Box::new(|_| {}));
        }
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.registry.step_round()));
        if let Some(hook) = prev_hook {
            std::panic::set_hook(hook);
        }
        match caught {
            Ok(report) => {
                let report = report?;
                self.flush_events()?;
                self.rounds_since_checkpoint += 1;
                if self.rounds_since_checkpoint >= self.config.checkpoint_every_rounds {
                    self.checkpoint()?;
                }
                Ok(DurableRound {
                    report,
                    recovered: false,
                })
            }
            Err(_) => {
                self.recover_in_place()?;
                Ok(DurableRound {
                    report: RoundReport::default(),
                    recovered: true,
                })
            }
        }
    }

    /// Runs rounds until the fleet drains; returns rounds executed
    /// (recoveries count as rounds).
    pub fn run_all(&mut self) -> Result<u64, ServeError> {
        let mut rounds = 0;
        while self.registry.has_runnable() {
            self.step_round()?;
            rounds += 1;
        }
        Ok(rounds)
    }

    /// Forces a checkpoint + compaction: every campaign's spec and
    /// snapshot-at-boundary is written to a fresh segment, then older
    /// segments are deleted. Mid-tick campaigns (between `ready_wave`
    /// and `complete_wave`) cannot snapshot and keep their event-log
    /// representation instead.
    pub fn checkpoint(&mut self) -> Result<(), ServeError> {
        self.check_alive()?;
        self.rounds_since_checkpoint = 0;
        self.rotate_segment()?;
        let keep_from = self.seg_index;
        for id in self.registry.ids() {
            let Some((name, spec, request_id)) = self.specs.get(&id).cloned() else {
                continue;
            };
            let campaign = self.registry.campaign(id)?;
            let Ok(snapshot) = campaign.snapshot() else {
                // Mid-tick or log-disabled: re-register + replay events
                // instead of checkpointing this one.
                let events = campaign.log().unwrap_or_default().to_vec();
                let stopped_len = events.len();
                self.append(&WalRecord::Register {
                    id,
                    name,
                    spec,
                    request_id,
                })?;
                self.append(&WalRecord::Events { id, events })?;
                self.registry.note_wal_appends(id, 2);
                self.durable_len.insert(id, stopped_len);
                continue;
            };
            let stopped = {
                let stats = self.registry.stats(id)?;
                stats.stopped
            };
            let len = snapshot.log.len();
            self.append(&WalRecord::Checkpoint {
                id,
                name,
                spec,
                request_id,
                stopped,
                snapshot,
            })?;
            self.registry.note_wal_appends(id, 1);
            self.durable_len.insert(id, len);
        }
        // Re-emit the aux journal into the fresh segment so compaction
        // never drops layered-subsystem state.
        for (key, json) in self.aux_log.clone() {
            self.append(&WalRecord::Aux { key, json })?;
        }
        // Checkpoints are durable; older segments are now redundant.
        for (idx, path) in list_segments(&self.dir)? {
            if idx < keep_from {
                std::fs::remove_file(&path).map_err(io_err)?;
            }
        }
        Ok(())
    }

    /// Appends every campaign's events past its durable frontier.
    fn flush_events(&mut self) -> Result<(), ServeError> {
        for id in self.registry.ids() {
            let campaign = self.registry.campaign(id)?;
            let Some(log) = campaign.log() else { continue };
            let durable = self.durable_len.get(&id).copied().unwrap_or(0);
            if log.len() <= durable {
                continue;
            }
            let events: Vec<CampaignEvent> = log[durable..].to_vec();
            let new_len = log.len();
            self.append(&WalRecord::Events { id, events })?;
            self.registry.note_wal_appends(id, 1);
            self.durable_len.insert(id, new_len);
        }
        Ok(())
    }

    /// Discards the in-memory fleet after a worker panic and rebuilds
    /// it from the WAL — quarantine-and-restart-from-snapshot at the
    /// pool boundary. The panicked round was never acknowledged, so the
    /// rebuilt fleet re-executes it identically; the round counter is
    /// preserved so round-keyed chaos rolls never re-fire.
    fn recover_in_place(&mut self) -> Result<(), ServeError> {
        let rounds = self.registry.rounds();
        let (shed, retried, truncated, recoveries) = self.registry.robustness_counters();
        // Per-campaign recovery marks survive the rebuild.
        let prior_marks: Vec<(u64, u64)> = self
            .registry
            .ids()
            .into_iter()
            .filter_map(|id| {
                let n = self.registry.stats(id).ok()?.recoveries;
                (n > 0).then_some((id, n))
            })
            .collect();
        // Identify the campaigns whose workers panicked this round (a
        // pure re-roll of the same chaos decision).
        let panicked: Vec<u64> = match self.chaos {
            Some(plan) => self
                .registry
                .ids()
                .into_iter()
                .filter(|id| plan.worker_panics(rounds, *id))
                .collect(),
            None => Vec::new(),
        };
        let workers = self.registry.workers();
        let (mut rebuilt, durable_len, specs, aux_log, _, report) =
            recover_dir(&self.dir, workers)?;
        rebuilt.set_rounds(rounds);
        rebuilt.set_admission(self.admission);
        rebuilt.set_robustness_counters(
            shed,
            retried,
            truncated + report.truncated_bytes,
            recoveries + 1,
        );
        if let Some(plan) = self.chaos {
            rebuilt.inject_worker_panics(plan);
        }
        for (id, n) in prior_marks {
            for _ in 0..n {
                rebuilt.note_campaign_recovery(id);
            }
        }
        for id in panicked {
            rebuilt.note_campaign_recovery(id);
        }
        self.registry = rebuilt;
        self.durable_len = durable_len;
        self.specs = specs;
        self.aux_log = aux_log;
        // The open segment handle survived the panic; keep appending to
        // it. Heal any regenerated tail so disk matches memory.
        self.flush_events()
    }

    /// Appends one record, consulting the chaos plan for crash points.
    fn append(&mut self, record: &WalRecord) -> Result<(), ServeError> {
        let op = self.ops;
        self.ops += 1;
        let encoded = encode_record(record)?;
        let crash = self.chaos.and_then(|p| p.crash_at(op));
        match crash {
            Some(CrashPoint::PreAppend) => {
                self.crashed = Some(CrashPoint::PreAppend);
                return self.check_alive();
            }
            Some(CrashPoint::MidAppend) => {
                let torn = self
                    .chaos
                    .map(|p| p.torn_len(op, encoded.len()))
                    .unwrap_or(1);
                self.write_bytes(&encoded[..torn])?;
                self.crashed = Some(CrashPoint::MidAppend);
                return self.check_alive();
            }
            Some(CrashPoint::PostAppendPreAck) => {
                self.write_bytes(&encoded)?;
                self.crashed = Some(CrashPoint::PostAppendPreAck);
                return self.check_alive();
            }
            None => {}
        }
        self.write_bytes(&encoded)?;
        if self.seg_bytes >= self.config.segment_bytes {
            self.rotate_segment()?;
        }
        Ok(())
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        let seg = self
            .seg
            .as_mut()
            .ok_or_else(|| ServeError::Storage("no open segment".into()))?;
        seg.write_all(bytes).map_err(io_err)?;
        seg.flush().map_err(io_err)?;
        self.seg_bytes += bytes.len() as u64;
        Ok(())
    }

    fn rotate_segment(&mut self) -> Result<(), ServeError> {
        self.seg_index += 1;
        let path = segment_path(&self.dir, self.seg_index);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        self.seg = Some(file);
        self.seg_bytes = 0;
        Ok(())
    }
}

/// Reads the WAL in `dir` and rebuilds the registry. Returns the
/// registry, per-campaign durable event counts, registration info, the
/// auxiliary journal in append order, the highest segment index seen,
/// and the recovery report.
#[allow(clippy::type_complexity)]
fn recover_dir(
    dir: &Path,
    workers: usize,
) -> Result<
    (
        CampaignRegistry,
        BTreeMap<u64, usize>,
        BTreeMap<u64, (String, CampaignSpec, Option<u64>)>,
        Vec<(String, String)>,
        u64,
        RecoveryReport,
    ),
    ServeError,
> {
    let segments = list_segments(dir)?;
    if segments.is_empty() {
        return Err(ServeError::Storage(format!(
            "no WAL segments in {}",
            dir.display()
        )));
    }
    let mut report = RecoveryReport::default();
    let last_idx = segments.len() - 1;
    // Accumulated per-campaign durable state.
    struct Rebuild {
        name: String,
        spec: CampaignSpec,
        request_id: Option<u64>,
        base: Option<CampaignSnapshot>,
        events: Vec<CampaignEvent>,
        stopped: bool,
        records: u64,
    }
    let mut fleet: BTreeMap<u64, Rebuild> = BTreeMap::new();
    let mut aux_log: Vec<(String, String)> = Vec::new();
    let mut max_seg = 0;
    for (i, (seg_no, path)) in segments.iter().enumerate() {
        max_seg = max_seg.max(*seg_no);
        report.segments_read += 1;
        let bytes = std::fs::read(path).map_err(io_err)?;
        let (records, consumed) = decode_segment(&bytes);
        let torn = bytes.len() as u64 - consumed;
        if torn > 0 {
            if i != last_idx {
                return Err(ServeError::Storage(format!(
                    "corrupt record mid-WAL in {} (not the final segment)",
                    path.display()
                )));
            }
            // Torn tail from the crash: truncate it so future appends
            // start at a clean record boundary.
            report.truncated_bytes += torn;
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(io_err)?;
            file.set_len(consumed).map_err(io_err)?;
        }
        for record in records {
            report.records_read += 1;
            match record {
                WalRecord::Register {
                    id,
                    name,
                    spec,
                    request_id,
                } => {
                    fleet.insert(
                        id,
                        Rebuild {
                            name,
                            spec,
                            request_id,
                            base: None,
                            events: Vec::new(),
                            stopped: false,
                            records: 1,
                        },
                    );
                }
                WalRecord::Events { id, events } => {
                    if let Some(r) = fleet.get_mut(&id) {
                        r.events.extend(events);
                        r.records += 1;
                    }
                }
                WalRecord::Checkpoint {
                    id,
                    name,
                    spec,
                    request_id,
                    stopped,
                    snapshot,
                } => {
                    let records = fleet.get(&id).map(|r| r.records + 1).unwrap_or(1);
                    fleet.insert(
                        id,
                        Rebuild {
                            name,
                            spec,
                            request_id,
                            base: Some(snapshot),
                            events: Vec::new(),
                            stopped,
                            records,
                        },
                    );
                }
                WalRecord::Stop { id } => {
                    if let Some(r) = fleet.get_mut(&id) {
                        r.stopped = true;
                        r.records += 1;
                    }
                }
                WalRecord::Aux { key, json } => {
                    aux_log.push((key, json));
                }
            }
        }
    }
    let mut registry = CampaignRegistry::new(workers);
    let mut durable_len = BTreeMap::new();
    let mut specs = BTreeMap::new();
    for (id, r) in fleet {
        let mut snapshot = r.base.unwrap_or(CampaignSnapshot {
            version: SNAPSHOT_VERSION,
            seed: r.spec.seed,
            policy: r.spec.policy,
            n_ticks: 0,
            target_clock: 0,
            log: Vec::new(),
        });
        snapshot.log.extend(r.events);
        let durable_events = snapshot.log.len();
        let fresh = r.spec.build();
        let (campaign, resume) = Campaign::resume_prefix(&snapshot, fresh)?;
        if resume.mid_tick {
            report.mid_tick_campaigns += 1;
        }
        if resume.rebuilt_events > durable_events {
            report.healed_events += (resume.rebuilt_events - durable_events) as u64;
        }
        // Events the fleet already re-emitted are durable; events still
        // pending in a staged wave stay at the recorded count (replay
        // re-emits them identically, so they are never re-appended).
        durable_len.insert(id, durable_events.max(resume.rebuilt_events));
        if resume.mid_tick {
            durable_len.insert(id, durable_events);
        }
        registry.restore_entry(id, r.name.clone(), campaign, r.stopped, r.records, 0);
        if let Some(rid) = r.request_id {
            registry.restore_request_id(rid, id);
        }
        specs.insert(id, (r.name, r.spec, r.request_id));
        report.campaigns += 1;
    }
    Ok((registry, durable_len, specs, aux_log, max_seg, report))
}

/// Decodes records until the bytes run out or a record fails its
/// header/CRC check. Returns the records and the clean byte count.
fn decode_segment(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at + 8 <= bytes.len() {
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let crc = u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        let start = at + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= bytes.len() => e,
            _ => break, // short body: torn tail
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // corrupt body: torn tail
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break; // CRC passed but payload unreadable: treat as torn
        };
        match serde_json::from_str::<WalRecord>(text) {
            Ok(r) => records.push(r),
            Err(_) => break, // CRC passed but JSON broken: treat as torn
        }
        at = end;
    }
    (records, at as u64)
}

fn encode_record(record: &WalRecord) -> Result<Vec<u8>, ServeError> {
    let payload = serde_json::to_string(record)
        .map_err(|e| ServeError::Storage(e.to_string()))?
        .into_bytes();
    let len = u32::try_from(payload.len())
        .map_err(|_| ServeError::Storage("WAL record over 4 GiB".into()))?;
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

/// Numbered WAL segments in `dir`, sorted by index.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServeError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err(e)),
    };
    for entry in entries {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        else {
            continue;
        };
        if let Ok(idx) = num.parse::<u64>() {
            out.push((idx, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

fn io_err(e: std::io::Error) -> ServeError {
    ServeError::Storage(e.to_string())
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3), the WAL's record integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemKind;
    use autotune::SchedulePolicy;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("autotune-wal-{}-{}-{}", std::process::id(), tag, n));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(i: u64) -> CampaignSpec {
        let mut s = CampaignSpec::minimal(format!("c{i}"), SystemKind::Redis, 6, 300 + i);
        s.policy = SchedulePolicy::AsyncSlots { k: 2 };
        s
    }

    fn straight_history(s: &CampaignSpec) -> String {
        let mut c = s.build();
        c.run();
        c.storage().to_json()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn wal_round_trip_rebuilds_identical_fleet() {
        let dir = temp_dir("roundtrip");
        let specs: Vec<CampaignSpec> = (0..4).map(spec).collect();
        let mut durable = DurableRegistry::create(&dir, 2, WalConfig::default()).unwrap();
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| durable.register_spec(s).unwrap())
            .collect();
        for _ in 0..5 {
            durable.step_round().unwrap();
        }
        let live: Vec<String> = ids
            .iter()
            .map(|id| {
                durable
                    .registry()
                    .campaign(*id)
                    .unwrap()
                    .storage()
                    .to_json()
            })
            .collect();
        drop(durable);
        let (recovered, report) = DurableRegistry::open(&dir, 2, WalConfig::default()).unwrap();
        assert_eq!(report.campaigns, 4);
        assert_eq!(report.truncated_bytes, 0);
        for (id, want) in ids.iter().zip(&live) {
            let got = recovered
                .registry()
                .campaign(*id)
                .unwrap()
                .storage()
                .to_json();
            assert_eq!(&got, want, "campaign {id} diverged across reopen");
        }
        // And the recovered fleet finishes to the straight-run history.
        let mut recovered = recovered;
        recovered.run_all().unwrap();
        for (i, id) in ids.iter().enumerate() {
            let got = recovered
                .registry()
                .campaign(*id)
                .unwrap()
                .storage()
                .to_json();
            assert_eq!(
                got,
                straight_history(&specs[i]),
                "campaign {i} final history"
            );
        }
        assert!(recovered.registry().fleet_stats().recoveries >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        let specs: Vec<CampaignSpec> = (0..2).map(spec).collect();
        let mut durable = DurableRegistry::create(&dir, 1, WalConfig::default()).unwrap();
        for s in &specs {
            durable.register_spec(s).unwrap();
        }
        for _ in 0..3 {
            durable.step_round().unwrap();
        }
        drop(durable);
        // Tear the last segment by hand: append garbage half-record.
        let (_, last) = list_segments(&dir).unwrap().pop().unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&last)
            .unwrap();
        f.write_all(&[0x55u8; 13]).unwrap();
        drop(f);
        let (recovered, report) = DurableRegistry::open(&dir, 1, WalConfig::default()).unwrap();
        assert_eq!(report.truncated_bytes, 13);
        assert_eq!(report.campaigns, 2);
        assert_eq!(recovered.registry().fleet_stats().wal_truncated_bytes, 13);
        // The file is clean again: a second open sees no torn bytes.
        drop(recovered);
        let (_, report2) = DurableRegistry::open(&dir, 1, WalConfig::default()).unwrap();
        assert_eq!(report2.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_segments_and_preserves_history() {
        let dir = temp_dir("ckpt");
        let specs: Vec<CampaignSpec> = (0..3).map(spec).collect();
        let config = WalConfig {
            segment_bytes: 16 * 1024,
            checkpoint_every_rounds: 2,
        };
        let mut durable = DurableRegistry::create(&dir, 2, config).unwrap();
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| durable.register_spec(s).unwrap())
            .collect();
        durable.run_all().unwrap();
        // Compaction ran (cadence 2): early segments are gone.
        let segments = list_segments(&dir).unwrap();
        assert!(segments[0].0 > 1, "expected first segments compacted away");
        drop(durable);
        let (recovered, _) = DurableRegistry::open(&dir, 2, config).unwrap();
        for (i, id) in ids.iter().enumerate() {
            let got = recovered
                .registry()
                .campaign(*id)
                .unwrap()
                .storage()
                .to_json();
            assert_eq!(
                got,
                straight_history(&specs[i]),
                "campaign {i} after compaction"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_crash_points_all_recover_byte_identically() {
        // For each crash window, run with an aggressive chaos plan until
        // a crash fires, recover, finish, and compare to straight runs.
        let specs: Vec<CampaignSpec> = (0..3).map(spec).collect();
        let want: Vec<String> = specs.iter().map(straight_history).collect();
        for seed in [1u64, 2, 3, 4, 5, 6] {
            let dir = temp_dir(&format!("chaos{seed}"));
            let mut durable = DurableRegistry::create(&dir, 2, WalConfig::default()).unwrap();
            durable.set_chaos(ChaosPlan::new(seed).with_crashes(0.02));
            let mut crashed = None;
            for s in &specs {
                match durable.register_spec(s) {
                    Ok(_) => {}
                    Err(_) => {
                        crashed = durable.crashed();
                        break;
                    }
                }
            }
            while crashed.is_none() && durable.registry().has_runnable() {
                if durable.step_round().is_err() {
                    crashed = durable.crashed();
                }
            }
            drop(durable);
            let (mut recovered, _) = DurableRegistry::open(&dir, 2, WalConfig::default()).unwrap();
            // Re-register anything that never became durable, then run
            // to completion with chaos off.
            for s in &specs {
                let present = recovered.registry().ids().iter().any(|id| {
                    recovered
                        .registry()
                        .stats(*id)
                        .map(|st| st.name == s.name)
                        .unwrap_or(false)
                });
                if !present {
                    recovered.register_spec(s).unwrap();
                }
            }
            recovered.run_all().unwrap();
            for (i, s) in specs.iter().enumerate() {
                let id = recovered
                    .registry()
                    .ids()
                    .into_iter()
                    .find(|id| {
                        recovered
                            .registry()
                            .stats(*id)
                            .map(|st| st.name == s.name)
                            .unwrap_or(false)
                    })
                    .expect("campaign present after recovery");
                let got = recovered
                    .registry()
                    .campaign(id)
                    .unwrap()
                    .storage()
                    .to_json();
                assert_eq!(
                    got, want[i],
                    "seed {seed} campaign {i} diverged after crash recovery"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn aux_journal_survives_reopen_and_compaction() {
        let dir = temp_dir("aux");
        let config = WalConfig {
            segment_bytes: 16 * 1024,
            checkpoint_every_rounds: 2,
        };
        let mut durable = DurableRegistry::create(&dir, 1, config).unwrap();
        durable.register_spec(&spec(0)).unwrap();
        durable
            .append_aux("router", "{\"op\":1}".to_string())
            .unwrap();
        durable
            .append_aux("other", "{\"x\":true}".to_string())
            .unwrap();
        durable
            .append_aux("router", "{\"op\":2}".to_string())
            .unwrap();
        // Force checkpoint compaction: aux records must be re-emitted.
        durable.run_all().unwrap();
        durable.checkpoint().unwrap();
        assert_eq!(durable.aux_log("router"), vec!["{\"op\":1}", "{\"op\":2}"]);
        drop(durable);
        let (reopened, _) = DurableRegistry::open(&dir, 1, config).unwrap();
        assert_eq!(reopened.aux_log("router"), vec!["{\"op\":1}", "{\"op\":2}"]);
        assert_eq!(reopened.aux_log("other"), vec!["{\"x\":true}"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_panics_recover_at_the_pool_boundary() {
        let dir = temp_dir("panic");
        let specs: Vec<CampaignSpec> = (0..3).map(spec).collect();
        let want: Vec<String> = specs.iter().map(straight_history).collect();
        let mut durable = DurableRegistry::create(&dir, 2, WalConfig::default()).unwrap();
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| durable.register_spec(s).unwrap())
            .collect();
        durable.set_chaos(ChaosPlan::new(77).with_worker_panics(0.15));
        let mut recoveries = 0;
        let mut guard = 0;
        while durable.registry().has_runnable() {
            let round = durable.step_round().unwrap();
            if round.recovered {
                recoveries += 1;
            }
            guard += 1;
            assert!(guard < 10_000, "fleet failed to converge under panics");
        }
        assert!(recoveries > 0, "panic plan at 15% never fired");
        assert_eq!(durable.registry().fleet_stats().recoveries, recoveries);
        for (i, id) in ids.iter().enumerate() {
            let got = durable
                .registry()
                .campaign(*id)
                .unwrap()
                .storage()
                .to_json();
            assert_eq!(got, want[i], "campaign {i} diverged across panic recovery");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Deterministic wave-parallel map over a slice.
//!
//! The autotuning hot paths (acquisition candidate scoring, marginal-
//! likelihood restarts, wave measurement in the executor) all share the
//! same shape: a batch of independent, pure computations whose *results*
//! must not depend on thread count or interleaving. [`par_map`] encodes
//! that contract once: items are split into contiguous chunks, one scoped
//! thread per chunk, and outputs are concatenated in chunk order, so the
//! returned vector is always exactly `items.iter().map(f)` regardless of
//! scheduling. Callers that need a reduction (e.g. argmax) fold the
//! returned vector sequentially in index order.

/// Maps `f` over `items` on scoped threads, returning outputs in input
/// order.
///
/// `f` is called with `(index, &item)` exactly once per item. Falls back
/// to a plain sequential map when there are fewer than `min_parallel`
/// items or the host reports a single hardware thread, so tiny batches
/// don't pay thread spawn costs.
///
/// # Determinism
/// `f` must be pure with respect to ordering: it may not mutate shared
/// state or consume an RNG stream whose draw order matters. Under that
/// contract the output is bitwise identical to the sequential map for any
/// thread count.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn par_map<T, R, F>(items: &[T], min_parallel: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    par_map_threads(items, min_parallel, threads, f)
}

/// [`par_map`] with an explicit worker-thread cap instead of the host's
/// reported parallelism — for callers that own a sized worker pool (e.g.
/// a campaign registry multiplexing many campaigns over `w` workers).
/// Output is bitwise identical for every `threads` value, including 1.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn par_map_threads<T, R, F>(items: &[T], min_parallel: usize, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads < 2 || items.len() < min_parallel.max(2) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                scope.spawn(move |_| {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked")) // lint: allow(D5) worker panics are propagated deliberately
            .collect()
    })
    .expect("par_map scope panicked") // lint: allow(D5) scope panics are propagated deliberately
}

/// Sums floats strictly left-to-right in index order.
///
/// Float addition is not associative, so a reduction whose grouping
/// depends on chunking or thread count is not byte-stable. This helper
/// (and [`ordered_mean`]) is the blessed way to reduce [`par_map`]
/// output — the lint's D11 rule rejects ad-hoc `.sum()`/captured `+=`
/// accumulation inside `par_map*` closures. The map stays parallel; the
/// fold is sequential and O(n), which is never the hot part.
pub fn ordered_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Arithmetic mean via [`ordered_sum`]; `0.0` for an empty slice.
pub fn ordered_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    ordered_sum(xs) / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_sum_is_left_to_right() {
        // A sequence engineered so grouping changes the rounding: the
        // left-to-right fold must match the manual sequential fold
        // bit-for-bit.
        let xs: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1e16 } else { 1.0 })
            .collect();
        let mut want = 0.0;
        for &x in &xs {
            want += x;
        }
        assert_eq!(ordered_sum(&xs).to_bits(), want.to_bits());
    }

    #[test]
    fn ordered_mean_handles_empty() {
        assert_eq!(ordered_mean(&[]), 0.0);
        assert_eq!(ordered_mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn ordered_sum_of_par_map_output_is_thread_invariant() {
        let items: Vec<f64> = (0..513).map(|i| (i as f64).sin() * 1e8).collect();
        let base = ordered_sum(&par_map_threads(&items, 2, 1, |_, x| x * 1.000001));
        for threads in [2, 3, 8] {
            let got = ordered_sum(&par_map_threads(&items, 2, threads, |_, x| x * 1.000001));
            assert_eq!(got.to_bits(), base.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn matches_sequential_map_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        let par = par_map(&items, 2, |i, x| x * 3 + i as u64);
        assert_eq!(par, seq);
    }

    #[test]
    fn small_batches_stay_sequential_and_identical() {
        for n in 0..8usize {
            let items: Vec<usize> = (0..n).collect();
            let got = par_map(&items, 64, |i, x| (i, *x));
            let want: Vec<(usize, usize)> =
                items.iter().enumerate().map(|(i, x)| (i, *x)).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let idx = par_map(&items, 2, |i, _| i);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn thread_cap_never_changes_output() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x.wrapping_mul(31) ^ i as u64)
            .collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_threads(&items, 2, threads, |i, x| x.wrapping_mul(31) ^ i as u64);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, 2, |_, x| {
            assert!(*x < 63, "boom");
            *x
        });
    }
}

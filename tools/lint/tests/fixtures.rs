//! Snapshot tests over the fixture corpus: every violating fixture must
//! reproduce its `.expected` output byte-for-byte, every clean fixture
//! must be silent, and the allow hatch must suppress exactly its own
//! line. A final pair of tests drives the installed binary to pin the
//! `--deny-all` exit-code contract CI relies on.

use autotune_lint::{lint_source, CrateKind};
use std::path::PathBuf;
use std::process::Command;

const DIAGNOSTICS: [&str; 12] = [
    "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "d10", "d11", "d12",
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// D10 (append-before-ack) only applies to the serving crate, so its
/// fixtures lint under `CrateKind::Serve`; everything else is library code.
fn kind_of(diag: &str) -> CrateKind {
    if diag == "d10" {
        CrateKind::Serve
    } else {
        CrateKind::Library
    }
}

/// Lints a fixture under the given crate kind and renders violations one
/// per line.
fn render_as(name: &str, kind: CrateKind) -> String {
    let report = lint_source(name, kind, &read(name));
    report.violations.iter().map(|v| format!("{v}\n")).collect()
}

#[test]
fn violating_fixtures_match_snapshots() {
    for d in DIAGNOSTICS {
        let name = format!("{d}_violating.rs");
        let expected = read(&format!("{d}_violating.expected"));
        let got = render_as(&name, kind_of(d));
        assert!(!got.is_empty(), "{name} must produce violations");
        assert_eq!(got, expected, "snapshot mismatch for {name}");
    }
}

#[test]
fn clean_fixtures_are_silent() {
    for d in DIAGNOSTICS {
        let name = format!("{d}_clean.rs");
        assert_eq!(render_as(&name, kind_of(d)), "", "{name} should lint clean");
    }
}

#[test]
fn allow_suppresses_exactly_its_own_line() {
    let name = "allow_lines.rs";
    let report = lint_source(name, CrateKind::Library, &read(name));
    // Line 5 carries the allow; the identical unwrap on line 6 still
    // fires, and nothing else does.
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].line, 6);
    assert_eq!(report.violations[0].code, "D5");
    assert_eq!(report.allowed.get("D5"), Some(&1));
}

#[test]
fn flow_allow_suppresses_exactly_its_own_line() {
    // Two identical decision-feeding Relaxed stores; only the line that
    // carries a written happens-before argument is spared.
    let src = "fn publish(heat: &AtomicU64, t: u64) {\n\
               heat.store(t, Ordering::Relaxed); // lint: allow(D9) handoff is ordered by thread::join\n\
               heat.store(t, Ordering::Relaxed);\n\
               }\n";
    let report = lint_source("inline.rs", CrateKind::Library, src);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].line, 3);
    assert_eq!(report.violations[0].code, "D9");
    assert_eq!(report.allowed.get("D9"), Some(&1));
}

#[test]
fn d9_clean_fixture_allow_is_counted() {
    let report = lint_source("d9_clean.rs", CrateKind::Library, &read("d9_clean.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.allowed.get("D9"), Some(&1));
}

#[test]
fn deny_all_binary_fails_on_violating_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg("--deny-all")
        .arg(fixture_dir().join("d5_violating.rs"))
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "deny-all must fail on violations");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("D5"), "violations printed: {stdout}");
}

#[test]
fn deny_all_binary_passes_on_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg("--deny-all")
        .arg(fixture_dir().join("d5_clean.rs"))
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "deny-all must pass on clean input");
}

#[test]
fn deny_all_binary_fails_on_flow_pack_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg("--deny-all")
        .arg(fixture_dir().join("d7_violating.rs"))
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "deny-all must fail on lock-order violations"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("D7"), "violations printed: {stdout}");
    assert!(
        stdout.contains("lock-order inversion"),
        "cycle reported: {stdout}"
    );
}

#[test]
fn deny_all_binary_passes_on_flow_pack_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg("--deny-all")
        .arg(fixture_dir().join("d12_clean.rs"))
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "deny-all must pass on clean input");
}

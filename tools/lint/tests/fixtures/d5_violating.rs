//! D5 fixture: panicking calls in library code paths.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller provides digits")
}

pub fn unsupported() -> ! {
    panic!("not implemented")
}

#!/usr/bin/env bash
# The tier-1 gate, runnable locally; CI runs the same steps split across
# the build-test / lint / determinism matrix jobs in
# .github/workflows/ci.yml. Everything must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== no wall-clock reads in core =="
# Core derives every timestamp from the virtual clock; real time enters
# only through an injected WallTimer. A stray Instant::now() would break
# byte-identical replay.
if grep -rn "Instant::now\|SystemTime::now" crates/core/src | grep -v "^[^:]*:[0-9]*: *//"; then
  echo "wall-clock read in crates/core — inject a WallTimer instead" >&2
  exit 1
fi

echo "== fault determinism (release) =="
# The resilience stack (retries, timeouts, quarantine) must keep the
# byte-identical k=1 schedule-policy contract; run its regression test
# against the optimized build, where any wall-clock/thread-timing leak
# would surface.
cargo test -q --release -p autotune-tests --test fault_resilience

echo "== telemetry purity (release) =="
# ISSUE 3 acceptance: enabling every telemetry subscriber leaves k=1
# campaigns byte-identical.
cargo test -q --release -p autotune-tests --test telemetry

echo "== perf smoke (incremental suggest path) =="
# ISSUE 4 acceptance: mean suggest time per trial at n=500 on the
# incremental path must stay within 2x of tools/perf_baseline.json —
# a cheap tripwire against reintroducing an O(n³) fit per suggestion.
cargo run -q --release -p autotune-bench --bin perf_smoke

echo "CI gate passed."

//! D9 fixture: `Ordering::Relaxed` on atomics whose values feed control
//! decisions (eviction heat, LRU ticks) — not mere counters.

pub fn refresh_heat(heat: &AtomicU64, tick: u64) {
    heat.store(tick, Ordering::Relaxed);
}

pub fn is_hot(last_used: &AtomicU64, floor: u64) -> bool {
    last_used.load(Ordering::Relaxed) >= floor
}

//! Principal component analysis on top of the Jacobi eigendecomposition.
//!
//! Workload-identification embeddings (the `autotune-wid` crate) project
//! high-dimensional telemetry feature vectors onto the leading principal
//! components; this module provides the fit/transform pair.

use crate::{eigen::symmetric_eigen, LinalgError, Matrix, Result};

/// A fitted PCA model: per-feature means plus the leading principal axes.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `k x d` matrix; row `i` is the i-th principal axis.
    components: Matrix,
    /// Variance explained by each retained component.
    explained_variance: Vec<f64>,
    /// Total variance of the training data (sum over all components).
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA keeping `k` components on `data` (rows are samples).
    ///
    /// `k` is clamped to the number of features. Requires at least two
    /// samples (variance is undefined otherwise).
    pub fn fit(data: &Matrix, k: usize) -> Result<Self> {
        let (n, d) = (data.rows(), data.cols());
        if n < 2 || d == 0 {
            return Err(LinalgError::ShapeMismatch {
                context: "pca: need at least 2 samples and 1 feature",
            });
        }
        let k = k.min(d);
        // Column means.
        let mut mean = vec![0.0; d];
        for i in 0..n {
            crate::vector::axpy(1.0, data.row(i), &mut mean);
        }
        for m in mean.iter_mut() {
            *m /= n as f64;
        }
        // Covariance matrix (d x d).
        let mut cov = Matrix::zeros(d, d);
        for i in 0..n {
            let row = data.row(i);
            for a in 0..d {
                let da = row[a] - mean[a];
                for b in a..d {
                    cov[(a, b)] += da * (row[b] - mean[b]);
                }
            }
        }
        let denom = (n - 1) as f64;
        for a in 0..d {
            for b in a..d {
                cov[(a, b)] /= denom;
                cov[(b, a)] = cov[(a, b)];
            }
        }
        let eig = symmetric_eigen(&cov)?;
        let total_variance: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let explained_variance: Vec<f64> = eig.values[..k].iter().map(|v| v.max(0.0)).collect();
        // Components as rows: transpose of the leading eigenvector columns.
        let components = Matrix::from_fn(k, d, |i, j| eig.vectors[(j, i)]);
        Ok(Pca {
            mean,
            components,
            explained_variance,
            total_variance,
        })
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Variance explained by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by the retained components.
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            // Degenerate constant data: all (zero) variance is captured.
            1.0
        } else {
            self.explained_variance.iter().sum::<f64>() / self.total_variance
        }
    }

    /// Projects one sample into the component space.
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.mean.len(),
            "pca transform: feature count mismatch"
        );
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(&v, &m)| v - m).collect();
        (0..self.n_components())
            .map(|i| crate::vector::dot(self.components.row(i), &centered))
            .collect()
    }

    /// Projects every row of `data` into the component space.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..data.rows())
            .map(|i| self.transform_one(data.row(i)))
            .collect();
        Matrix::from_row_vectors(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data lying exactly on a line in 2-D: one component explains all
    /// variance.
    #[test]
    fn line_data_one_component() {
        let data = Matrix::from_fn(10, 2, |i, j| {
            let t = i as f64;
            if j == 0 {
                t
            } else {
                2.0 * t + 3.0
            }
        });
        let pca = Pca::fit(&data, 1).unwrap();
        assert!(pca.explained_variance_ratio() > 0.999);
    }

    #[test]
    fn transform_centers_data() {
        let data = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 14.0]]);
        let pca = Pca::fit(&data, 2).unwrap();
        // The two projected points must be symmetric around the origin.
        let p0 = pca.transform_one(data.row(0));
        let p1 = pca.transform_one(data.row(1));
        for (a, b) in p0.iter().zip(&p1) {
            assert!((a + b).abs() < 1e-10);
        }
    }

    #[test]
    fn k_clamped_to_features() {
        let data = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0], &[0.0, 3.0]]);
        let pca = Pca::fit(&data, 10).unwrap();
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    fn variance_preserved_under_full_projection() {
        let data = Matrix::from_rows(&[
            &[1.0, 0.5, 0.1],
            &[2.0, 1.5, -0.3],
            &[0.5, 2.5, 0.9],
            &[1.5, 1.0, 0.2],
        ]);
        let pca = Pca::fit(&data, 3).unwrap();
        assert!((pca.explained_variance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_data_degenerate_ratio() {
        let data = Matrix::from_fn(5, 3, |_, _| 7.0);
        let pca = Pca::fit(&data, 2).unwrap();
        assert_eq!(pca.explained_variance_ratio(), 1.0);
        assert_eq!(pca.transform_one(&[7.0, 7.0, 7.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn single_sample_rejected() {
        let data = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert!(Pca::fit(&data, 1).is_err());
    }
}

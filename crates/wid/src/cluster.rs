//! K-means clustering of workload embeddings.
//!
//! Groups workloads into families so one tuned configuration can serve a
//! whole cluster (slide 88: "optimize one system, reuse on similar ones").
//! K-means++ seeding plus Lloyd iterations; deterministic under a seed.

use crate::{Result, WidError};
use rand::{Rng, SeedableRng};

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    /// Training-set assignments (cluster index per input row).
    assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    inertia: f64,
}

impl KMeans {
    /// Fits `k` clusters to `points` (rows), deterministically per seed.
    pub fn fit(points: &[Vec<f64>], k: usize, seed: u64) -> Result<Self> {
        if points.len() < k || k == 0 {
            return Err(WidError::NotEnoughData {
                what: "k-means",
                needed: k.max(1),
                got: points.len(),
            });
        }
        let d = points[0].len();
        for p in points {
            if p.len() != d {
                return Err(WidError::DimensionMismatch {
                    expected: d,
                    actual: p.len(),
                });
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut inertia = f64::INFINITY;
        for _iter in 0..100 {
            // Assign.
            let mut changed = false;
            let mut new_inertia = 0.0;
            for (i, p) in points.iter().enumerate() {
                let (best, dist) = nearest(&centroids, p);
                new_inertia += dist;
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            inertia = new_inertia;
            if !changed {
                break;
            }
            // Update.
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignments) {
                autotune_linalg::axpy(1.0, p, &mut sums[a]);
                counts[a] += 1;
            }
            // Re-seed empty clusters at the point farthest from any
            // current centroid (computed before mutation to keep the
            // borrow checker and the semantics honest).
            let far = points
                .iter()
                .max_by(|a, b| {
                    let da = nearest(&centroids, a).1;
                    let db = nearest(&centroids, b).1;
                    da.total_cmp(&db)
                })
                .expect("points non-empty") // lint: allow(D5) fit() rejects empty inputs at entry
                .clone();
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    *c = sum.iter().map(|s| s / count as f64).collect();
                } else {
                    *c = far.clone();
                }
            }
        }
        Ok(KMeans {
            centroids,
            assignments,
            inertia,
        })
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Training-set assignments.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Final inertia (sum of squared distances).
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Predicts the cluster of a new point.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest(&self.centroids, point).0
    }
}

/// Returns `(index, squared_distance)` of the nearest centroid.
fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = autotune_linalg::squared_distance(c, p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// K-means++ seeding: spread the initial centroids proportionally to
/// squared distance from those already chosen.
fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points.iter().map(|p| nearest(&centroids, p).1).collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids: duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, &d) in dists.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

/// Clustering purity against known labels: the fraction of points whose
/// cluster's majority label matches their own. 1.0 = perfect.
pub fn purity(assignments: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignments.len(), labels.len(), "purity: length mismatch");
    if assignments.is_empty() {
        return 1.0;
    }
    let k = assignments.iter().max().map_or(0, |&m| m + 1);
    let l = labels.iter().max().map_or(0, |&m| m + 1);
    let mut counts = vec![vec![0usize; l]; k];
    for (&a, &lab) in assignments.iter().zip(labels) {
        counts[a][lab] += 1;
    }
    let majority_sum: usize = counts
        .iter()
        .map(|row| row.iter().max().copied().unwrap_or(0))
        .sum();
    majority_sum as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn blobs(
        centers: &[Vec<f64>],
        per: usize,
        spread: f64,
        seed: u64,
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (li, c) in centers.iter().enumerate() {
            for _ in 0..per {
                let p: Vec<f64> = c
                    .iter()
                    .map(|&x| x + spread * (rng.gen::<f64>() - 0.5))
                    .collect();
                pts.push(p);
                labels.push(li);
            }
        }
        (pts, labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let centers = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]];
        let (pts, labels) = blobs(&centers, 30, 1.0, 1);
        let km = KMeans::fit(&pts, 3, 42).unwrap();
        assert!(purity(km.assignments(), &labels) > 0.95);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let centers = vec![vec![0.0], vec![100.0]];
        let (pts, _) = blobs(&centers, 10, 1.0, 2);
        let km = KMeans::fit(&pts, 2, 3).unwrap();
        for (p, &a) in pts.iter().zip(km.assignments()) {
            assert_eq!(km.predict(p), a);
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let centers = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![10.0, 0.0]];
        let (pts, _) = blobs(&centers, 20, 2.0, 4);
        let i1 = KMeans::fit(&pts, 1, 5).unwrap().inertia();
        let i3 = KMeans::fit(&pts, 3, 5).unwrap().inertia();
        assert!(i3 < i1 * 0.5, "inertia k=3 {i3} vs k=1 {i1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (pts, _) = blobs(&[vec![0.0], vec![8.0]], 15, 1.0, 6);
        let a = KMeans::fit(&pts, 2, 7).unwrap();
        let b = KMeans::fit(&pts, 2, 7).unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn too_few_points_rejected() {
        let pts = vec![vec![1.0]];
        assert!(matches!(
            KMeans::fit(&pts, 2, 0),
            Err(WidError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn purity_extremes() {
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        assert_eq!(purity(&[0, 1, 0, 1], &[0, 0, 1, 1]), 0.5);
        assert_eq!(purity(&[], &[]), 1.0);
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let km = KMeans::fit(&pts, 2, 8).unwrap();
        assert_eq!(km.assignments().len(), 10);
        assert!(km.inertia() < 1e-12);
    }
}

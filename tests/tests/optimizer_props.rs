//! Property-based tests over the whole optimizer family: every optimizer
//! must satisfy the ask/tell contract on arbitrary spaces and objectives.

use autotune_optimizer::{
    BayesianOptimizer, CmaEs, CmaEsConfig, GaConfig, GeneticAlgorithm, GridSearch, Optimizer,
    ParticleSwarm, PsoConfig, RandomSearch, SimulatedAnnealing,
};
use autotune_space::{Param, Space};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A randomized mixed-type space (1 float + optional int/categorical).
fn random_space(n_extra: usize) -> Space {
    let mut b = Space::builder().add(Param::float("x", -1.0, 1.0));
    if n_extra >= 1 {
        b = b.add(Param::int("n", 1, 9));
    }
    if n_extra >= 2 {
        b = b.add(Param::categorical("c", &["a", "b", "c"]));
    }
    b.build().expect("valid space")
}

fn all_optimizers(space: &Space) -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(RandomSearch::new(space.clone())),
        Box::new(GridSearch::with_budget(space.clone(), 16)),
        Box::new(SimulatedAnnealing::new(space.clone(), 1.0, 0.95)),
        Box::new(BayesianOptimizer::gp(space.clone())),
        Box::new(BayesianOptimizer::smac(space.clone())),
        Box::new(CmaEs::new(space.clone(), CmaEsConfig::default())),
        Box::new(ParticleSwarm::new(space.clone(), PsoConfig::default())),
        Box::new(GeneticAlgorithm::new(space.clone(), GaConfig::default())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants for every optimizer on every space shape:
    /// * suggestions always validate against the space,
    /// * best() equals the minimum finite observed value,
    /// * n_observed counts every observe call,
    /// * crashed (NaN) observations never become best.
    #[test]
    fn ask_tell_contract(seed in 0u64..500, n_extra in 0usize..3, crash_every in 2usize..9) {
        let space = random_space(n_extra);
        for mut opt in all_optimizers(&space) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut min_finite = f64::INFINITY;
            let budget = 20;
            for i in 0..budget {
                let cfg = opt.suggest(&mut rng);
                prop_assert!(
                    space.validate_config(&cfg).is_ok(),
                    "{}: invalid suggestion {cfg}",
                    opt.name()
                );
                let v = if i % crash_every == 0 {
                    f64::NAN
                } else {
                    let x = cfg.get_f64("x").expect("x always present");
                    x * x + i as f64 * 0.01
                };
                opt.observe(&cfg, v);
                if v.is_finite() {
                    min_finite = min_finite.min(v);
                }
            }
            prop_assert_eq!(opt.n_observed(), budget, "{} miscounts", opt.name());
            if min_finite.is_finite() {
                let best = opt.best().expect("finite observations exist");
                prop_assert!(best.value.is_finite(), "{}: NaN best", opt.name());
                prop_assert!(
                    (best.value - min_finite).abs() < 1e-12,
                    "{}: best {} != min observed {}",
                    opt.name(),
                    best.value,
                    min_finite
                );
            }
        }
    }

    /// Batch suggestion always returns exactly k valid configs.
    #[test]
    fn batch_contract(seed in 0u64..200, k in 1usize..6) {
        let space = random_space(2);
        let mut opt = BayesianOptimizer::gp(space.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let c = opt.suggest(&mut rng);
            let x = c.get_f64("x").expect("present");
            opt.observe(&c, x * x);
        }
        let batch = opt.suggest_batch(k, &mut rng);
        prop_assert_eq!(batch.len(), k);
        for c in &batch {
            prop_assert!(space.validate_config(c).is_ok());
        }
        // Resolve liars so the optimizer stays consistent.
        for c in &batch {
            let x = c.get_f64("x").expect("present");
            opt.observe(c, x * x);
        }
    }

    /// Pareto-front invariants under arbitrary insert sequences: no member
    /// dominates another; every rejected point is dominated by or equal to
    /// some member.
    #[test]
    fn pareto_front_invariants(points in proptest::collection::vec((0.0..10.0f64, 0.0..10.0f64), 1..60)) {
        use autotune_optimizer::moo::{dominates, MultiObservation, ParetoFront};
        use autotune_space::Config;
        let mut front = ParetoFront::new();
        for &(a, b) in &points {
            let obs = MultiObservation {
                config: Config::new(),
                objectives: vec![a, b],
            };
            let accepted = front.insert(obs.clone());
            if !accepted {
                prop_assert!(
                    front.members().iter().any(|m| dominates(&m.objectives, &obs.objectives)
                        || m.objectives == obs.objectives),
                    "rejected point not dominated"
                );
            }
        }
        let members = front.members();
        for i in 0..members.len() {
            for j in 0..members.len() {
                if i != j {
                    prop_assert!(
                        !dominates(&members[i].objectives, &members[j].objectives),
                        "front contains dominated member"
                    );
                }
            }
        }
        // Hypervolume is monotone under any reference expansion.
        let hv1 = front.hypervolume_2d((10.0, 10.0));
        let hv2 = front.hypervolume_2d((12.0, 12.0));
        prop_assert!(hv2 >= hv1 - 1e-9);
    }

    /// Successive halving conserves its trial arithmetic for any (n, eta).
    #[test]
    fn successive_halving_budget(initial in 4usize..40, eta in 2usize..5, levels in 1usize..4) {
        use autotune::{FidelityLevel, SuccessiveHalving, SuccessiveHalvingConfig};
        use autotune_sim::Workload;
        prop_assume!(initial >= eta);
        let ladder: Vec<FidelityLevel> = (0..levels)
            .map(|i| FidelityLevel {
                label: format!("L{i}"),
                workload: Workload::tpch(1.0 + i as f64),
            })
            .collect();
        let sh = SuccessiveHalving::new(ladder, SuccessiveHalvingConfig {
            initial_configs: initial,
            eta,
        });
        // total = sum of rung sizes with floor-division shrinkage.
        let mut expect = 0;
        let mut n = initial;
        for i in 0..levels {
            expect += n;
            if i + 1 < levels {
                n = (n / eta).max(1);
            }
        }
        prop_assert_eq!(sh.total_trials(), expect);
    }
}

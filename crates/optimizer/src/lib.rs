//! Black-box optimizers for systems autotuning.
//!
//! Implements the full optimizer taxonomy of the SIGMOD 2025 autotuning
//! tutorial:
//!
//! | Tutorial section | Implementation |
//! |---|---|
//! | Grid search (slide 29) | [`GridSearch`] |
//! | Random search (slide 30) | [`RandomSearch`] |
//! | Simulated annealing (slide 7) | [`SimulatedAnnealing`] |
//! | Bayesian optimization (slides 32-48) | [`BayesianOptimizer`] with [`AcquisitionFunction`] |
//! | SMAC / random-forest surrogate (slide 50) | [`BayesianOptimizer::smac`] |
//! | CMA-ES (slide 50) | [`CmaEs`] |
//! | Particle swarm (slide 50) | [`ParticleSwarm`] |
//! | Genetic algorithms (slide 81) | [`GeneticAlgorithm`] |
//! | Multi-armed bandits for discrete knobs (slide 51) | [`bandit`] |
//! | Multi-objective / ParEGO (slide 58) | [`moo`], [`NsgaII`] |
//! | Nelder–Mead local refinement | [`NelderMead`] |
//!
//! # The ask/tell contract
//!
//! Every optimizer implements [`Optimizer`]: `suggest` a configuration,
//! `observe` its measured objective, repeat (slide 34's "optimizer as a
//! black box"). **Convention: objectives are minimized.** Callers
//! maximizing throughput negate before calling `observe`.

mod annealing;
mod bo;
mod cmaes;
mod ga;
mod grid;
mod nelder_mead;
mod nsga;
mod pso;
mod random;

pub mod acquisition;
pub mod bandit;
pub mod moo;

pub use acquisition::AcquisitionFunction;
pub use annealing::SimulatedAnnealing;
pub use bo::{BayesianOptimizer, BoConfig, SurrogateChoice};
pub use cmaes::{CmaEs, CmaEsConfig};
pub use ga::{GaConfig, GeneticAlgorithm};
pub use grid::GridSearch;
pub use nelder_mead::NelderMead;
pub use nsga::{NsgaConfig, NsgaII};
pub use pso::{ParticleSwarm, PsoConfig};
pub use random::RandomSearch;

use autotune_space::{Config, Space};
use rand::RngCore;

/// One completed trial: a configuration and its measured objective value
/// (smaller is better).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The evaluated configuration.
    pub config: Config,
    /// The measured objective (minimization convention).
    pub value: f64,
}

/// The ask/tell optimizer interface (tutorial slide 34).
///
/// Implementations are sequential state machines: `suggest` may depend on
/// everything observed so far. Objectives follow the **minimization**
/// convention.
pub trait Optimizer: Send {
    /// Proposes the next configuration to evaluate.
    fn suggest(&mut self, rng: &mut dyn RngCore) -> Config;

    /// Reports the measured objective for a configuration (not necessarily
    /// the most recently suggested one — asynchronous schedulers report
    /// out of order).
    fn observe(&mut self, config: &Config, value: f64);

    /// Best observation so far, if any.
    fn best(&self) -> Option<&Observation>;

    /// The space this optimizer searches.
    fn space(&self) -> &Space;

    /// Human-readable optimizer name for experiment reports.
    fn name(&self) -> &str;

    /// Marks a suggested configuration as *in flight*: proposed but not
    /// yet observed. The default is a no-op; model-based optimizers
    /// override it to pin a constant-liar pseudo-observation at the point
    /// so concurrent suggestions spread out instead of piling onto one
    /// optimum (tutorial slide 57). The mark is released when
    /// [`Optimizer::observe`] reports the real value.
    fn mark_pending(&mut self, _config: &Config) {}

    /// Releases a pending mark without reporting an observation — the
    /// trial was lost to infrastructure and carries no information about
    /// the configuration. The default is a no-op, matching the default
    /// [`Optimizer::mark_pending`].
    fn unmark_pending(&mut self, _config: &Config) {}

    /// Proposes `k` configurations for parallel evaluation (tutorial slide
    /// 57): `k` suggestions, each marked pending so batch diversity falls
    /// out of [`Optimizer::mark_pending`].
    fn suggest_batch(&mut self, k: usize, rng: &mut dyn RngCore) -> Vec<Config> {
        (0..k)
            .map(|_| {
                let config = self.suggest(rng);
                self.mark_pending(&config);
                config
            })
            .collect()
    }

    /// Number of observations reported so far.
    fn n_observed(&self) -> usize;

    /// Number of full surrogate refits performed so far: hyperparameter
    /// refit cycles, plus full fits forced because the model refused an
    /// incremental update (e.g. the random forest has no `observe` path,
    /// so every "incremental" step is silently a full O(trees · n log n)
    /// refit — this counter is where that cost surfaces). The default is 0
    /// for optimizers without a refitted model; model-based optimizers
    /// override it so campaign telemetry can attribute tuner overhead to
    /// refit cycles (executors poll this counter after each
    /// `observe`/`suggest` round and emit a refit event when it advances).
    fn n_refits(&self) -> usize {
        0
    }

    /// Number of O(n²) in-place surrogate updates performed so far (the
    /// incremental alternative to a full refit). Default 0 for optimizers
    /// without an incremental model path; executors poll this counter and
    /// emit a model-update event when it advances.
    fn n_model_updates(&self) -> usize {
        0
    }
}

/// Shared best-tracking bookkeeping used by every optimizer.
#[derive(Debug, Clone, Default)]
pub(crate) struct BestTracker {
    best: Option<Observation>,
    n: usize,
}

impl BestTracker {
    pub(crate) fn observe(&mut self, config: &Config, value: f64) {
        self.n += 1;
        if value.is_nan() {
            return; // a crashed trial can never be the best
        }
        if self.best.as_ref().is_none_or(|b| value < b.value) {
            self.best = Some(Observation {
                config: config.clone(),
                value,
            });
        }
    }

    pub(crate) fn best(&self) -> Option<&Observation> {
        self.best.as_ref()
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use autotune_space::{Config, Param, Space};

    /// 2-D sphere-like space used across optimizer tests.
    pub fn sphere_space() -> Space {
        Space::builder()
            .add(Param::float("x", -2.0, 2.0))
            .add(Param::float("y", -2.0, 2.0))
            .build()
            .unwrap()
    }

    /// Sphere objective with optimum 0 at (0.5, -0.5).
    pub fn sphere(config: &Config) -> f64 {
        let x = config.get_f64("x").unwrap();
        let y = config.get_f64("y").unwrap();
        (x - 0.5).powi(2) + (y + 0.5).powi(2)
    }

    /// Runs an optimizer loop for `budget` trials and returns the best value.
    pub fn run_loop(
        opt: &mut dyn super::Optimizer,
        objective: impl Fn(&Config) -> f64,
        budget: usize,
        seed: u64,
    ) -> f64 {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..budget {
            let cfg = opt.suggest(&mut rng);
            let v = objective(&cfg);
            opt.observe(&cfg, v);
        }
        opt.best().expect("budget > 0").value
    }
}

//! Campaign observability: metrics, spans and live progress.
//!
//! Runs one fault-injected Bayesian-optimization campaign on an
//! asynchronous slot pool with all three telemetry subscribers attached:
//!
//! * a [`ProgressReporter`] printing a one-line status every 500 virtual
//!   seconds (best so far, incumbent age, fleet health, ETA);
//! * a [`SpanRecorder`] reconstructing per-trial spans — suggest → queued
//!   → running attempts → retry backoffs → observed — and exporting them
//!   as Chrome `trace_event` JSON;
//! * a [`MetricsCollector`](autotune::telemetry::MetricsCollector) (one
//!   is always on inside the executor; its
//!   snapshot rides on the `ExecReport`) rolling up counters, latency and
//!   queue-wait histograms, and real tuner overhead measured through an
//!   injected wall timer.
//!
//! The subscribers are pure observers on the virtual clock: attach all of
//! them or none and the campaign's results are byte-identical.
//!
//! Run with:
//! ```text
//! cargo run -p autotune-examples --bin telemetry --release
//! ```
//! then load `telemetry_trace.json` in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use autotune::executor::{
    CrashPenaltyMw, Executor, MachineAssignMw, OptimizerSource, QuarantineMw, RetryMw,
    SchedulePolicy, TimeoutMw,
};
use autotune::telemetry::{ProgressReporter, SpanRecorder, WallTimer};
use autotune::{Objective, Target, TrialStorage};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{CloudNoise, Environment, FaultPlan, NoiseConfig, RedisSim, Workload};
use std::time::Instant;

const N_MACHINES: usize = 6;
const BUDGET: usize = 48;
const SEED: u64 = 17;

/// Real time for optimizer overhead attribution. Core never reads the
/// wall clock itself — callers inject a timer, and without one every
/// overhead figure is a deterministic 0.
struct StdTimer(Instant);

impl WallTimer for StdTimer {
    fn now_ns(&mut self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

fn main() {
    println!("== Campaign observability: metrics, spans, progress ==\n");

    let target = Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(20_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyP95,
    )
    .with_noise(CloudNoise::new_fleet(
        N_MACHINES,
        NoiseConfig::default(),
        SEED,
    ))
    .with_faults(FaultPlan::aggressive(SEED).with_sick_machine(1, 6.0));

    let mut opt = BayesianOptimizer::gp(target.space().clone());
    let mut source = OptimizerSource::new(&mut opt, BUDGET);
    let mut storage = TrialStorage::new();
    let mut spans = SpanRecorder::new();
    let mut progress = ProgressReporter::new(std::io::stdout(), 500.0).with_budget(BUDGET);

    let report = {
        let mut exec = Executor::new(&target, SchedulePolicy::AsyncSlots { k: 3 })
            .with_middleware(Box::new(MachineAssignMw::round_robin(N_MACHINES)))
            .with_middleware(Box::new(QuarantineMw::with_defaults(N_MACHINES)))
            .with_middleware(Box::new(RetryMw::new(3, 5.0)))
            .with_middleware(Box::new(TimeoutMw::new(150.0)))
            .with_middleware(Box::new(CrashPenaltyMw::new(1e9)))
            .with_subscriber(Box::new(&mut progress))
            .with_subscriber(Box::new(&mut spans))
            .with_timer(Box::new(StdTimer(Instant::now())));
        exec.run(&mut source, &mut storage, SEED)
    };

    println!(
        "\nbest P95 {:.2} ms over {} trials\n",
        storage.best().map_or(f64::NAN, |t| t.cost),
        storage.len()
    );

    println!("-- metrics snapshot --\n{}\n", report.metrics);

    spans.validate_all().expect("spans are well-formed");
    println!("-- spans --");
    for span in spans.spans().iter().take(5) {
        println!(
            "trial {:>2}: suggested {:>7.1}s started {:>7.1}s finished {:>7.1}s observed \
             {:>7.1}s | {} segment(s), {} retries, machine {:?}",
            span.id,
            span.suggested_at,
            span.started_at,
            span.finished_at,
            span.observed_at,
            span.segments.len(),
            span.retries,
            span.machine_id,
        );
    }
    println!("... ({} spans total)\n", spans.spans().len());

    let path = "telemetry_trace.json";
    std::fs::write(path, spans.to_chrome_trace()).expect("write trace");
    println!("wrote {path} — open it in chrome://tracing or https://ui.perfetto.dev");
}

//! Perf trajectory for surrogate scaling: suggest/observe latency vs n.
//!
//! Runs the E36 scaling arm (`experiments::e36_scale::scale_points`):
//! sparse-GP and trust-region surrogates grown to n = 100k through their
//! incremental paths with latency sampled at n ∈ {1k, 10k, 100k}, plus
//! the dense GP measured at {1k, 2k} and extrapolated to 100k from its
//! fitted scaling exponent. Rewrites `BENCH_bo.json` with:
//!
//! * `points` — the committed `perf_smoke` baseline headline (the n=500
//!   incremental suggest tripwire this file has always carried),
//! * `scale_points` — one row per (surrogate, n) latency sample,
//! * `speedup_100k` — sparse/trust-region suggest advantage over the
//!   dense GP's extrapolated cost at n = 100k (the E36 ≥10x claim).
//!
//! `tools/bench_record.sh` appends the per-commit trajectory row and
//! gates the host-dependent metrics against CI-recorded history.
//!
//! ```text
//! cargo run -p autotune-bench --release --bin bo_scale
//! ```

use autotune_bench::experiments::e36_scale::scale_points;

/// Pulls `"<key>": <number>` out of a flat JSON object (same two-line
/// scan as `perf_smoke`; keeps the bench crate free of a JSON parser).
fn parse_flat_number(text: &str, key: &str) -> Option<f64> {
    let start = text.find(&format!("\"{key}\""))? + key.len() + 2;
    let rest = text[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let baseline = std::fs::read_to_string("tools/perf_baseline.json")
        .ok()
        .and_then(|t| parse_flat_number(&t, "suggest_ns_per_trial_n500"));
    let Some(baseline_ns) = baseline else {
        eprintln!("tools/perf_baseline.json missing or unparsable; BENCH_bo.json not written");
        std::process::exit(1);
    };

    eprintln!("growing sparse/trust-region surrogates to n=100k (dense measured to 2k)...");
    let points = scale_points();
    for p in &points {
        println!(
            "{:>12} n={:>6}  suggest={:>12.0}ns  observe={:>10.0}ns{}",
            p.surrogate,
            p.n,
            p.suggest_ns,
            p.observe_ns,
            if p.extrapolated {
                "  (extrapolated)"
            } else {
                ""
            }
        );
    }

    let find = |surrogate: &str, n: usize| {
        points
            .iter()
            .find(|p| p.surrogate == surrogate && p.n == n)
            .expect("scale_points covers every (surrogate, n) pair")
    };
    let dense_100k = find("dense_gp", 100_000);
    let sparse_speedup = dense_100k.suggest_ns / find("sparse_gp", 100_000).suggest_ns.max(1.0);
    let tr_speedup = dense_100k.suggest_ns / find("trust_region", 100_000).suggest_ns.max(1.0);
    println!(
        "suggest speedup at n=100k vs dense (extrapolated): sparse {sparse_speedup:.0}x, trust-region {tr_speedup:.0}x"
    );

    let scale_rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"surrogate\": \"{}\", \"n\": {}, \"suggest_ns\": {:.0}, \"observe_ns\": {:.0}, \"extrapolated\": {} }}",
                p.surrogate, p.n, p.suggest_ns, p.observe_ns, p.extrapolated
            )
        })
        .collect();
    let bo_json = format!(
        "{{\n  \"benchmark\": \"BO surrogate latency: incremental suggest at n=500 (perf_smoke / e32) plus sparse/trust-region scaling to n=100k (bo_scale / e36)\",\n  \"note\": \"scale_points suggest_ns is the model-side cost of one suggestion (256 posterior predictions); dense_gp at n=100k is extrapolated from its measured 1k->2k scaling exponent; all *_ns fields are host-dependent; trajectory rows are appended by tools/bench_record.sh\",\n  \"points\": [\n    {{ \"source\": \"tools/perf_baseline.json (2x headroom over reference)\", \"suggest_ns_per_trial_n500\": {baseline_ns:.0} }}\n  ],\n  \"scale_points\": [\n{}\n  ],\n  \"speedup_100k\": {{ \"sparse_vs_dense_extrap\": {sparse_speedup:.1}, \"trust_region_vs_dense_extrap\": {tr_speedup:.1} }},\n  \"trajectory\": []\n}}\n",
        scale_rows.join(",\n")
    );
    std::fs::write("BENCH_bo.json", bo_json).expect("write BENCH_bo.json");
    println!("wrote BENCH_bo.json ({} scale points)", points.len());
}

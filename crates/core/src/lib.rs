//! `autotune` — a generalized systems-autotuning framework.
//!
//! This crate ties the workspace together into the architecture of the
//! SIGMOD 2025 tutorial "Autotuning Systems: Techniques, Challenges, and
//! Opportunities" (slide 26): an **optimizer** proposes tunable values, a
//! **scheduler** runs benchmarks against the target system, results flow
//! back as scores, and systems machinery around that loop handles the
//! parts that make real autotuning hard — noise, cost, fidelity,
//! workload drift, crashes, and safety.
//!
//! # Architecture
//!
//! ```text
//!  ┌────────────┐  suggest   ┌────────────────┐  config   ┌────────────┐
//!  │ Optimizer   │──────────▶│ TuningSession  │──────────▶│ Target      │
//!  │ (BO, SMAC,  │◀──────────│ (budget, noise │◀──────────│ (simulated  │
//!  │  CMA-ES, …) │  observe  │  mitigation,   │  metrics  │  system +   │
//!  └────────────┘            │  early abort)  │           │  workload)  │
//!                            └────────────────┘           └────────────┘
//! ```
//!
//! # Quick start
//!
//! ```
//! use autotune::{Objective, Target, TuningSession, SessionConfig};
//! use autotune_optimizer::BayesianOptimizer;
//! use autotune_sim::{DbmsSim, Environment, Workload};
//!
//! let target = Target::simulated(
//!     Box::new(DbmsSim::new()),
//!     Workload::tpcc(2_000.0),
//!     Environment::medium(),
//!     Objective::MinimizeLatencyAvg,
//! );
//! let optimizer = BayesianOptimizer::gp(target.space().clone());
//! let mut session = TuningSession::new(target, Box::new(optimizer), SessionConfig::default());
//! let summary = session.run(30, 42);
//! assert!(summary.best_cost.is_finite());
//! ```

mod early_abort;
mod importance;
mod llamatune;
mod multifid;
mod noise_strategy;
mod objective;
mod online;
mod parallel;
mod profile_guided;
mod session;
mod target;
mod transfer;
mod trial;

pub use early_abort::EarlyAbort;
pub use importance::{lasso_path, permutation_importance, KnobImportance};
pub use llamatune::{LlamaTune, LlamaTuneConfig};
pub use multifid::{FidelityLevel, Hyperband, SuccessiveHalving, SuccessiveHalvingConfig};
pub use noise_strategy::NoiseStrategy;
pub use objective::Objective;
pub use online::{
    static_config_cost, ContextualOnlineTuner, OnlineStep, OnlineTuner, OnlineTunerConfig,
};
pub use parallel::{run_async_parallel, run_parallel, ParallelSummary};
pub use profile_guided::KnobComponentMap;
pub use session::{SessionConfig, SessionSummary, TuningSession};
pub use target::Target;
pub use transfer::{transfer_observations, TransferPolicy};
pub use trial::{Trial, TrialStatus, TrialStorage};

//! Cross-crate integration: the telemetry subsystem against the real
//! executor — subscriber purity (byte-identical campaigns with any
//! subscriber combination, in any order), span well-formedness under
//! every schedule policy with the full fault/resilience stack, and a
//! golden Chrome-trace export.
//!
//! `campaign_is_byte_identical_with_all_subscribers_attached` is the
//! release-mode CI gate for the ISSUE 3 acceptance criterion.

use autotune::executor::{
    CrashPenaltyMw, ExecReport, Executor, MachineAssignMw, OptimizerSource, QuarantineMw, RetryMw,
    SchedulePolicy, TimeoutMw,
};
use autotune::telemetry::{MetricsCollector, ProgressReporter, SpanRecorder, Subscriber};
use autotune::{Target, TrialStorage};
use autotune_optimizer::{BayesianOptimizer, RandomSearch};
use autotune_sim::{CloudNoise, FaultPlan, NoiseConfig};
use autotune_tests::redis_target;

const N_MACHINES: usize = 4;

fn faulty_target(seed: u64) -> Target {
    redis_target()
        .with_noise(CloudNoise::new_fleet(
            N_MACHINES,
            NoiseConfig::default(),
            seed,
        ))
        .with_faults(FaultPlan::aggressive(seed).with_sick_machine(1, 6.0))
}

/// Runs a resilient BO campaign with the given subscribers attached.
fn run_observed(
    seed: u64,
    policy: SchedulePolicy,
    budget: usize,
    subscribers: &mut [&mut dyn Subscriber],
) -> (TrialStorage, ExecReport) {
    let target = faulty_target(seed);
    let mut opt = BayesianOptimizer::gp(target.space().clone());
    let mut source = OptimizerSource::new(&mut opt, budget);
    let mut storage = TrialStorage::new();
    let report = {
        let mut exec = Executor::new(&target, policy)
            .with_middleware(Box::new(MachineAssignMw::round_robin(N_MACHINES)))
            .with_middleware(Box::new(QuarantineMw::with_defaults(N_MACHINES)))
            .with_middleware(Box::new(RetryMw::new(3, 5.0)))
            .with_middleware(Box::new(TimeoutMw::new(150.0)))
            .with_middleware(Box::new(CrashPenaltyMw::new(1e9)));
        for sub in subscribers.iter_mut() {
            exec = exec.with_subscriber(Box::new(&mut **sub));
        }
        exec.run(&mut source, &mut storage, seed)
    };
    (storage, report)
}

/// The ISSUE 3 acceptance criterion, run in `--release` by the CI
/// determinism job: enabling every shipped subscriber leaves a k=1
/// campaign byte-identical with the bare run, across all three
/// single-slot schedule policies.
#[test]
fn campaign_is_byte_identical_with_all_subscribers_attached() {
    let (bare, bare_r) = run_observed(19, SchedulePolicy::Sequential, 20, &mut []);
    for policy in [
        SchedulePolicy::Sequential,
        SchedulePolicy::SyncBatch { k: 1 },
        SchedulePolicy::AsyncSlots { k: 1 },
    ] {
        let mut metrics = MetricsCollector::new();
        let mut spans = SpanRecorder::new();
        let mut progress = ProgressReporter::new(Vec::new(), 250.0).with_budget(20);
        let (observed, observed_r) = run_observed(
            19,
            policy,
            20,
            &mut [&mut metrics, &mut spans, &mut progress],
        );
        assert_eq!(
            bare.to_json(),
            observed.to_json(),
            "subscribers must not perturb {policy:?}"
        );
        assert_eq!(
            bare_r.wall_clock_s.to_bits(),
            observed_r.wall_clock_s.to_bits()
        );
        assert_eq!(spans.spans().len(), 20);
        assert!(!progress.into_sink().is_empty());
    }
}

/// Subscribers see the same stream regardless of attachment order, and
/// an externally attached collector agrees with the executor's internal
/// one (the `ExecReport.metrics` snapshot).
#[test]
fn subscriber_order_does_not_change_what_subscribers_see() {
    let run = |flip: bool| {
        let mut metrics = MetricsCollector::new();
        let mut spans = SpanRecorder::new();
        let (_, report) = if flip {
            run_observed(
                7,
                SchedulePolicy::AsyncSlots { k: 3 },
                18,
                &mut [&mut spans, &mut metrics],
            )
        } else {
            run_observed(
                7,
                SchedulePolicy::AsyncSlots { k: 3 },
                18,
                &mut [&mut metrics, &mut spans],
            )
        };
        let traces = spans.to_chrome_trace();
        (metrics.snapshot(), traces, report)
    };
    let (m_ab, t_ab, r_ab) = run(false);
    let (m_ba, t_ba, _) = run(true);
    assert_eq!(t_ab, t_ba, "span recorder must be order-independent");
    assert_eq!(format!("{m_ab}"), format!("{m_ba}"));
    // The external collector and the internal ExecReport one match.
    assert_eq!(format!("{m_ab}"), format!("{}", r_ab.metrics));
    assert_eq!(m_ab.n_suggested, 18);
    assert_eq!(r_ab.metrics.n_retries as usize, r_ab.n_retried);
}

/// Span well-formedness under every schedule policy, with faults,
/// retries, timeouts and quarantine in play: every span validates
/// (ordered, non-overlapping segments; attempts match retries), every
/// trial gets exactly one span, begin/end opt events pair up, and
/// quarantine/release marks both appear.
#[test]
fn spans_are_well_formed_under_all_policies() {
    for policy in [
        SchedulePolicy::Sequential,
        SchedulePolicy::SyncBatch { k: 3 },
        SchedulePolicy::AsyncSlots { k: 3 },
    ] {
        let mut spans = SpanRecorder::new();
        let (storage, report) = run_observed(3, policy, 30, &mut [&mut spans]);
        spans
            .validate_all()
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        assert_eq!(spans.spans().len(), storage.len(), "{policy:?}");
        assert_eq!(spans.unbalanced_opt_events(), 0, "{policy:?}");
        // Retry backoffs appear as explicit segments.
        let backoffs: usize = spans
            .spans()
            .iter()
            .flat_map(|s| &s.segments)
            .filter(|seg| matches!(seg, autotune::telemetry::SpanSegment::Backoff { .. }))
            .count();
        assert_eq!(backoffs, report.n_retried, "{policy:?}");
        if report.n_quarantined_machines > 0 {
            assert!(spans.machine_marks().iter().any(|m| m.quarantined));
        }
        // Under a batch barrier, early finishers wait for the wave: some
        // span must carry an observe-wait segment.
        if matches!(policy, SchedulePolicy::SyncBatch { k: 3 }) {
            assert!(
                spans.spans().iter().any(|s| s.observed_at > s.finished_at),
                "barrier should delay observation"
            );
        }
    }
}

/// Golden test: the Chrome trace export of a small deterministic campaign
/// is byte-stable. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p autotune-tests --test telemetry`.
#[test]
fn chrome_trace_export_matches_golden() {
    let target = redis_target().with_faults(FaultPlan::aggressive(5));
    let mut opt = RandomSearch::new(target.space().clone());
    let mut source = OptimizerSource::new(&mut opt, 6);
    let mut storage = TrialStorage::new();
    let mut spans = SpanRecorder::new();
    {
        Executor::new(&target, SchedulePolicy::Sequential)
            .with_middleware(Box::new(RetryMw::new(3, 5.0)))
            .with_subscriber(Box::new(&mut spans))
            .run(&mut source, &mut storage, 5);
    }
    spans.validate_all().expect("well-formed");
    let trace = spans.to_chrome_trace();
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":\"X\""));

    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/telemetry_trace.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &trace).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        trace, golden,
        "trace drifted from golden — intentional changes: UPDATE_GOLDEN=1"
    );
}

/// The session-level binding: `run_observed` feeds subscribers and the
/// summary carries the merged metrics snapshot.
#[test]
fn session_run_observed_carries_metrics() {
    use autotune::{SessionConfig, TuningSession};
    let target = redis_target();
    let opt = BayesianOptimizer::gp(target.space().clone());
    let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
    let mut progress = ProgressReporter::new(Vec::new(), 100.0).with_budget(15);
    let summary = session
        .run_observed(15, 23, &mut [&mut progress])
        .expect("successful trials");
    assert_eq!(summary.metrics.n_suggested, 15);
    assert_eq!(summary.metrics.n_finished + summary.metrics.n_crashed, 15);
    assert!(summary.metrics.trial_latency_s.count() == 15);
    assert!(summary.metrics.wall_clock_s > 0.0);
    let out = String::from_utf8(progress.into_sink()).unwrap();
    assert!(out.contains("campaign complete"), "{out}");
    // A second run merges (wall clocks add).
    let wall1 = summary.metrics.wall_clock_s;
    let summary2 = session.run(15, 24).expect("successful trials");
    assert_eq!(summary2.metrics.n_suggested, 30);
    assert!(summary2.metrics.wall_clock_s > wall1);
}

/// The online tuner exposes the same observability path.
#[test]
fn online_tuner_runs_with_subscribers() {
    use autotune::{OnlineTuner, OnlineTunerConfig};
    use autotune_sim::WorkloadSchedule;
    let target = redis_target();
    let space = target.space().clone();
    let candidates: Vec<_> = (0..4)
        .map(|i| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(i);
            space.sample(&mut rng)
        })
        .collect();
    let mut tuner = OnlineTuner::new(candidates, OnlineTunerConfig::default());
    let schedule = WorkloadSchedule::new(vec![(25, autotune_sim::Workload::kv_cache(20_000.0))]);
    let mut spans = SpanRecorder::new();
    let steps = tuner
        .run_with_subscribers(&target, &schedule, 25, 3, &mut [&mut spans])
        .len();
    assert_eq!(steps, 25);
    spans.validate_all().expect("well-formed");
    assert_eq!(spans.spans().len(), 25);
}

//! Ablation studies of the framework's own design choices — the
//! engineering decisions `DESIGN.md` calls out, each isolated and
//! measured. These are not tutorial claims; they justify defaults.

use crate::experiments::{mean_curve, redis_target};
use crate::report::{f, Report};
use autotune::{transfer_observations, TransferPolicy, Trial};
use autotune_optimizer::{BayesianOptimizer, BoConfig, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A1: BO random-initialization budget. Too few random points starve the
/// surrogate; too many waste model-driven trials.
pub fn a01_bo_init() -> Report {
    let budget = 24;
    let seeds = 0..12u64;
    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for &n_init in &[2usize, 8, 16] {
        let curve = mean_curve(
            || {
                Box::new(BayesianOptimizer::new(
                    redis_target().space().clone(),
                    BoConfig {
                        n_init,
                        ..Default::default()
                    },
                ))
            },
            redis_target,
            budget,
            seeds.clone(),
        );
        rows.push(vec![
            format!("n_init = {n_init}"),
            format!("{} ms", f(curve[11], 3)),
            format!("{} ms", f(curve[budget - 1], 3)),
        ]);
        finals.push(curve[budget - 1]);
    }
    // The default (8) should be at least as good as both extremes.
    let shape_holds = finals[1] <= finals[0] * 1.05 && finals[1] <= finals[2] * 1.05;
    Report {
        id: "A1",
        title: "Ablation: BO initial random design size",
        headers: vec!["setting", "best@12", "best@24"],
        rows,
        paper_claim:
            "a moderate random init (default 8) balances surrogate quality vs model-driven budget",
        measured: format!(
            "final P95 at n_init 2/8/16: {} / {} / {} ms",
            f(finals[0], 3),
            f(finals[1], 3),
            f(finals[2], 3)
        ),
        shape_holds,
    }
}

/// A2: constant liar vs naive batch suggestion — does the liar actually
/// buy batch diversity?
pub fn a02_constant_liar() -> Report {
    let target = redis_target();
    let min_batch_distance = |use_liar: bool, seed: u64| -> f64 {
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..12 {
            let c = opt.suggest(&mut rng);
            let e = target.evaluate(&c, &mut rng);
            opt.observe(&c, e.cost);
        }
        let batch = if use_liar {
            opt.suggest_batch(6, &mut rng)
        } else {
            // Naive: ask for 6 suggestions without telling the model
            // they are in flight (the model state never changes).
            (0..6).map(|_| opt.suggest(&mut rng)).collect::<Vec<_>>()
        };
        let mut min_d = f64::INFINITY;
        for i in 0..batch.len() {
            for j in (i + 1)..batch.len() {
                let a = target.space().encode_unit(&batch[i]).expect("encodes");
                let b = target.space().encode_unit(&batch[j]).expect("encodes");
                min_d = min_d.min(autotune_linalg::squared_distance(&a, &b).sqrt());
            }
        }
        min_d
    };
    let n_seeds = 6;
    let liar: f64 = (0..n_seeds)
        .map(|s| min_batch_distance(true, 900 + s))
        .sum::<f64>()
        / n_seeds as f64;
    let naive: f64 = (0..n_seeds)
        .map(|s| min_batch_distance(false, 900 + s))
        .sum::<f64>()
        / n_seeds as f64;
    let rows = vec![
        vec!["constant liar".into(), f(liar, 4)],
        vec!["naive repeat-suggest".into(), f(naive, 4)],
    ];
    let shape_holds = liar > naive * 1.5;
    Report {
        id: "A2",
        title: "Ablation: constant-liar batch diversity",
        headers: vec!["batch strategy", "mean min pairwise distance (k=6)"],
        rows,
        paper_claim:
            "pinning pseudo-observations at in-flight points prevents duplicate batch members",
        measured: format!(
            "min distance {} (liar) vs {} (naive)",
            f(liar, 4),
            f(naive, 4)
        ),
        shape_holds,
    }
}

/// A3: crash-penalty transfer on/off — does importing crash knowledge
/// actually keep the recipient out of the OOM region?
pub fn a03_crash_transfer() -> Report {
    use autotune::{Objective, Target};
    use autotune_sim::{DbmsSim, Environment, Workload};
    let make_target = || {
        Target::simulated(
            Box::new(DbmsSim::new()),
            Workload::tpcc(500.0),
            Environment::medium(),
            Objective::MinimizeLatencyAvg,
        )
    };
    // Donor history with crashes.
    let donor = make_target();
    let mut donor_trials = Vec::new();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..50 {
        let cfg = donor.space().sample(&mut rng);
        let e = donor.evaluate(&cfg, &mut rng);
        donor_trials.push(if e.cost.is_nan() {
            Trial::crashed(cfg, e.result.elapsed_s)
        } else {
            Trial::complete(cfg, e.cost, e.result.elapsed_s)
        });
    }
    let run = |transfer_crashes: bool, seed: u64| -> usize {
        let policy = TransferPolicy {
            good_fraction: 0.3,
            always_transfer_crashes: transfer_crashes,
            ..Default::default()
        };
        let target = make_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        if transfer_crashes {
            opt.warm_start(&transfer_observations(&donor_trials, &policy, false));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut crashes = 0;
        for _ in 0..25 {
            let cfg = opt.suggest(&mut rng);
            let e = target.evaluate(&cfg, &mut rng);
            opt.observe(&cfg, e.cost);
            if e.cost.is_nan() {
                crashes += 1;
            }
        }
        crashes
    };
    let n_seeds = 6;
    let with: usize = (0..n_seeds).map(|s| run(true, 910 + s)).sum();
    let without: usize = (0..n_seeds).map(|s| run(false, 910 + s)).sum();
    let rows = vec![
        vec![
            "crash transfer on".into(),
            format!("{with} crashes / {n_seeds} campaigns"),
        ],
        vec![
            "crash transfer off".into(),
            format!("{without} crashes / {n_seeds} campaigns"),
        ],
    ];
    let shape_holds = with <= without;
    Report {
        id: "A3",
        title: "Ablation: crash-penalty knowledge transfer",
        headers: vec!["policy", "recipient crashes"],
        rows,
        paper_claim: "imported crash scores steer the recipient away from the OOM region",
        measured: format!("{with} vs {without} crashes across {n_seeds} campaigns"),
        shape_holds,
    }
}

/// A4: GP hyperparameter refitting cadence — is the marginal-likelihood
/// refit worth its cost?
pub fn a04_gp_refit() -> Report {
    let budget = 24;
    let seeds = 0..12u64;
    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for &refit in &[0usize, 5] {
        let curve = mean_curve(
            || {
                Box::new(BayesianOptimizer::new(
                    redis_target().space().clone(),
                    BoConfig {
                        refit_every: refit,
                        ..Default::default()
                    },
                ))
            },
            redis_target,
            budget,
            seeds.clone(),
        );
        rows.push(vec![
            if refit == 0 {
                "no refit".into()
            } else {
                format!("refit every {refit}")
            },
            format!("{} ms", f(curve[budget - 1], 3)),
        ]);
        finals.push(curve[budget - 1]);
    }
    let shape_holds = finals[1] <= finals[0] * 1.05;
    Report {
        id: "A4",
        title: "Ablation: GP hyperparameter refitting",
        headers: vec!["setting", "best@24"],
        rows,
        paper_claim: "LML-based lengthscale refitting should not hurt and usually helps",
        measured: format!(
            "final P95 {} (refit) vs {} (fixed kernel)",
            f(finals[1], 3),
            f(finals[0], 3)
        ),
        shape_holds,
    }
}

/// Runs every ablation and merges them into one report for the CLI.
pub fn run() -> Report {
    let reports = [
        a01_bo_init(),
        a02_constant_liar(),
        a03_crash_transfer(),
        a04_gp_refit(),
    ];
    let mut rows = Vec::new();
    let mut all_hold = true;
    for r in &reports {
        rows.push(vec![
            r.id.to_string(),
            r.title.trim_start_matches("Ablation: ").to_string(),
            if r.shape_holds {
                "HOLDS".into()
            } else {
                "FAILS".into()
            },
            r.measured.clone(),
        ]);
        all_hold &= r.shape_holds;
    }
    Report {
        id: "A1-A4",
        title: "Ablations of framework design choices",
        headers: vec!["id", "choice", "verdict", "measured"],
        rows,
        paper_claim: "each default is justified by an isolated measurement",
        measured: format!(
            "{}/{} ablations support their default",
            reports.iter().filter(|r| r.shape_holds).count(),
            reports.len()
        ),
        shape_holds: all_hold,
    }
}

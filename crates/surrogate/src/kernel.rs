//! Covariance (kernel) functions for Gaussian-process surrogates.
//!
//! Tutorial slides 43-44: the kernel encodes the smoothness assumptions of
//! the surrogate. RBF is infinitely smooth (and scikit-learn's default);
//! Matérn with ν ∈ {1/2, 3/2, 5/2} relaxes that and is "the most popular
//! kernel nowadays"; kernels compose by sum and product.
//!
//! All kernels here expose their hyperparameters through
//! [`Kernel::params`] / [`Kernel::set_params`] in **log space**, so the
//! marginal-likelihood optimizer in [`crate::GaussianProcess`] can search
//! multiplicative scales additively.

use std::fmt::Debug;

/// A positive-definite covariance function.
pub trait Kernel: Send + Sync + Debug {
    /// Covariance `k(a, b)`.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Prior variance at a point, `k(x, x)`.
    fn diag(&self, x: &[f64]) -> f64 {
        self.eval(x, x)
    }

    /// Hyperparameters in log space (e.g. `ln(lengthscale)`,
    /// `ln(signal_std)`), in a fixed documented order per kernel.
    fn params(&self) -> Vec<f64>;

    /// Replaces the hyperparameters (log space, same order as
    /// [`Kernel::params`]).
    ///
    /// # Panics
    /// Panics if `p.len()` does not match the kernel's parameter count.
    fn set_params(&mut self, p: &[f64]);

    /// Clones into a boxed trait object (kernels are cheap value types).
    fn clone_box(&self) -> Box<dyn Kernel>;
}

impl Clone for Box<dyn Kernel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Scaled distance `r = ||a - b|| / l` for isotropic kernels, or the ARD
/// equivalent with per-dimension lengthscales.
fn scaled_distance(a: &[f64], b: &[f64], lengthscales: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "kernel: point dimension mismatch");
    let mut s = 0.0;
    if lengthscales.len() == 1 {
        let l = lengthscales[0];
        for (&x, &y) in a.iter().zip(b) {
            let d = (x - y) / l;
            s += d * d;
        }
    } else {
        debug_assert_eq!(
            a.len(),
            lengthscales.len(),
            "ARD kernel: lengthscale count must match dimension"
        );
        for ((&x, &y), &l) in a.iter().zip(b).zip(lengthscales) {
            let d = (x - y) / l;
            s += d * d;
        }
    }
    s.sqrt()
}

macro_rules! stationary_kernel {
    ($(#[$doc:meta])* $name:ident, $profile:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            /// Lengthscales: one entry (isotropic) or one per dimension (ARD).
            pub lengthscales: Vec<f64>,
            /// Signal standard deviation (output scale).
            pub signal_std: f64,
        }

        impl $name {
            /// Isotropic kernel with a single lengthscale.
            pub fn isotropic(lengthscale: f64, signal_std: f64) -> Self {
                assert!(lengthscale > 0.0 && signal_std > 0.0, "kernel scales must be positive");
                Self { lengthscales: vec![lengthscale], signal_std }
            }

            /// ARD kernel with one lengthscale per input dimension.
            pub fn ard(lengthscales: Vec<f64>, signal_std: f64) -> Self {
                assert!(!lengthscales.is_empty(), "ARD kernel needs at least one lengthscale");
                assert!(lengthscales.iter().all(|&l| l > 0.0) && signal_std > 0.0,
                        "kernel scales must be positive");
                Self { lengthscales, signal_std }
            }
        }

        impl Kernel for $name {
            fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
                let r = scaled_distance(a, b, &self.lengthscales);
                let profile: fn(f64) -> f64 = $profile;
                self.signal_std * self.signal_std * profile(r)
            }

            fn params(&self) -> Vec<f64> {
                let mut p: Vec<f64> = self.lengthscales.iter().map(|l| l.ln()).collect();
                p.push(self.signal_std.ln());
                p
            }

            fn set_params(&mut self, p: &[f64]) {
                assert_eq!(p.len(), self.lengthscales.len() + 1,
                           "wrong parameter count for kernel");
                for (l, &lp) in self.lengthscales.iter_mut().zip(p) {
                    *l = lp.exp();
                }
                self.signal_std = p[p.len() - 1].exp();
            }

            fn clone_box(&self) -> Box<dyn Kernel> {
                Box::new(self.clone())
            }
        }
    };
}

stationary_kernel!(
    /// Radial basis function (squared exponential):
    /// `k(r) = s^2 exp(-r^2 / 2)` with `r = ||a-b||/l`.
    ///
    /// Infinitely differentiable — often *too* smooth for system response
    /// surfaces with cliffs (tutorial slide 43).
    Rbf,
    |r| (-0.5 * r * r).exp()
);

stationary_kernel!(
    /// Matérn ν = 1/2 (a.k.a. exponential / Ornstein-Uhlenbeck):
    /// `k(r) = s^2 exp(-r)`. Very rough sample paths.
    Matern12,
    |r| (-r).exp()
);

stationary_kernel!(
    /// Matérn ν = 3/2: `k(r) = s^2 (1 + √3 r) exp(-√3 r)`.
    Matern32,
    |r| {
        let t = 3f64.sqrt() * r;
        (1.0 + t) * (-t).exp()
    }
);

stationary_kernel!(
    /// Matérn ν = 5/2: `k(r) = s^2 (1 + √5 r + 5r²/3) exp(-√5 r)`.
    ///
    /// The workhorse choice for systems tuning: twice differentiable but
    /// not implausibly smooth.
    Matern52,
    |r| {
        let t = 5f64.sqrt() * r;
        (1.0 + t + t * t / 3.0) * (-t).exp()
    }
);

/// Constant kernel `k(a, b) = c` — composes with others to add a bias term.
#[derive(Debug, Clone)]
pub struct ConstantKernel {
    /// The constant covariance (must be positive).
    pub value: f64,
}

impl ConstantKernel {
    /// Creates a constant kernel.
    pub fn new(value: f64) -> Self {
        assert!(value > 0.0, "constant kernel value must be positive");
        ConstantKernel { value }
    }
}

impl Kernel for ConstantKernel {
    fn eval(&self, _a: &[f64], _b: &[f64]) -> f64 {
        self.value
    }
    fn params(&self) -> Vec<f64> {
        vec![self.value.ln()]
    }
    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 1, "constant kernel has one parameter");
        self.value = p[0].exp();
    }
    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Linear (dot-product) kernel `k(a, b) = s^2 (a·b)`, for globally linear
/// trends.
#[derive(Debug, Clone)]
pub struct LinearKernel {
    /// Output scale.
    pub signal_std: f64,
}

impl LinearKernel {
    /// Creates a linear kernel.
    pub fn new(signal_std: f64) -> Self {
        assert!(signal_std > 0.0, "kernel scale must be positive");
        LinearKernel { signal_std }
    }
}

impl Kernel for LinearKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.signal_std * self.signal_std * a.iter().zip(b).map(|(&x, &y)| x * y).sum::<f64>()
    }
    fn params(&self) -> Vec<f64> {
        vec![self.signal_std.ln()]
    }
    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 1, "linear kernel has one parameter");
        self.signal_std = p[0].exp();
    }
    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Periodic kernel `k(a,b) = s^2 exp(-2 sin²(π ||a-b|| / p) / l²)` for
/// diurnal/cyclic workload structure.
#[derive(Debug, Clone)]
pub struct PeriodicKernel {
    /// Period length.
    pub period: f64,
    /// Lengthscale inside one period.
    pub lengthscale: f64,
    /// Output scale.
    pub signal_std: f64,
}

impl PeriodicKernel {
    /// Creates a periodic kernel.
    pub fn new(period: f64, lengthscale: f64, signal_std: f64) -> Self {
        assert!(
            period > 0.0 && lengthscale > 0.0 && signal_std > 0.0,
            "kernel scales must be positive"
        );
        PeriodicKernel {
            period,
            lengthscale,
            signal_std,
        }
    }
}

impl Kernel for PeriodicKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d = crate::kernel::scaled_distance(a, b, &[1.0]);
        let s = (std::f64::consts::PI * d / self.period).sin();
        self.signal_std
            * self.signal_std
            * (-2.0 * s * s / (self.lengthscale * self.lengthscale)).exp()
    }
    fn params(&self) -> Vec<f64> {
        vec![
            self.period.ln(),
            self.lengthscale.ln(),
            self.signal_std.ln(),
        ]
    }
    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 3, "periodic kernel has three parameters");
        self.period = p[0].exp();
        self.lengthscale = p[1].exp();
        self.signal_std = p[2].exp();
    }
    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Sum of two kernels (sums of PD kernels are PD).
#[derive(Debug, Clone)]
pub struct SumKernel {
    /// Left summand.
    pub left: Box<dyn Kernel>,
    /// Right summand.
    pub right: Box<dyn Kernel>,
}

impl SumKernel {
    /// `left + right`.
    pub fn new(left: Box<dyn Kernel>, right: Box<dyn Kernel>) -> Self {
        SumKernel { left, right }
    }
}

impl Kernel for SumKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.left.eval(a, b) + self.right.eval(a, b)
    }
    fn params(&self) -> Vec<f64> {
        let mut p = self.left.params();
        p.extend(self.right.params());
        p
    }
    fn set_params(&mut self, p: &[f64]) {
        let nl = self.left.params().len();
        assert_eq!(p.len(), nl + self.right.params().len());
        self.left.set_params(&p[..nl]);
        self.right.set_params(&p[nl..]);
    }
    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Product of two kernels (products of PD kernels are PD).
#[derive(Debug, Clone)]
pub struct ProductKernel {
    /// Left factor.
    pub left: Box<dyn Kernel>,
    /// Right factor.
    pub right: Box<dyn Kernel>,
}

impl ProductKernel {
    /// `left * right`.
    pub fn new(left: Box<dyn Kernel>, right: Box<dyn Kernel>) -> Self {
        ProductKernel { left, right }
    }
}

impl Kernel for ProductKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.left.eval(a, b) * self.right.eval(a, b)
    }
    fn params(&self) -> Vec<f64> {
        let mut p = self.left.params();
        p.extend(self.right.params());
        p
    }
    fn set_params(&mut self, p: &[f64]) {
        let nl = self.left.params().len();
        assert_eq!(p.len(), nl + self.right.params().len());
        self.left.set_params(&p[..nl]);
        self.right.set_params(&p[nl..]);
    }
    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_limits() {
        let k = Rbf::isotropic(1.0, 2.0);
        // At zero distance: signal variance.
        assert!((k.eval(&[0.5], &[0.5]) - 4.0).abs() < 1e-12);
        // Decays with distance, symmetric.
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert_eq!(k.eval(&[0.0], &[1.0]), k.eval(&[1.0], &[0.0]));
    }

    #[test]
    fn rbf_known_value() {
        let k = Rbf::isotropic(1.0, 1.0);
        // k(0, 1) = exp(-0.5)
        assert!((k.eval(&[0.0], &[1.0]) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn matern_nu_ordering_matches_smoothness() {
        // At a fixed moderate distance, rougher kernels decay faster.
        let r = 0.8;
        let m12 = Matern12::isotropic(1.0, 1.0).eval(&[0.0], &[r]);
        let m32 = Matern32::isotropic(1.0, 1.0).eval(&[0.0], &[r]);
        let m52 = Matern52::isotropic(1.0, 1.0).eval(&[0.0], &[r]);
        let rbf = Rbf::isotropic(1.0, 1.0).eval(&[0.0], &[r]);
        assert!(m12 < m32 && m32 < m52 && m52 < rbf);
    }

    #[test]
    fn matern12_is_exponential() {
        let k = Matern12::isotropic(2.0, 1.0);
        assert!((k.eval(&[0.0], &[2.0]) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn ard_ignores_long_lengthscale_dims() {
        let k = Rbf::ard(vec![0.1, 1e6], 1.0);
        // Moving along dim 1 barely matters; dim 0 matters a lot.
        let v_dim0 = k.eval(&[0.0, 0.0], &[0.3, 0.0]);
        let v_dim1 = k.eval(&[0.0, 0.0], &[0.0, 0.3]);
        assert!(v_dim0 < 0.02);
        assert!(v_dim1 > 0.999);
    }

    #[test]
    fn params_roundtrip_log_space() {
        let mut k = Matern52::ard(vec![0.5, 2.0], 3.0);
        let p = k.params();
        assert_eq!(p.len(), 3);
        k.set_params(&p);
        assert!((k.lengthscales[0] - 0.5).abs() < 1e-12);
        assert!((k.lengthscales[1] - 2.0).abs() < 1e-12);
        assert!((k.signal_std - 3.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_repeats() {
        let k = PeriodicKernel::new(1.0, 1.0, 1.0);
        let v0 = k.eval(&[0.0], &[0.3]);
        let v1 = k.eval(&[0.0], &[1.3]); // same phase, one period later
        assert!((v0 - v1).abs() < 1e-9);
        // Exactly one period apart -> full correlation.
        assert!((k.eval(&[0.0], &[1.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sum_and_product_compose() {
        let a: Box<dyn Kernel> = Box::new(Rbf::isotropic(1.0, 1.0));
        let b: Box<dyn Kernel> = Box::new(ConstantKernel::new(2.0));
        let sum = SumKernel::new(a.clone_box(), b.clone_box());
        let prod = ProductKernel::new(a, b);
        let x = [0.2];
        let y = [0.9];
        let rbf_v = Rbf::isotropic(1.0, 1.0).eval(&x, &y);
        assert!((sum.eval(&x, &y) - (rbf_v + 2.0)).abs() < 1e-12);
        assert!((prod.eval(&x, &y) - rbf_v * 2.0).abs() < 1e-12);
    }

    #[test]
    fn composite_params_concatenate() {
        let mut sum = SumKernel::new(
            Box::new(Rbf::isotropic(1.0, 1.0)),
            Box::new(ConstantKernel::new(1.0)),
        );
        let p = sum.params();
        assert_eq!(p.len(), 3); // lengthscale + signal + constant
        let newp = vec![0.5f64.ln(), 2.0f64.ln(), 4.0f64.ln()];
        sum.set_params(&newp);
        assert!((sum.eval(&[0.0], &[0.0]) - (4.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn linear_kernel_dot_product() {
        let k = LinearKernel::new(2.0);
        assert!((k.eval(&[1.0, 2.0], &[3.0, 4.0]) - 4.0 * 11.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_lengthscale_rejected() {
        let _ = Rbf::isotropic(0.0, 1.0);
    }
}

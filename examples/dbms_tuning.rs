//! DBMS knob tuning: the "4-10x higher throughput" scenario (slide 10).
//!
//! Tunes a 12-knob MySQL/PostgreSQL-flavoured simulated database under a
//! TPC-C-like workload, comparing optimizer families, then runs a knob-
//! importance analysis over the winning campaign's history (slide 68) and
//! a LlamaTune projected search (slide 62).
//!
//! Run with:
//! ```text
//! cargo run -p autotune-examples --bin dbms_tuning --release
//! ```

use autotune::{
    lasso_path, LlamaTune, LlamaTuneConfig, Objective, SessionConfig, Target, TuningSession,
};
use autotune_optimizer::{
    BayesianOptimizer, CmaEs, CmaEsConfig, Optimizer, RandomSearch, SimulatedAnnealing,
};
use autotune_sim::{DbmsSim, Environment, Workload};

fn make_target() -> Target {
    Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpcc(50_000.0),
        Environment::medium(),
        Objective::MaximizeThroughput,
    )
}

fn main() {
    let budget = 60;
    println!("== DBMS knob tuning: TPC-C on a 4-core / 16 GB VM ==");
    println!("12 knobs (buffer pool, flush method, logs, threads, JIT, ...)");
    println!("objective: maximize throughput, budget {budget} trials\n");

    let target = make_target();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let default_thr = -(0..5)
        .map(|_| {
            target
                .evaluate(&target.space().default_config(), &mut rng)
                .cost
        })
        .sum::<f64>()
        / 5.0;
    println!("default-config throughput: {default_thr:.0} tps\n");

    let optimizers: Vec<(&str, Box<dyn Optimizer>)> = vec![
        (
            "random",
            Box::new(RandomSearch::new(target.space().clone())),
        ),
        (
            "anneal",
            Box::new(SimulatedAnnealing::new(
                target.space().clone(),
                2000.0,
                0.93,
            )),
        ),
        (
            "cma_es",
            Box::new(CmaEs::new(target.space().clone(), CmaEsConfig::default())),
        ),
        (
            "smac",
            Box::new(BayesianOptimizer::smac(target.space().clone())),
        ),
        (
            "bo_gp",
            Box::new(BayesianOptimizer::gp(target.space().clone())),
        ),
        (
            "llamatune",
            Box::new(LlamaTune::new(
                target.space().clone(),
                LlamaTuneConfig::default(),
            )),
        ),
    ];

    println!(
        "{:<10} {:>12} {:>8} {:>9}",
        "method", "best_tps", "gain", "crashes"
    );
    let mut best_history: Option<(Vec<Vec<f64>>, Vec<f64>)> = None;
    let mut best_tps = 0.0;
    for (name, opt) in optimizers {
        let mut session = TuningSession::new(make_target(), opt, SessionConfig::default());
        let summary = session
            .run(budget, 7)
            .expect("at least one successful trial");
        let tuned_thr = -summary.best_cost;
        println!(
            "{:<10} {:>10.0}tps {:>7.1}x {:>9}",
            name,
            tuned_thr,
            tuned_thr / default_thr,
            summary.n_crashed
        );
        if tuned_thr > best_tps {
            best_tps = tuned_thr;
            // Export the campaign history for importance analysis.
            let space = session.target().space().clone();
            let xs: Vec<Vec<f64>> = session
                .storage()
                .trials()
                .iter()
                .filter(|t| t.cost.is_finite())
                .map(|t| space.encode_unit(&t.config).expect("history encodes"))
                .collect();
            let ys: Vec<f64> = session
                .storage()
                .trials()
                .iter()
                .filter(|t| t.cost.is_finite())
                .map(|t| t.cost)
                .collect();
            best_history = Some((xs, ys));
        }
    }

    if let Some((xs, ys)) = best_history {
        println!("\n== Knob importance (Lasso path over the best campaign) ==");
        let imp = lasso_path(make_target().space(), &xs, &ys);
        for (rank, (name, score)) in imp.ranking.iter().take(6).enumerate() {
            println!("  #{:<2} {:<28} score {:.3}", rank + 1, name, score);
        }
        println!("\n(Slide 68: tune the top knobs first — the rest are noise.)");
    }
}

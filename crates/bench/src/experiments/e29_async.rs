//! E29 (slide 57, async variant): synchronous batches vs asynchronous
//! slot-refilling at the same trial budget and parallelism. Spark runtimes
//! vary by an order of magnitude with the config, so the synchronous
//! barrier wastes slot time on every batch.

use crate::report::{f, Report};
use autotune::{run_async_parallel, run_parallel, Objective, Target};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{Environment, SparkSim, Workload};

fn spark_target() -> Target {
    Target::simulated(
        Box::new(SparkSim::new()),
        Workload::tpch(20.0),
        Environment::large(),
        Objective::MinimizeElapsed,
    )
}

/// Runs the experiment.
pub fn run() -> Report {
    let total = 32;
    let k = 4;
    let n_seeds = 4;
    let mut sync_wall = 0.0;
    let mut async_wall = 0.0;
    let mut sync_best = 0.0;
    let mut async_best = 0.0;
    for seed in 0..n_seeds {
        let target = spark_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let s = run_parallel(&target, &mut opt, total / k, k, 800 + seed);
        sync_wall += s.wall_clock_s / n_seeds as f64;
        sync_best += s.best_cost / n_seeds as f64;

        let target = spark_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let a = run_async_parallel(&target, &mut opt, total, k, 800 + seed);
        async_wall += a.wall_clock_s / n_seeds as f64;
        async_best += a.best_cost / n_seeds as f64;
    }
    let speedup = sync_wall / async_wall.max(1e-9);

    let rows = vec![
        vec![
            "synchronous batches".into(),
            format!("{sync_wall:.0} s"),
            format!("{} s", f(sync_best, 1)),
        ],
        vec![
            "asynchronous slots".into(),
            format!("{async_wall:.0} s"),
            format!("{} s", f(async_best, 1)),
        ],
        vec![
            "wall-clock speedup".into(),
            format!("{speedup:.2}x"),
            String::new(),
        ],
    ];
    let shape_holds = async_wall < sync_wall && async_best < sync_best * 1.5;
    Report {
        id: "E29",
        title: "Sync vs async parallel trials (slide 57)",
        headers: vec!["scheduler", "wall clock", "best runtime"],
        rows,
        paper_claim: "async suggestion avoids the batch barrier on heterogeneous trial durations",
        measured: format!(
            "async {async_wall:.0}s vs sync {sync_wall:.0}s wall clock ({speedup:.2}x) at {total} trials, {k} slots"
        ),
        shape_holds,
    }
}

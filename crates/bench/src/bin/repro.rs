//! Regenerates every table and figure of the tutorial's experiment index.
//!
//! ```text
//! cargo run -p autotune-bench --release --bin repro          # all experiments
//! cargo run -p autotune-bench --release --bin repro -- e15   # one experiment
//! ```
//!
//! Exit code is non-zero when any executed experiment's shape check fails,
//! so CI can gate on reproduction quality.
//!
//! A full (unfiltered) run also rewrites `repro_shapes.txt` — one
//! deterministic `<id> HOLDS|FAILS <title>` line per experiment. The file
//! is checked in; CI diffs it against the fresh run so shape drift (an
//! experiment silently flipping, appearing, or vanishing) fails the gate.

use autotune_bench::all_experiments;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let experiments = all_experiments();
    let mut ran = 0;
    let mut failed = Vec::new();
    let mut shapes = String::new();
    for (key, run) in experiments {
        if !filter.is_empty() && !filter.iter().any(|f| key.starts_with(f.as_str())) {
            continue;
        }
        ran += 1;
        let start = std::time::Instant::now();
        let report = run();
        println!("{}", report.render());
        println!("({:.1}s)\n", start.elapsed().as_secs_f64());
        shapes.push_str(&format!(
            "{} {} {}\n",
            report.id,
            if report.shape_holds { "HOLDS" } else { "FAILS" },
            report.title
        ));
        if !report.shape_holds {
            failed.push(report.id);
        }
    }
    if ran == 0 {
        eprintln!("no experiment matches {filter:?}; available: e01..e35, ablations");
        std::process::exit(2);
    }
    if filter.is_empty() {
        if let Err(e) = std::fs::write("repro_shapes.txt", &shapes) {
            eprintln!("could not write repro_shapes.txt: {e}");
        }
    }
    println!(
        "== summary: {}/{} experiment shapes hold ==",
        ran - failed.len(),
        ran
    );
    if !failed.is_empty() {
        println!("failed: {failed:?}");
        std::process::exit(1);
    }
}

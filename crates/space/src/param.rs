//! Tunable-parameter definitions: domains, scales, priors, special values.

use crate::{SpaceError, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The domain (type and range) of a tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// Continuous value in `[low, high]`. When `log` is set, sampling and
    /// unit-cube encoding happen in log space — the right treatment for
    /// knobs spanning orders of magnitude (buffer sizes, timeouts).
    Float {
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
        /// Sample/encode in log space.
        log: bool,
    },
    /// Integer value in `[low, high]` (inclusive), optionally log-scaled.
    Int {
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
        /// Sample/encode in log space.
        log: bool,
    },
    /// Continuous value quantized to `low + k * step` within `[low, high]`.
    /// LlamaTune-style bucketization is expressed by re-quantizing an
    /// existing float domain.
    Quantized {
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
        /// Quantization step (> 0).
        step: f64,
    },
    /// One of a fixed set of categories (e.g. `innodb_flush_method`).
    Categorical {
        /// Allowed category names.
        choices: Vec<String>,
    },
    /// Boolean flag.
    Bool,
}

impl Domain {
    /// Number of unit-cube dimensions this domain occupies in the one-hot
    /// encoding (1 for everything except categoricals).
    pub fn onehot_width(&self) -> usize {
        match self {
            Domain::Categorical { choices } => choices.len(),
            _ => 1,
        }
    }

    /// Number of distinct values, if finite.
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            Domain::Float { .. } => None,
            Domain::Int { low, high, .. } => Some((high - low + 1) as u64),
            Domain::Quantized { low, high, step } => Some(((high - low) / step).floor() as u64 + 1),
            Domain::Categorical { choices } => Some(choices.len() as u64),
            Domain::Bool => Some(2),
        }
    }
}

/// Prior knowledge about where good values live, used to bias sampling.
///
/// The tutorial calls this "marginal constraints": range limits and
/// log-scaling live on [`Domain`]; this type adds distributional knowledge
/// ("on an 8 GB box the buffer pool should be near 6-7 GB") and
/// LlamaTune-style *special values* (e.g. `0` = disabled) that deserve
/// dedicated probability mass rather than their Lebesgue share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Prior {
    /// No prior: uniform over the (possibly log-scaled) domain.
    #[default]
    Uniform,
    /// Truncated normal in unit-cube coordinates: samples are drawn around
    /// `mean01` (a position in `[0,1]` along the encoded axis) with the
    /// given standard deviation and clamped into the cube.
    Normal {
        /// Center in unit-cube coordinates.
        mean01: f64,
        /// Standard deviation in unit-cube coordinates.
        std01: f64,
    },
}

/// A single tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Knob name, e.g. `innodb_buffer_pool_size`.
    pub name: String,
    /// Type and range.
    pub domain: Domain,
    /// Default value, used for inactive conditional parameters and as the
    /// baseline in duet benchmarking. Must lie inside the domain.
    pub default: Value,
    /// Sampling prior.
    pub prior: Prior,
    /// Special values (LlamaTune "special knob values handling"): each is
    /// sampled with probability `special_value_bias / len` instead of its
    /// natural measure. Only meaningful for numeric domains.
    pub special_values: Vec<f64>,
    /// Total probability mass devoted to special values (default 0.2 when
    /// any are declared).
    pub special_value_bias: f64,
}

impl Param {
    /// A continuous parameter with a mid-range default.
    pub fn float(name: impl Into<String>, low: f64, high: f64) -> Self {
        Param {
            name: name.into(),
            domain: Domain::Float {
                low,
                high,
                log: false,
            },
            default: Value::Float(0.5 * (low + high)),
            prior: Prior::Uniform,
            special_values: Vec::new(),
            special_value_bias: 0.2,
        }
    }

    /// An integer parameter with a mid-range default.
    pub fn int(name: impl Into<String>, low: i64, high: i64) -> Self {
        Param {
            name: name.into(),
            domain: Domain::Int {
                low,
                high,
                log: false,
            },
            default: Value::Int(low.midpoint(high)),
            prior: Prior::Uniform,
            special_values: Vec::new(),
            special_value_bias: 0.2,
        }
    }

    /// A quantized continuous parameter (`low + k * step`).
    pub fn quantized(name: impl Into<String>, low: f64, high: f64, step: f64) -> Self {
        Param {
            name: name.into(),
            domain: Domain::Quantized { low, high, step },
            default: Value::Float(low),
            prior: Prior::Uniform,
            special_values: Vec::new(),
            special_value_bias: 0.2,
        }
    }

    /// A categorical parameter; the first choice is the default.
    pub fn categorical(name: impl Into<String>, choices: &[&str]) -> Self {
        Param {
            name: name.into(),
            domain: Domain::Categorical {
                choices: choices.iter().map(|s| s.to_string()).collect(),
            },
            default: Value::Cat(choices.first().map(|s| s.to_string()).unwrap_or_default()),
            prior: Prior::Uniform,
            special_values: Vec::new(),
            special_value_bias: 0.2,
        }
    }

    /// A boolean parameter, default `false`.
    pub fn bool(name: impl Into<String>) -> Self {
        Param {
            name: name.into(),
            domain: Domain::Bool,
            default: Value::Bool(false),
            prior: Prior::Uniform,
            special_values: Vec::new(),
            special_value_bias: 0.2,
        }
    }

    /// Switches a float/int domain to log scale (builder style).
    ///
    /// # Panics
    /// Panics if applied to a non-numeric domain or a domain containing
    /// non-positive values.
    pub fn log_scale(mut self) -> Self {
        match &mut self.domain {
            Domain::Float { low, log, .. } => {
                assert!(*low > 0.0, "log scale requires positive lower bound");
                *log = true;
            }
            Domain::Int { low, log, .. } => {
                assert!(*low > 0, "log scale requires positive lower bound");
                *log = true;
            }
            _ => panic!("log_scale only applies to float/int parameters"), // lint: allow(D5) builder-time validation, panics by design
        }
        self
    }

    /// Sets the default value (builder style).
    pub fn default_value(mut self, v: impl Into<Value>) -> Self {
        self.default = v.into();
        self
    }

    /// Sets a truncated-normal prior in unit-cube coordinates (builder
    /// style).
    pub fn prior_normal(mut self, mean01: f64, std01: f64) -> Self {
        self.prior = Prior::Normal { mean01, std01 };
        self
    }

    /// Declares special values that receive dedicated sampling mass
    /// (builder style).
    pub fn with_special_values(mut self, values: &[f64]) -> Self {
        self.special_values = values.to_vec();
        self
    }

    /// Validates internal consistency (bounds ordered, default in range).
    pub fn validate(&self) -> crate::Result<()> {
        let err = |reason: String| SpaceError::InvalidDomain {
            param: self.name.clone(),
            reason,
        };
        match &self.domain {
            Domain::Float { low, high, log } => {
                if low >= high || low.is_nan() || high.is_nan() {
                    return Err(err(format!("low {low} must be < high {high}")));
                }
                if *log && *low <= 0.0 {
                    return Err(err("log scale requires positive bounds".into()));
                }
            }
            Domain::Int { low, high, log } => {
                if low > high {
                    return Err(err(format!("low {low} must be <= high {high}")));
                }
                if *log && *low <= 0 {
                    return Err(err("log scale requires positive bounds".into()));
                }
            }
            Domain::Quantized { low, high, step } => {
                if low >= high || low.is_nan() || high.is_nan() {
                    return Err(err(format!("low {low} must be < high {high}")));
                }
                if step.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(err(format!("step {step} must be positive")));
                }
            }
            Domain::Categorical { choices } => {
                if choices.is_empty() {
                    return Err(err("categorical needs at least one choice".into()));
                }
                let mut seen = std::collections::BTreeSet::new();
                for c in choices {
                    if !seen.insert(c) {
                        return Err(err(format!("duplicate choice '{c}'")));
                    }
                }
            }
            Domain::Bool => {}
        }
        self.check_value(&self.default).map_err(|e| match e {
            SpaceError::InvalidValue { param, reason } => SpaceError::InvalidDomain {
                param,
                reason: format!("default invalid: {reason}"),
            },
            other => other,
        })
    }

    /// Checks that `v` is a legal value for this parameter.
    pub fn check_value(&self, v: &Value) -> crate::Result<()> {
        let err = |reason: String| SpaceError::InvalidValue {
            param: self.name.clone(),
            reason,
        };
        match (&self.domain, v) {
            (Domain::Float { low, high, .. }, Value::Float(x)) => {
                let in_range = x.is_finite() && *x >= *low && *x <= *high;
                if in_range || self.special_values.contains(x) {
                    Ok(())
                } else {
                    Err(err(format!("{x} outside [{low}, {high}]")))
                }
            }
            (Domain::Int { low, high, .. }, Value::Int(x)) => {
                if (low..=high).contains(&x) || self.special_values.contains(&(*x as f64)) {
                    Ok(())
                } else {
                    Err(err(format!("{x} outside [{low}, {high}]")))
                }
            }
            (Domain::Quantized { low, high, step }, Value::Float(x)) => {
                if self.special_values.contains(x) {
                    return Ok(());
                }
                if !(x.is_finite() && *x >= *low - 1e-9 && *x <= *high + 1e-9) {
                    return Err(err(format!("{x} outside [{low}, {high}]")));
                }
                let k = (x - low) / step;
                if (k - k.round()).abs() > 1e-6 {
                    return Err(err(format!("{x} not on the {step} grid from {low}")));
                }
                Ok(())
            }
            (Domain::Categorical { choices }, Value::Cat(c)) => {
                if choices.iter().any(|x| x == c) {
                    Ok(())
                } else {
                    Err(err(format!("'{c}' not one of {choices:?}")))
                }
            }
            (Domain::Bool, Value::Bool(_)) => Ok(()),
            (_, v) => Err(err(format!("type mismatch: got {v:?}"))),
        }
    }

    /// Maps a value to its unit-cube coordinate in `[0, 1]`.
    ///
    /// Special values that fall outside the regular range are clamped to
    /// the nearest edge — the encoding is a model-facing view, and models
    /// only need *a* stable position for them.
    pub fn to_unit(&self, v: &Value) -> crate::Result<f64> {
        let bad = |reason: String| SpaceError::InvalidValue {
            param: self.name.clone(),
            reason,
        };
        let u = match (&self.domain, v) {
            (Domain::Float { low, high, log }, Value::Float(x)) => {
                numeric_to_unit(*x, *low, *high, *log)
            }
            (Domain::Int { low, high, log }, Value::Int(x)) => {
                numeric_to_unit(*x as f64, *low as f64, *high as f64, *log)
            }
            (Domain::Quantized { low, high, .. }, Value::Float(x)) => {
                numeric_to_unit(*x, *low, *high, false)
            }
            (Domain::Categorical { choices }, Value::Cat(c)) => {
                let idx = choices
                    .iter()
                    .position(|x| x == c)
                    .ok_or_else(|| bad(format!("'{c}' not a known choice")))?;
                if choices.len() == 1 {
                    0.0
                } else {
                    idx as f64 / (choices.len() - 1) as f64
                }
            }
            (Domain::Bool, Value::Bool(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            (_, v) => return Err(bad(format!("type mismatch: got {v:?}"))),
        };
        Ok(u.clamp(0.0, 1.0))
    }

    /// Maps a unit-cube coordinate back to a legal value (inverse of
    /// [`Param::to_unit`] up to quantization/rounding).
    pub fn from_unit(&self, u: f64) -> Value {
        let u = u.clamp(0.0, 1.0);
        match &self.domain {
            Domain::Float { low, high, log } => Value::Float(unit_to_numeric(u, *low, *high, *log)),
            Domain::Int { low, high, log } => {
                let x = unit_to_numeric(u, *low as f64, *high as f64, *log);
                Value::Int((x.round() as i64).clamp(*low, *high))
            }
            Domain::Quantized { low, high, step } => {
                let x = unit_to_numeric(u, *low, *high, false);
                let k = ((x - low) / step).round();
                Value::Float((low + k * step).clamp(*low, *high))
            }
            Domain::Categorical { choices } => {
                let n = choices.len();
                let idx = if n == 1 {
                    0
                } else {
                    ((u * n as f64).floor() as usize).min(n - 1)
                };
                Value::Cat(choices[idx].clone())
            }
            Domain::Bool => Value::Bool(u >= 0.5),
        }
    }

    /// Samples a value according to the prior and special-value bias.
    pub fn sample(&self, rng: &mut impl Rng) -> Value {
        // Special values first: they get `special_value_bias` of the mass.
        if !self.special_values.is_empty() && rng.gen::<f64>() < self.special_value_bias {
            let idx = rng.gen_range(0..self.special_values.len());
            let sv = self.special_values[idx];
            return match &self.domain {
                Domain::Int { .. } => Value::Int(sv.round() as i64),
                _ => Value::Float(sv),
            };
        }
        let u = match self.prior {
            Prior::Uniform => rng.gen::<f64>(),
            Prior::Normal { mean01, std01 } => {
                // Box-Muller truncated into [0,1] by clamping; bias at the
                // edges is acceptable for a sampling prior.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean01 + std01 * z).clamp(0.0, 1.0)
            }
        };
        self.from_unit(u)
    }
}

/// Maps a numeric `x` in `[low, high]` to `[0,1]`, optionally via log space.
fn numeric_to_unit(x: f64, low: f64, high: f64, log: bool) -> f64 {
    if log {
        let (l, h, x) = (low.ln(), high.ln(), x.max(low).ln());
        (x - l) / (h - l)
    } else {
        (x - low) / (high - low)
    }
}

/// Inverse of [`numeric_to_unit`].
fn unit_to_numeric(u: f64, low: f64, high: f64, log: bool) -> f64 {
    if log {
        let (l, h) = (low.ln(), high.ln());
        (l + u * (h - l)).exp().clamp(low, high)
    } else {
        (low + u * (high - low)).clamp(low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn float_unit_roundtrip() {
        let p = Param::float("x", 10.0, 20.0);
        let u = p.to_unit(&Value::Float(15.0)).unwrap();
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(p.from_unit(u), Value::Float(15.0));
    }

    #[test]
    fn log_scale_midpoint_is_geometric_mean() {
        let p = Param::float("x", 1.0, 100.0).log_scale();
        match p.from_unit(0.5) {
            Value::Float(v) => assert!((v - 10.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn int_rounding_and_bounds() {
        let p = Param::int("n", 1, 10);
        assert_eq!(p.from_unit(0.0), Value::Int(1));
        assert_eq!(p.from_unit(1.0), Value::Int(10));
        assert_eq!(p.from_unit(2.0), Value::Int(10)); // clamped
    }

    #[test]
    fn quantized_snaps_to_grid() {
        let p = Param::quantized("q", 0.0, 1.0, 0.25);
        match p.from_unit(0.4) {
            Value::Float(v) => assert!((v - 0.5).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.check_value(&Value::Float(0.75)).is_ok());
        assert!(p.check_value(&Value::Float(0.3)).is_err());
    }

    #[test]
    fn categorical_unit_roundtrip_all_choices() {
        let p = Param::categorical("m", &["a", "b", "c"]);
        for c in ["a", "b", "c"] {
            let u = p.to_unit(&Value::Cat(c.into())).unwrap();
            assert_eq!(p.from_unit(u), Value::Cat(c.into()));
        }
    }

    #[test]
    fn bool_unit_threshold() {
        let p = Param::bool("jit");
        assert_eq!(p.from_unit(0.49), Value::Bool(false));
        assert_eq!(p.from_unit(0.51), Value::Bool(true));
    }

    #[test]
    fn validate_rejects_bad_domains() {
        assert!(Param::float("x", 2.0, 1.0).validate().is_err());
        assert!(Param::quantized("q", 0.0, 1.0, 0.0).validate().is_err());
        assert!(Param::categorical("c", &["a", "a"]).validate().is_err());
        assert!(Param::int("n", 5, 4).validate().is_err());
    }

    #[test]
    fn validate_rejects_default_out_of_range() {
        let p = Param::float("x", 0.0, 1.0).default_value(5.0);
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "positive lower bound")]
    fn log_scale_rejects_nonpositive() {
        let _ = Param::float("x", 0.0, 1.0).log_scale();
    }

    #[test]
    fn special_values_accepted_out_of_range() {
        // -1 means "disabled" for many kernel knobs.
        let p = Param::float("cost", 100.0, 1000.0).with_special_values(&[-1.0]);
        assert!(p.check_value(&Value::Float(-1.0)).is_ok());
        assert!(p.check_value(&Value::Float(-2.0)).is_err());
    }

    #[test]
    fn special_values_get_sampling_mass() {
        let p = Param::float("cost", 100.0, 1000.0).with_special_values(&[-1.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2000;
        let hits = (0..n)
            .filter(|_| matches!(p.sample(&mut rng), Value::Float(v) if v == -1.0))
            .count();
        let frac = hits as f64 / n as f64;
        assert!(
            (frac - 0.2).abs() < 0.05,
            "special-value mass {frac} far from bias 0.2"
        );
    }

    #[test]
    fn normal_prior_concentrates_samples() {
        let p = Param::float("x", 0.0, 1.0).prior_normal(0.9, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..500)
            .map(|_| p.sample(&mut rng).as_f64().unwrap())
            .sum::<f64>()
            / 500.0;
        assert!(
            (mean - 0.9).abs() < 0.05,
            "prior mean {mean} should be near 0.9"
        );
    }

    #[test]
    fn sample_respects_bounds() {
        let p = Param::int("n", 3, 7).log_scale();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = p.sample(&mut rng).as_i64().unwrap();
            assert!((3..=7).contains(&v));
        }
    }

    #[test]
    fn cardinality() {
        assert_eq!(Param::int("n", 1, 10).domain.cardinality(), Some(10));
        assert_eq!(Param::bool("b").domain.cardinality(), Some(2));
        assert_eq!(Param::float("x", 0.0, 1.0).domain.cardinality(), None);
        assert_eq!(
            Param::quantized("q", 0.0, 1.0, 0.25).domain.cardinality(),
            Some(5)
        );
        assert_eq!(
            Param::categorical("c", &["a", "b", "c"])
                .domain
                .cardinality(),
            Some(3)
        );
    }
}

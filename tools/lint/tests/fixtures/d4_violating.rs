//! D4 fixture: NaN-panicking (or NaN-inconsistent) float comparisons.

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn max_score(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}

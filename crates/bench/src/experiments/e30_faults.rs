//! E30 (systems challenges): fault injection and resilient execution.
//! Real campaigns lose trials to transient machine failures, hangs,
//! stragglers and outages — not just to bad configs. Feeding every loss
//! to the learner as a crash penalty (the naive baseline) mis-trains the
//! surrogate; retrying transient losses, timing out hangs and
//! quarantining sick machines recovers near-fault-free quality.

use crate::report::{f, Report};
use autotune::executor::{
    CrashPenaltyMw, Executor, MachineAssignMw, OptimizerSource, QuarantineMw, RetryMw,
    SchedulePolicy, TimeoutMw,
};
use autotune::{Target, TrialStorage};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{CloudNoise, FaultPlan, NoiseConfig};

const N_MACHINES: usize = 8;
const BUDGET: usize = 48;
const PENALTY: f64 = 1e9;
/// Trials run ~30 s; a hang inflates that 30-60x, so 120 s cleanly
/// separates hangs from slow-but-honest trials.
const TIMEOUT_S: f64 = 120.0;

/// The E30 stress regime: aggressive background fault rates, two sick
/// machines the quarantine should catch, and a scheduled outage.
fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::aggressive(seed)
        .with_sick_machine(0, 6.0)
        .with_sick_machine(5, 6.0)
        .with_outage(2, 0.0, 2_000.0)
}

fn target(seed: u64, faults: bool) -> Target {
    let t = super::dbms_target().with_noise(CloudNoise::new_fleet(
        N_MACHINES,
        NoiseConfig::default(),
        seed,
    ));
    if faults {
        t.with_faults(fault_plan(seed))
    } else {
        t
    }
}

enum Variant {
    FaultFree,
    Naive,
    Resilient,
}

fn run_variant(variant: &Variant, seed: u64, policy: SchedulePolicy) -> (TrialStorage, usize) {
    let target = target(seed, !matches!(variant, Variant::FaultFree));
    let mut opt = BayesianOptimizer::gp(target.space().clone());
    let mut source = OptimizerSource::new(&mut opt, BUDGET);
    let mut storage = TrialStorage::new();
    let mut exec = Executor::new(&target, policy)
        .with_middleware(Box::new(MachineAssignMw::round_robin(N_MACHINES)));
    if matches!(variant, Variant::Resilient) {
        exec = exec
            .with_middleware(Box::new(QuarantineMw::with_defaults(N_MACHINES)))
            .with_middleware(Box::new(RetryMw::new(3, 5.0)))
            .with_middleware(Box::new(TimeoutMw::new(TIMEOUT_S)));
    }
    let mw = if matches!(variant, Variant::Naive) {
        CrashPenaltyMw::naive(PENALTY)
    } else {
        CrashPenaltyMw::new(PENALTY)
    };
    let report = exec
        .with_middleware(Box::new(mw))
        .run(&mut source, &mut storage, seed);
    (storage, report.n_quarantined_machines)
}

/// Runs the experiment.
pub fn run() -> Report {
    let n_seeds = 5u64;
    let mut rows = Vec::new();
    let mut bests = [0.0_f64; 3];
    for (vi, (variant, label)) in [
        (Variant::FaultFree, "fault-free"),
        (Variant::Naive, "naive crash-penalty"),
        (Variant::Resilient, "retry+timeout+quarantine"),
    ]
    .into_iter()
    .enumerate()
    {
        let mut best = 0.0;
        let mut crashed = 0;
        let mut transient = 0;
        let mut retried = 0;
        let mut quarantined = 0;
        for seed in 0..n_seeds {
            let (s, nq) = run_variant(&variant, 3_000 + seed, SchedulePolicy::Sequential);
            best += s.best().map_or(f64::INFINITY, |t| t.cost) / n_seeds as f64;
            crashed += s.n_crashed();
            transient += s.n_transient_failures();
            retried += s.n_retried();
            quarantined += nq;
        }
        bests[vi] = best;
        rows.push(vec![
            label.into(),
            format!("{} ms", f(best, 2)),
            crashed.to_string(),
            transient.to_string(),
            retried.to_string(),
            quarantined.to_string(),
        ]);
    }
    let [free_best, naive_best, resilient_best] = bests;

    // Determinism under faults: the full resilience stack must stay
    // byte-identical across the three k=1 schedule policies.
    let (seq, _) = run_variant(&Variant::Resilient, 3_000, SchedulePolicy::Sequential);
    let (sync1, _) = run_variant(
        &Variant::Resilient,
        3_000,
        SchedulePolicy::SyncBatch { k: 1 },
    );
    let (async1, _) = run_variant(
        &Variant::Resilient,
        3_000,
        SchedulePolicy::AsyncSlots { k: 1 },
    );
    let deterministic = seq.to_json() == sync1.to_json() && seq.to_json() == async1.to_json();
    rows.push(vec![
        "k=1 policies byte-identical".into(),
        if deterministic { "yes" } else { "NO" }.into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);

    let recovered = resilient_best <= free_best * 1.10;
    let naive_worse = naive_best > resilient_best * 1.05;
    Report {
        id: "E30",
        title: "Fault injection and resilient execution (systems challenges)",
        headers: vec![
            "executor",
            "best latency",
            "crashed",
            "transient",
            "retries",
            "quarantined",
        ],
        rows,
        paper_claim: "retries, timeouts and quarantine recover near-fault-free quality; feeding \
                      transient losses to the learner as crashes degrades it",
        measured: format!(
            "resilient {} vs fault-free {} (within 10%: {recovered}), naive {} ({}% worse), \
             deterministic: {deterministic}",
            f(resilient_best, 2),
            f(free_best, 2),
            f(naive_best, 2),
            f((naive_best / resilient_best - 1.0) * 100.0, 0),
        ),
        shape_holds: recovered && naive_worse && deterministic,
    }
}

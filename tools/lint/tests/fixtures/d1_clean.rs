//! D1 clean fixture: time arrives as an injected value; only tests may
//! read the wall clock.

pub fn elapsed_s(now_s: f64, start_s: f64) -> f64 {
    now_s - start_s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_the_clock() {
        let _ = std::time::Instant::now();
    }
}

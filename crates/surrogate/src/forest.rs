//! SMAC-style random-forest surrogate (tutorial slide 50).
//!
//! Hutter et al.'s insight: an ensemble of randomized regression trees
//! yields both a mean *and* a variance estimate (the spread of per-tree
//! predictions plus within-leaf variance, by the law of total variance),
//! which is all an acquisition function needs. Trees natively handle the
//! axis-aligned, conditional, and categorical structure of real
//! configuration spaces where GP distance metrics struggle (slide 51).

use crate::{check_training_set, Prediction, Result, Surrogate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning parameters for [`RandomForest`].
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of features considered at each split (0, 1]; SMAC uses
    /// ~5/6, classic random forests use sqrt(d)/d.
    pub feature_fraction: f64,
    /// Bootstrap-resample the training set per tree.
    pub bootstrap: bool,
    /// RNG seed for reproducible fits.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 30,
            max_depth: 16,
            min_samples_leaf: 3,
            feature_fraction: 5.0 / 6.0,
            bootstrap: true,
            seed: 0,
        }
    }
}

/// One node of a regression tree, arena-allocated.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        mean: f64,
        variance: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the `x[feature] <= threshold` child.
        left: usize,
        /// Arena index of the other child.
        right: usize,
    },
}

/// A single randomized regression tree.
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: &mut [usize],
        config: &RandomForestConfig,
        rng: &mut StdRng,
    ) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        let d = xs[0].len();
        let n_features = ((d as f64 * config.feature_fraction).ceil() as usize).clamp(1, d);
        tree.build(xs, ys, idx, 0, n_features, config, rng);
        tree
    }

    /// Recursively builds the subtree over `idx`, returning its arena index.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: &mut [usize],
        depth: usize,
        n_features: usize,
        config: &RandomForestConfig,
        rng: &mut StdRng,
    ) -> usize {
        let targets: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
        let mean = autotune_linalg::stats::mean(&targets);
        let variance = autotune_linalg::stats::variance(&targets);
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { mean, variance });
            nodes.len() - 1
        };
        if depth >= config.max_depth || idx.len() < 2 * config.min_samples_leaf || variance <= 1e-24
        {
            return make_leaf(&mut self.nodes);
        }

        // Random feature subset, best variance-reduction split within it.
        let d = xs[0].len();
        let mut features: Vec<usize> = (0..d).collect();
        // Partial Fisher-Yates: the first n_features entries become the subset.
        for i in 0..n_features.min(d) {
            let j = rng.gen_range(i..d);
            features.swap(i, j);
        }
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &f in &features[..n_features.min(d)] {
            // Sort indices by this feature and scan split points.
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
            // Prefix sums for O(1) variance evaluation per split.
            let n = order.len();
            let values: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
            let mut prefix_sum = vec![0.0; n + 1];
            let mut prefix_sq = vec![0.0; n + 1];
            for (i, &v) in values.iter().enumerate() {
                prefix_sum[i + 1] = prefix_sum[i] + v;
                prefix_sq[i + 1] = prefix_sq[i] + v * v;
            }
            let total_sq_err = prefix_sq[n] - prefix_sum[n] * prefix_sum[n] / n as f64;
            for split in config.min_samples_leaf..=(n - config.min_samples_leaf) {
                let xa = xs[order[split - 1]][f];
                let xb = xs[order[split]][f];
                if xb - xa < 1e-12 {
                    continue; // ties cannot be separated
                }
                let nl = split as f64;
                let nr = (n - split) as f64;
                let left_err = prefix_sq[split] - prefix_sum[split] * prefix_sum[split] / nl;
                let rsum = prefix_sum[n] - prefix_sum[split];
                let right_err = (prefix_sq[n] - prefix_sq[split]) - rsum * rsum / nr;
                let reduction = total_sq_err - left_err - right_err;
                if best.is_none_or(|(_, _, s)| reduction > s) {
                    best = Some((f, 0.5 * (xa + xb), reduction));
                }
            }
        }
        let Some((feature, threshold, score)) = best else {
            return make_leaf(&mut self.nodes);
        };
        if score <= 1e-24 {
            return make_leaf(&mut self.nodes);
        }
        // Partition in place.
        let split_at = partition(idx, |&i| xs[i][feature] <= threshold);
        if split_at == 0 || split_at == idx.len() {
            return make_leaf(&mut self.nodes);
        }
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left: usize::MAX,
            right: usize::MAX,
        });
        let (left_idx, right_idx) = idx.split_at_mut(split_at);
        let left = self.build(xs, ys, left_idx, depth + 1, n_features, config, rng);
        let right = self.build(xs, ys, right_idx, depth + 1, n_features, config, rng);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_idx]
        {
            *l = left;
            *r = right;
        }
        node_idx
    }

    /// Walks the tree to the leaf for `x`.
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        // Root is node 0 when the tree is non-trivial; build() pushes the
        // root first for splits and leaves alike.
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { mean, variance } => return (*mean, *variance),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Stable partition: reorders `xs` so elements satisfying `pred` come
/// first; returns the boundary.
fn partition<T: Copy>(xs: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut out: Vec<T> = Vec::with_capacity(xs.len());
    let mut rest: Vec<T> = Vec::new();
    for &x in xs.iter() {
        if pred(&x) {
            out.push(x);
        } else {
            rest.push(x);
        }
    }
    let boundary = out.len();
    out.extend(rest);
    xs.copy_from_slice(&out);
    boundary
}

/// Random-forest regressor with SMAC-style uncertainty estimates.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<Tree>,
    n_train: usize,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(config: RandomForestConfig) -> Self {
        RandomForest {
            config,
            trees: Vec::new(),
            n_train: 0,
        }
    }

    /// Creates a forest with default settings.
    pub fn default_forest() -> Self {
        RandomForest::new(RandomForestConfig::default())
    }

    /// Per-tree predictions at `x` (useful for Thompson-style sampling:
    /// pick one tree's opinion at random).
    pub fn tree_predictions(&self, x: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict(x).0).collect()
    }
}

impl Surrogate for RandomForest {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        check_training_set(xs, ys)?;
        let n = xs.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.trees = (0..self.config.n_trees)
            .map(|_| {
                let mut idx: Vec<usize> = if self.config.bootstrap && n > 1 {
                    (0..n).map(|_| rng.gen_range(0..n)).collect()
                } else {
                    (0..n).collect()
                };
                Tree::fit(xs, ys, &mut idx, &self.config, &mut rng)
            })
            .collect();
        self.n_train = n;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        if self.trees.is_empty() {
            return Prediction {
                mean: 0.0,
                variance: 1.0,
            };
        }
        // Law of total variance across trees:
        //   Var = Var_trees(mean_t) + Mean_trees(var_t)
        let preds: Vec<(f64, f64)> = self.trees.iter().map(|t| t.predict(x)).collect();
        let means: Vec<f64> = preds.iter().map(|p| p.0).collect();
        let mean = autotune_linalg::stats::mean(&means);
        let between = autotune_linalg::stats::variance(&means);
        let within = autotune_linalg::stats::mean(&preds.iter().map(|p| p.1).collect::<Vec<_>>());
        Prediction {
            mean,
            variance: (between + within).max(0.0),
        }
    }

    fn n_train(&self) -> usize {
        self.n_train
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // A step function: y = 1 for x < 0.5, y = 5 otherwise. Trees should
        // nail this; a smooth GP would ring.
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 0.5 { 1.0 } else { 5.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn learns_step_function() {
        let (xs, ys) = step_data();
        let mut rf = RandomForest::default_forest();
        rf.fit(&xs, &ys).unwrap();
        assert!((rf.predict(&[0.2]).mean - 1.0).abs() < 0.3);
        assert!((rf.predict(&[0.8]).mean - 5.0).abs() < 0.3);
    }

    #[test]
    fn variance_rises_at_the_boundary() {
        let (xs, ys) = step_data();
        let mut rf = RandomForest::default_forest();
        rf.fit(&xs, &ys).unwrap();
        let at_edge = rf.predict(&[0.5]).variance;
        let in_bulk = rf.predict(&[0.1]).variance;
        assert!(
            at_edge > in_bulk,
            "edge variance {at_edge} should exceed bulk variance {in_bulk}"
        );
    }

    #[test]
    fn two_dimensional_interaction() {
        // y = 10 only when both features are high: requires two splits.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let a = i as f64 / 9.0;
                let b = j as f64 / 9.0;
                xs.push(vec![a, b]);
                ys.push(if a > 0.6 && b > 0.6 { 10.0 } else { 0.0 });
            }
        }
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 50,
            ..Default::default()
        });
        rf.fit(&xs, &ys).unwrap();
        assert!(rf.predict(&[0.9, 0.9]).mean > 7.0);
        assert!(rf.predict(&[0.9, 0.1]).mean < 3.0);
        assert!(rf.predict(&[0.1, 0.9]).mean < 3.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (xs, ys) = step_data();
        let mut a = RandomForest::default_forest();
        let mut b = RandomForest::default_forest();
        a.fit(&xs, &ys).unwrap();
        b.fit(&xs, &ys).unwrap();
        for x in [[0.3], [0.5], [0.7]] {
            assert_eq!(a.predict(&x), b.predict(&x));
        }
    }

    #[test]
    fn unfitted_forest_is_uninformative() {
        let rf = RandomForest::default_forest();
        let p = rf.predict(&[0.5]);
        assert_eq!(p.mean, 0.0);
        assert_eq!(p.variance, 1.0);
        assert_eq!(rf.n_train(), 0);
    }

    #[test]
    fn constant_targets_produce_zero_variance_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![3.0; 10];
        let mut rf = RandomForest::default_forest();
        rf.fit(&xs, &ys).unwrap();
        let p = rf.predict(&[4.5]);
        assert!((p.mean - 3.0).abs() < 1e-9);
        assert!(p.variance < 1e-9);
    }

    #[test]
    fn tree_predictions_expose_ensemble_spread() {
        let (xs, ys) = step_data();
        let mut rf = RandomForest::default_forest();
        rf.fit(&xs, &ys).unwrap();
        let preds = rf.tree_predictions(&[0.5]);
        assert_eq!(preds.len(), rf.config.n_trees);
        // Boundary point: trees should disagree.
        let spread = autotune_linalg::stats::std_dev(&preds);
        assert!(spread > 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        let mut rf = RandomForest::default_forest();
        assert!(rf.fit(&[], &[]).is_err());
        assert!(rf.fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn single_sample_fits_as_leaf() {
        let mut rf = RandomForest::default_forest();
        rf.fit(&[vec![0.5]], &[2.0]).unwrap();
        assert!((rf.predict(&[0.9]).mean - 2.0).abs() < 1e-12);
    }
}

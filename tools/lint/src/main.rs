//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! autotune-lint [--deny-all] [--quiet] [--lock-graph] [PATH ...]
//! ```
//!
//! With no paths, lints every `crates/*/src` file of the enclosing
//! workspace. Explicit paths are linted as library code (useful for
//! one-off checks). `--deny-all` exits nonzero when any violation
//! remains after allows — that is the CI gate. `--lock-graph` prints the
//! cross-crate lock-order graph as DOT instead of the violation list
//! (violations still gate the exit code under `--deny-all`).

use autotune_lint::{
    analyze_source, find_workspace_root, graph, lint_workspace_graph, CrateKind, LockEdge, Report,
};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut quiet = false;
    let mut lock_graph = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--quiet" => quiet = true,
            "--lock-graph" => lock_graph = true,
            "--help" | "-h" => {
                eprintln!("usage: autotune-lint [--deny-all] [--quiet] [--lock-graph] [PATH ...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("autotune-lint: unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => paths.push(other.to_string()),
        }
    }

    let (report, edges) = if paths.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("autotune-lint: cannot read current dir: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("autotune-lint: no workspace root (Cargo.toml + crates/) above {cwd:?}");
            return ExitCode::FAILURE;
        };
        match lint_workspace_graph(&root) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("autotune-lint: walk failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut r = Report::default();
        let mut edges: Vec<LockEdge> = Vec::new();
        for p in &paths {
            match std::fs::read_to_string(Path::new(p)) {
                Ok(src) => {
                    let (fr, mut fe) = analyze_source(p, CrateKind::Library, &src);
                    r.absorb(fr);
                    edges.append(&mut fe);
                }
                Err(e) => {
                    eprintln!("autotune-lint: {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        r.violations.extend(graph::cycle_violations(&edges));
        r.violations.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.code).cmp(&(b.file.as_str(), b.line, b.code))
        });
        (r, edges)
    };

    if lock_graph {
        print!("{}", graph::to_dot(&edges));
    } else {
        for v in &report.violations {
            println!("{v}");
        }
    }
    if !quiet {
        eprintln!("{}", report.summary());
    }
    if deny_all && !report.violations.is_empty() {
        eprintln!(
            "autotune-lint: {} violation(s) — fix them or annotate with \
             `// lint: allow(Dx) <reason>`",
            report.violations.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

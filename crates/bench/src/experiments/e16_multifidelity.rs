//! E16 (slides 65-66): multi-fidelity optimization — run TPC-H SF-1
//! (seconds) instead of SF-10 (minutes) to screen configs, and observe the
//! systems caveat: knob sensitivity *shifts* with fidelity (I/O knobs only
//! matter once the data stops fitting in memory).

use crate::report::{f, Report};
use autotune::{FidelityLevel, Objective, SuccessiveHalving, SuccessiveHalvingConfig, Target};
use autotune_sim::{DbmsSim, Environment, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpch(10.0),
        // A large VM keeps random configs from OOM-crashing: crashed trials
        // elapse almost no time, which would deflate the flat-search
        // baseline and obscure the fidelity-ladder saving being measured.
        Environment::large(),
        Objective::MinimizeElapsed,
    );

    // Successive halving over the SF ladder vs flat full-fidelity search
    // with the same trial count.
    let sh = SuccessiveHalving::new(
        vec![
            FidelityLevel {
                label: "SF-1".into(),
                workload: Workload::tpch(1.0),
            },
            FidelityLevel {
                label: "SF-4".into(),
                workload: Workload::tpch(4.0),
            },
            FidelityLevel {
                label: "SF-10".into(),
                workload: Workload::tpch(10.0),
            },
        ],
        SuccessiveHalvingConfig::default(),
    );
    let outcome = sh.run(&target, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let mut flat_best = f64::INFINITY;
    let mut flat_elapsed = 0.0;
    for _ in 0..sh.total_trials() {
        let cfg = target.space().sample(&mut rng);
        let e = target.evaluate(&cfg, &mut rng);
        flat_elapsed += e.result.elapsed_s;
        if e.cost.is_finite() {
            flat_best = flat_best.min(e.cost);
        }
    }

    // Knob-sensitivity shift: relative latency change from maxing
    // io_threads, at SF-1 vs SF-10.
    let sensitivity = |sf: f64, seed: u64| -> f64 {
        let w = Workload::tpch(sf);
        let mut rng = StdRng::seed_from_u64(seed);
        let base_cfg = target.space().default_config().with("buffer_pool_gb", 2.0);
        let io_cfg = base_cfg.clone().with("io_threads", 64i64);
        let avg = |cfg: &autotune_space::Config, rng: &mut StdRng| -> f64 {
            (0..6)
                .map(|_| target.evaluate_at(cfg, Some(&w), rng).result.latency_avg_ms)
                .sum::<f64>()
                / 6.0
        };
        let base = avg(&base_cfg, &mut rng);
        let io = avg(&io_cfg, &mut rng);
        (base - io) / base
    };
    let sens_sf1 = sensitivity(1.0, 7);
    let sens_sf10 = sensitivity(10.0, 8);

    let rows = vec![
        vec![
            "successive halving".into(),
            format!("{:?}", outcome.rung_sizes),
            format!("{} s", f(outcome.best_cost, 1)),
            format!("{:.0} s spent", outcome.total_elapsed_s),
        ],
        vec![
            "flat SF-10 search".into(),
            format!("[{}]", sh.total_trials()),
            format!("{} s", f(flat_best, 1)),
            format!("{flat_elapsed:.0} s spent"),
        ],
        vec![
            "io_threads sensitivity".into(),
            format!("SF-1: {:.1}%", 100.0 * sens_sf1),
            format!("SF-10: {:.1}%", 100.0 * sens_sf10),
            String::new(),
        ],
    ];
    let cost_ratio = outcome.total_elapsed_s / flat_elapsed;
    let shape_holds =
        cost_ratio < 0.5 && outcome.best_cost < flat_best * 1.5 && sens_sf10 > sens_sf1 + 0.02;
    Report {
        id: "E16",
        title: "Multi-fidelity: TPC-H SF ladder + knob-sensitivity shift (slides 65-66)",
        headers: vec!["method", "rungs/trials", "best runtime", "benchmark cost"],
        rows,
        paper_claim: "cheap trials screen configs at a fraction of the cost; knob importance shifts with fidelity",
        measured: format!(
            "halving spent {:.0}% of flat cost, found {} vs {} s; io_threads matter {:.1}% at SF-1 vs {:.1}% at SF-10",
            100.0 * cost_ratio,
            f(outcome.best_cost, 1),
            f(flat_best, 1),
            100.0 * sens_sf1,
            100.0 * sens_sf10
        ),
        shape_holds,
    }
}

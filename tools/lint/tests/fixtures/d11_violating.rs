//! D11 fixture: non-associative float reductions inside `par_map*`
//! closures — the grouping (and therefore the rounding) would depend on
//! chunking and thread count.

pub fn mean_cost(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    par_map(xs, 2, |_, x| {
        total += x;
        *x
    });
    total / xs.len() as f64
}

pub fn chunk_sums(chunks: &[Vec<f64>]) -> Vec<f64> {
    par_map_threads(chunks, 2, 4, |_, c| c.iter().sum::<f64>())
}

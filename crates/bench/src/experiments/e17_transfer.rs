//! E17 (slide 67): knowledge transfer — warm-start a campaign from a
//! similar workload's history, and import crash knowledge everywhere
//! ("if it crashes the system, probably always does").

use crate::report::{f, Report};
use autotune::{transfer_observations, Objective, Target, TransferPolicy, Trial};
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use autotune_sim::{DbmsSim, Environment, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn target_with(workload: Workload) -> Target {
    Target::simulated(
        Box::new(DbmsSim::new()),
        workload,
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    )
}

/// Runs the experiment.
pub fn run() -> Report {
    // Donor: TPC-C at 2k tps. Recipient: TPC-C at 3k tps (similar).
    let donor_target = target_with(Workload::tpcc(2_000.0));
    let mut donor_trials = Vec::new();
    {
        let mut opt = BayesianOptimizer::gp(donor_target.space().clone());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let cfg = opt.suggest(&mut rng);
            let e = donor_target.evaluate(&cfg, &mut rng);
            opt.observe(&cfg, e.cost);
            donor_trials.push(if e.cost.is_nan() {
                Trial::crashed(cfg, e.result.elapsed_s)
            } else {
                Trial::complete(cfg, e.cost, e.result.elapsed_s)
            });
        }
    }
    let n_donor_crashes = donor_trials
        .iter()
        .filter(|t| t.status == autotune::TrialStatus::Crashed)
        .count();

    // Recipient campaigns, warm vs cold, averaged over seeds.
    let budget = 12;
    let policy = TransferPolicy {
        good_fraction: 1.0,
        ..Default::default()
    };
    let run = |warm: bool, seed: u64| -> (f64, usize) {
        let target = target_with(Workload::tpcc(3_000.0));
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        if warm {
            opt.warm_start(&transfer_observations(&donor_trials, &policy, true));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = f64::INFINITY;
        let mut crashes = 0;
        for _ in 0..budget {
            let cfg = opt.suggest(&mut rng);
            let e = target.evaluate(&cfg, &mut rng);
            opt.observe(&cfg, e.cost);
            if e.cost.is_finite() {
                best = best.min(e.cost);
            } else {
                crashes += 1;
            }
        }
        (best, crashes)
    };
    let n_seeds = 6;
    let mut warm_best = Vec::new();
    let mut cold_best = Vec::new();
    let mut warm_crashes = 0;
    let mut cold_crashes = 0;
    for seed in 0..n_seeds {
        let (wb, wc) = run(true, 300 + seed);
        let (cb, cc) = run(false, 300 + seed);
        warm_best.push(wb);
        cold_best.push(cb);
        warm_crashes += wc;
        cold_crashes += cc;
    }
    let warm_mean = autotune_linalg::stats::mean(&warm_best);
    let cold_mean = autotune_linalg::stats::mean(&cold_best);

    let rows = vec![
        vec![
            "cold start".into(),
            format!("{} ms", f(cold_mean, 4)),
            cold_crashes.to_string(),
        ],
        vec![
            "warm start".into(),
            format!("{} ms", f(warm_mean, 4)),
            warm_crashes.to_string(),
        ],
        vec![
            "donor history".into(),
            format!("50 trials"),
            format!("{n_donor_crashes} crashes"),
        ],
    ];
    let shape_holds = warm_mean <= cold_mean && warm_crashes <= cold_crashes;
    Report {
        id: "E17",
        title: "Knowledge transfer & crash penalties (slide 67)",
        headers: vec!["campaign", format!("best @{budget} (mean over {n_seeds} seeds)").leak(), "crashes"],
        rows,
        paper_claim: "warm start cuts trials-to-quality; imported crash scores keep the tuner out of the OOM region",
        measured: format!(
            "warm {} vs cold {} ms; crashes {} vs {}",
            f(warm_mean, 4),
            f(cold_mean, 4),
            warm_crashes,
            cold_crashes
        ),
        shape_holds,
    }
}

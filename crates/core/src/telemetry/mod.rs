//! Campaign observability: a subscriber fan-out on the executor's event
//! stream.
//!
//! Tuning campaigns are long, expensive and opaque — before anyone can
//! trust (or debug) a tuner they need to see where trial time and
//! optimizer overhead go. This module turns the executor's typed
//! [`TrialEvent`] stream, the finalized [`TrialOutcome`]s, and a set of
//! optimizer-side lifecycle events ([`OptEvent`]: suggest begin/end,
//! observe begin/end, surrogate refit) into a [`Subscriber`] interface
//! with three shipped implementations:
//!
//! * [`MetricsCollector`] — counters and log-bucketed histograms (trial
//!   latency, queue wait, retries, suggest/observe overhead, per-machine
//!   utilization), rolled up into a [`MetricsSnapshot`] that also rides
//!   on [`ExecReport`](crate::executor::ExecReport) and
//!   [`SessionSummary`](crate::SessionSummary).
//! * [`SpanRecorder`] — per-trial spans on the **virtual clock**
//!   (suggest → queued → running attempts → retry backoffs → observed),
//!   exportable as Chrome `trace_event` JSON so a campaign opens directly
//!   in `chrome://tracing` / Perfetto.
//! * [`ProgressReporter`] — periodic one-line campaign status (best so
//!   far, incumbent age, fleet health, ETA) to any `io::Write` sink.
//!
//! # Determinism contract
//!
//! Subscribers are pure observers: they are notified on the executor's
//! driver thread, in a deterministic order, with timestamps taken from
//! the **virtual clock only**. Attaching any combination of subscribers
//! must leave campaign results — trial history, wall clock, RNG streams —
//! byte-identical (asserted by a release-mode CI gate). The one
//! non-deterministic quantity, real optimizer overhead, enters through an
//! explicitly injected [`WallTimer`] and flows only into subscriber-side
//! metrics, never into the event log, the trial storage, or the clock.
//! Core itself never calls `std::time::Instant::now()`; without an
//! injected timer every overhead reading is 0.

mod metrics;
mod progress;
mod span;

pub use metrics::{LogHistogram, MetricsCollector, MetricsSnapshot};
pub use progress::ProgressReporter;
pub use span::{MachineMark, SpanRecorder, SpanSegment, TrialSpan};

use crate::executor::{TrialEvent, TrialOutcome};
use serde::{Deserialize, Serialize};

/// Optimizer-side lifecycle events, delivered to subscribers alongside
/// the trial stream. They are *not* recorded in
/// [`ExecReport::events`](crate::executor::ExecReport::events): the
/// `wall_ns` payloads come from an injected [`WallTimer`] and would make
/// the event log non-deterministic. (The resumable
/// [`Campaign`](crate::executor::Campaign) event log *does* record them,
/// with `wall_ns` zeroed for the same reason.)
///
/// Suggestion and observation are instantaneous on the virtual clock
/// (the simulated cluster never waits for the tuner), so a begin/end
/// pair shares one virtual timestamp; the pair's `wall_ns` carries the
/// *real* overhead the tuner spent, which is exactly the quantity the
/// "tuning the tuner" literature asks campaigns to measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptEvent {
    /// The executor is about to ask the source for trial `id` (the id the
    /// suggestion will receive if one is dispatched).
    SuggestBegin {
        /// Prospective trial id.
        id: u64,
    },
    /// The source answered. `dispatched` is false for `Wait`/`Exhausted`
    /// polls, which still cost real tuner time.
    SuggestEnd {
        /// Prospective trial id (matches the preceding `SuggestBegin`).
        id: u64,
        /// Real nanoseconds spent inside the source (0 without a timer).
        wall_ns: u64,
        /// Whether a trial was actually dispatched.
        dispatched: bool,
    },
    /// The executor is about to report trial `id`'s outcome to the source.
    ObserveBegin {
        /// Trial id.
        id: u64,
    },
    /// The source (and its optimizer) finished digesting the outcome.
    ObserveEnd {
        /// Trial id.
        id: u64,
        /// Real nanoseconds spent inside the source (0 without a timer).
        wall_ns: u64,
    },
    /// The source's optimizer refit its surrogate hyperparameters while
    /// digesting trial `id`'s outcome or proposing trial `id`.
    SurrogateRefit {
        /// Trial id being observed/suggested when the refit happened.
        id: u64,
        /// Total refits so far in this campaign.
        n_refits: usize,
    },
    /// The source's optimizer absorbed data into its surrogate with one or
    /// more O(n²) in-place updates (no full refit) while digesting trial
    /// `id`'s outcome or proposing trial `id`.
    ModelUpdate {
        /// Trial id being observed/suggested when the update happened.
        id: u64,
        /// Total in-place updates so far in this campaign.
        n_updates: usize,
    },
}

/// A campaign observer. All hooks run on the executor's driver thread in
/// registration order; `at_s` is always the virtual clock. Implementations
/// must not feed anything back into the campaign (see the module-level
/// determinism contract).
pub trait Subscriber {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// A lifecycle event was emitted at virtual time `at_s`.
    fn on_trial_event(&mut self, _at_s: f64, _event: &TrialEvent) {}

    /// An optimizer-side event occurred at virtual time `at_s`.
    fn on_opt_event(&mut self, _at_s: f64, _event: &OptEvent) {}

    /// A trial was finalized (after the middleware chain) at `at_s`.
    fn on_outcome(&mut self, _at_s: f64, _outcome: &TrialOutcome) {}

    /// The campaign drained; `at_s` is the final virtual wall clock.
    fn on_campaign_end(&mut self, _at_s: f64) {}
}

impl<S: Subscriber + ?Sized> Subscriber for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_trial_event(&mut self, at_s: f64, event: &TrialEvent) {
        (**self).on_trial_event(at_s, event);
    }
    fn on_opt_event(&mut self, at_s: f64, event: &OptEvent) {
        (**self).on_opt_event(at_s, event);
    }
    fn on_outcome(&mut self, at_s: f64, outcome: &TrialOutcome) {
        (**self).on_outcome(at_s, outcome);
    }
    fn on_campaign_end(&mut self, at_s: f64) {
        (**self).on_campaign_end(at_s);
    }
}

/// A source of real (wall-clock) nanosecond readings for optimizer
/// overhead attribution. Core never reads real time itself — callers who
/// want overhead measured inject an implementation (examples and the
/// bench harness ship one backed by `std::time::Instant`); everyone else
/// gets [`NullTimer`] and deterministic zeros.
pub trait WallTimer {
    /// Monotonic nanoseconds since an arbitrary origin.
    fn now_ns(&mut self) -> u64;
}

/// The default [`WallTimer`]: always reads 0, keeping every derived
/// overhead figure deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTimer;

impl WallTimer for NullTimer {
    fn now_ns(&mut self) -> u64 {
        0
    }
}

//! Workload-shift detection (tutorial slide 92: "identify changes in
//! workload over time").
//!
//! Watches the stream of per-interval workload embeddings and raises a
//! flag when the distribution moves. Mechanism: maintain a running
//! reference centroid over a trailing window; feed the distance of each
//! new embedding to the centroid into a one-sided CUSUM. When the CUSUM
//! crosses its threshold, a shift is declared and the reference resets —
//! the signal the online tuners use to re-explore.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Detector tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShiftDetectorConfig {
    /// Trailing window length used to estimate the reference centroid and
    /// the in-distribution distance scale.
    pub window: usize,
    /// CUSUM drift allowance in standard deviations (distances this far
    /// above normal do not accumulate).
    pub slack_sigmas: f64,
    /// CUSUM alarm threshold in (cumulative) standard deviations.
    pub threshold_sigmas: f64,
}

impl Default for ShiftDetectorConfig {
    fn default() -> Self {
        ShiftDetectorConfig {
            window: 20,
            slack_sigmas: 1.0,
            threshold_sigmas: 6.0,
        }
    }
}

/// Streaming workload-shift detector.
#[derive(Debug, Clone)]
pub struct ShiftDetector {
    config: ShiftDetectorConfig,
    /// Reference window of recent embeddings.
    window: VecDeque<Vec<f64>>,
    cusum: f64,
    shifts: Vec<usize>,
    t: usize,
}

impl ShiftDetector {
    /// Creates a detector.
    pub fn new(config: ShiftDetectorConfig) -> Self {
        assert!(config.window >= 3, "window must hold at least 3 samples");
        ShiftDetector {
            config,
            window: VecDeque::new(),
            cusum: 0.0,
            shifts: Vec::new(),
            t: 0,
        }
    }

    /// Steps seen so far.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Time steps at which shifts were declared.
    pub fn shifts(&self) -> &[usize] {
        &self.shifts
    }

    /// Current CUSUM statistic (diagnostic).
    pub fn cusum(&self) -> f64 {
        self.cusum
    }

    /// Feeds one embedding; returns `true` when a shift is declared at
    /// this step.
    pub fn observe(&mut self, embedding: &[f64]) -> bool {
        let t = self.t;
        self.t += 1;
        // Warm-up: fill the reference window first.
        if self.window.len() < self.config.window {
            self.window.push_back(embedding.to_vec());
            return false;
        }
        // Reference statistics from the current window.
        let d = embedding.len();
        let mut centroid = vec![0.0; d];
        for w in &self.window {
            autotune_linalg::axpy(1.0, w, &mut centroid);
        }
        for c in centroid.iter_mut() {
            *c /= self.window.len() as f64;
        }
        // Per-dimension scale, so a large-magnitude channel (ops/s) cannot
        // drown mix-fraction channels in the distance metric.
        let mut dim_sd = vec![0.0; d];
        for w in &self.window {
            for (s, (&x, &c)) in dim_sd.iter_mut().zip(w.iter().zip(&centroid)) {
                *s += (x - c) * (x - c);
            }
        }
        let dim_sd: Vec<f64> = dim_sd
            .iter()
            .map(|s| (s / (self.window.len() - 1) as f64).sqrt().max(1e-9))
            .collect();
        let standardized_dist = |v: &[f64]| -> f64 {
            v.iter()
                .zip(centroid.iter().zip(&dim_sd))
                .map(|(&x, (&c, &s))| {
                    let z = (x - c) / s;
                    z * z
                })
                .sum::<f64>()
                .sqrt()
        };
        let dists: Vec<f64> = self.window.iter().map(|w| standardized_dist(w)).collect();
        let mu = autotune_linalg::stats::mean(&dists);
        let sigma = autotune_linalg::stats::std_dev(&dists).max(1e-9);
        let dist = standardized_dist(embedding);
        let z = (dist - mu) / sigma;
        // One-sided CUSUM with slack.
        self.cusum = (self.cusum + z - self.config.slack_sigmas).max(0.0);
        if self.cusum >= self.config.threshold_sigmas {
            self.shifts.push(t);
            self.cusum = 0.0;
            // Reset the reference to re-learn the new regime.
            self.window.clear();
            self.window.push_back(embedding.to_vec());
            return true;
        }
        // In-distribution sample: roll the window.
        self.window.pop_front();
        self.window.push_back(embedding.to_vec());
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn noisy_point(center: &[f64], spread: f64, rng: &mut impl Rng) -> Vec<f64> {
        center
            .iter()
            .map(|&c| c + spread * (rng.gen::<f64>() - 0.5))
            .collect()
    }

    #[test]
    fn detects_a_clear_shift_quickly() {
        let mut det = ShiftDetector::new(ShiftDetectorConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = [0.0, 0.0, 0.0];
        let b = [5.0, 5.0, 5.0];
        for _ in 0..60 {
            assert!(!det.observe(&noisy_point(&a, 0.2, &mut rng)));
        }
        let mut detected_at = None;
        for i in 0..20 {
            if det.observe(&noisy_point(&b, 0.2, &mut rng)) {
                detected_at = Some(i);
                break;
            }
        }
        let lag = detected_at.expect("shift never detected");
        assert!(lag <= 5, "detection lag {lag} too slow");
    }

    #[test]
    fn no_false_alarms_on_stationary_stream() {
        let mut det = ShiftDetector::new(ShiftDetectorConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = [1.0, 2.0];
        for _ in 0..500 {
            det.observe(&noisy_point(&a, 0.3, &mut rng));
        }
        assert!(
            det.shifts().is_empty(),
            "false alarms at {:?}",
            det.shifts()
        );
    }

    #[test]
    fn recovers_and_detects_second_shift() {
        let mut det = ShiftDetector::new(ShiftDetectorConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let regimes = [[0.0, 0.0], [4.0, 0.0], [0.0, 6.0]];
        for regime in &regimes {
            for _ in 0..60 {
                det.observe(&noisy_point(regime, 0.2, &mut rng));
            }
        }
        assert_eq!(det.shifts().len(), 2, "shifts: {:?}", det.shifts());
    }

    #[test]
    fn gradual_drift_within_slack_tolerated() {
        let cfg = ShiftDetectorConfig {
            slack_sigmas: 2.0,
            threshold_sigmas: 10.0,
            ..Default::default()
        };
        let mut det = ShiftDetector::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for t in 0..300 {
            // Very slow drift relative to noise.
            let c = [t as f64 * 0.001];
            det.observe(&noisy_point(&c, 0.5, &mut rng));
        }
        assert!(det.shifts().is_empty(), "slow drift should not alarm");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let _ = ShiftDetector::new(ShiftDetectorConfig {
            window: 1,
            ..Default::default()
        });
    }
}

//! Counters and log-bucketed histograms over the campaign event stream.

use super::{OptEvent, Subscriber};
use crate::executor::{TrialEvent, TrialOutcome};
use std::collections::BTreeMap;
use std::fmt;

/// Number of power-of-two buckets a [`LogHistogram`] keeps.
const N_BUCKETS: usize = 96;
/// Bucket index of 2^0: exponents from -48 to +47 are representable,
/// covering nanoseconds-as-ns and campaign-days-as-seconds alike.
const EXP_OFFSET: i32 = 48;

/// A histogram with power-of-two ("log-bucketed") buckets, the classic
/// cheap shape for latency-like quantities spanning many decades. Bucket
/// `i` holds values in `[2^(i-48), 2^(i-47))`; zero and negative values
/// land in the bottom bucket. Exact `min`/`max`/`sum` ride alongside, so
/// means are exact and only quantiles are bucket-resolution approximate.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; N_BUCKETS],
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LogHistogram {
    /// Bucket index for a value.
    fn bucket(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0;
        }
        (v.log2().floor() as i32 + EXP_OFFSET).clamp(0, N_BUCKETS as i32 - 1) as usize
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.counts[Self::bucket(v)] += 1;
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the geometric midpoint of the
    /// bucket containing the rank, clamped to the exact min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = f64::powi(2.0, i as i32 - EXP_OFFSET);
                return (lo * 1.5).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The rolled-up measurement of one (or several merged) campaign runs.
/// Produced by [`MetricsCollector::snapshot`]; also carried on
/// [`ExecReport`](crate::executor::ExecReport) and
/// [`SessionSummary`](crate::SessionSummary).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Trials suggested (dispatched).
    pub n_suggested: u64,
    /// Trials that began executing.
    pub n_started: u64,
    /// Trials finished cleanly.
    pub n_finished: u64,
    /// Trials that crashed the system under test.
    pub n_crashed: u64,
    /// Trials cut short by censoring middleware.
    pub n_aborted: u64,
    /// Trials lost to infrastructure with retries exhausted.
    pub n_transient: u64,
    /// Retry attempts across all trials.
    pub n_retries: u64,
    /// Machine quarantine entries.
    pub n_quarantines: u64,
    /// Machine probation releases.
    pub n_releases: u64,
    /// Rung promotions.
    pub n_promotions: u64,
    /// Surrogate hyperparameter refits.
    pub n_refits: u64,
    /// In-place O(n²) surrogate updates (incremental alternative to refits).
    pub n_model_updates: u64,
    /// Source polls that returned `Wait` (slot idle on a barrier).
    pub n_wait_polls: u64,
    /// Per-trial charged benchmark seconds.
    pub trial_latency_s: LogHistogram,
    /// Virtual seconds between suggestion and execution start.
    pub queue_wait_s: LogHistogram,
    /// Real nanoseconds per dispatched suggestion (0s without a timer).
    pub suggest_ns: LogHistogram,
    /// Real nanoseconds per outcome observation (0s without a timer).
    pub observe_ns: LogHistogram,
    /// Total real tuner nanoseconds, including `Wait` polls.
    pub tuner_wall_ns: u64,
    /// Busy benchmark seconds per machine id (fleet campaigns).
    pub machine_busy_s: BTreeMap<usize, f64>,
    /// Virtual wall clock covered by this snapshot, seconds.
    pub wall_clock_s: f64,
    /// Records appended to a durable write-ahead log (serving layer).
    pub wal_appends: u64,
    /// Bytes discarded as torn WAL tails during recovery.
    pub wal_truncated_bytes: u64,
    /// Crash/panic recoveries that rebuilt state from the WAL.
    pub recoveries: u64,
    /// Requests shed by admission control (`Response::Overloaded`).
    pub shed_requests: u64,
    /// Idempotent request retries absorbed without duplicating work.
    pub retried_requests: u64,
    /// Lookups answered from the serve-time config cache.
    pub cache_hits: u64,
    /// Lookups that missed the config cache (campaign enqueued).
    pub cache_misses: u64,
    /// Config-cache entries evicted by the LRU + quality policy.
    pub cache_evictions: u64,
    /// Config-cache entries backfilled from completed campaigns.
    pub cache_backfills: u64,
}

impl MetricsSnapshot {
    /// Busy fraction of one machine over the campaign's wall clock.
    pub fn machine_utilization(&self, machine_id: usize) -> f64 {
        if self.wall_clock_s <= 0.0 {
            return 0.0;
        }
        self.machine_busy_s.get(&machine_id).copied().unwrap_or(0.0) / self.wall_clock_s
    }

    /// Mean busy fraction across all machines that ran at least one trial.
    pub fn fleet_utilization(&self) -> f64 {
        if self.machine_busy_s.is_empty() || self.wall_clock_s <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.machine_busy_s.values().sum();
        busy / (self.wall_clock_s * self.machine_busy_s.len() as f64)
    }

    /// Folds another snapshot into this one (wall clocks add: the merged
    /// snapshot covers the concatenation of both campaigns).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.n_suggested += other.n_suggested;
        self.n_started += other.n_started;
        self.n_finished += other.n_finished;
        self.n_crashed += other.n_crashed;
        self.n_aborted += other.n_aborted;
        self.n_transient += other.n_transient;
        self.n_retries += other.n_retries;
        self.n_quarantines += other.n_quarantines;
        self.n_releases += other.n_releases;
        self.n_promotions += other.n_promotions;
        self.n_refits += other.n_refits;
        self.n_model_updates += other.n_model_updates;
        self.n_wait_polls += other.n_wait_polls;
        self.trial_latency_s.merge(&other.trial_latency_s);
        self.queue_wait_s.merge(&other.queue_wait_s);
        self.suggest_ns.merge(&other.suggest_ns);
        self.observe_ns.merge(&other.observe_ns);
        self.tuner_wall_ns += other.tuner_wall_ns;
        for (m, s) in &other.machine_busy_s {
            *self.machine_busy_s.entry(*m).or_insert(0.0) += s;
        }
        self.wall_clock_s += other.wall_clock_s;
        self.wal_appends += other.wal_appends;
        self.wal_truncated_bytes += other.wal_truncated_bytes;
        self.recoveries += other.recoveries;
        self.shed_requests += other.shed_requests;
        self.retried_requests += other.retried_requests;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_backfills += other.cache_backfills;
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trials: {} suggested, {} finished, {} crashed, {} aborted, {} transient",
            self.n_suggested, self.n_finished, self.n_crashed, self.n_aborted, self.n_transient
        )?;
        writeln!(
            f,
            "resilience: {} retries, {} quarantines, {} releases",
            self.n_retries, self.n_quarantines, self.n_releases
        )?;
        writeln!(
            f,
            "trial latency s: mean {:.2} p50 {:.2} p95 {:.2} max {:.2}",
            self.trial_latency_s.mean(),
            self.trial_latency_s.quantile(0.5),
            self.trial_latency_s.quantile(0.95),
            self.trial_latency_s.max()
        )?;
        writeln!(
            f,
            "tuner overhead: suggest mean {:.3} ms (p95 {:.3}), observe mean {:.3} ms, \
             {} refits, {} incremental updates, {:.1} ms total",
            self.suggest_ns.mean() / 1e6,
            self.suggest_ns.quantile(0.95) / 1e6,
            self.observe_ns.mean() / 1e6,
            self.n_refits,
            self.n_model_updates,
            self.tuner_wall_ns as f64 / 1e6
        )?;
        if !self.machine_busy_s.is_empty() {
            let util: Vec<String> = self
                .machine_busy_s
                .keys()
                .map(|m| format!("m{m} {:.0}%", 100.0 * self.machine_utilization(*m)))
                .collect();
            writeln!(
                f,
                "fleet: {} (mean {:.0}%)",
                util.join(" "),
                100.0 * self.fleet_utilization()
            )?;
        }
        write!(
            f,
            "wall clock {:.0} s, queue wait mean {:.2} s",
            self.wall_clock_s,
            self.queue_wait_s.mean()
        )
    }
}

/// A [`Subscriber`] rolling the event stream up into a
/// [`MetricsSnapshot`]. One instance is always attached inside the
/// executor (its snapshot lands on the `ExecReport`); attach your own to
/// aggregate across runs or to inspect metrics mid-campaign.
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    snap: MetricsSnapshot,
    /// Suggestion time per in-flight trial id, for queue-wait stamping.
    suggested_at: BTreeMap<u64, f64>,
    last_refits: u64,
    last_updates: u64,
}

impl MetricsCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// The rolled-up metrics so far. `wall_clock_s` reflects the last
    /// event's virtual time until the campaign ends.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snap.clone()
    }
}

impl Subscriber for MetricsCollector {
    fn name(&self) -> &str {
        "metrics"
    }

    fn on_trial_event(&mut self, at_s: f64, event: &TrialEvent) {
        self.snap.wall_clock_s = self.snap.wall_clock_s.max(at_s);
        match event {
            TrialEvent::Suggested { id, .. } => {
                self.snap.n_suggested += 1;
                self.suggested_at.insert(*id, at_s);
            }
            TrialEvent::Started {
                id, at_s: start, ..
            } => {
                self.snap.n_started += 1;
                if let Some(sug) = self.suggested_at.remove(id) {
                    self.snap.queue_wait_s.record(start - sug);
                }
            }
            TrialEvent::Finished { .. } => self.snap.n_finished += 1,
            TrialEvent::Crashed { .. } => self.snap.n_crashed += 1,
            TrialEvent::Aborted { .. } => self.snap.n_aborted += 1,
            TrialEvent::FailedTransient { .. } => self.snap.n_transient += 1,
            TrialEvent::Retried { .. } => self.snap.n_retries += 1,
            TrialEvent::Quarantined { .. } => self.snap.n_quarantines += 1,
            TrialEvent::Released { .. } => self.snap.n_releases += 1,
            TrialEvent::Promoted { .. } => self.snap.n_promotions += 1,
        }
    }

    fn on_opt_event(&mut self, _at_s: f64, event: &OptEvent) {
        match event {
            OptEvent::SuggestEnd {
                wall_ns,
                dispatched,
                ..
            } => {
                self.snap.tuner_wall_ns += wall_ns;
                if *dispatched {
                    self.snap.suggest_ns.record(*wall_ns as f64);
                } else {
                    self.snap.n_wait_polls += 1;
                }
            }
            OptEvent::ObserveEnd { wall_ns, .. } => {
                self.snap.tuner_wall_ns += wall_ns;
                self.snap.observe_ns.record(*wall_ns as f64);
            }
            OptEvent::SurrogateRefit { n_refits, .. } => {
                let n = *n_refits as u64;
                self.snap.n_refits += n.saturating_sub(self.last_refits);
                self.last_refits = n;
            }
            OptEvent::ModelUpdate { n_updates, .. } => {
                let n = *n_updates as u64;
                self.snap.n_model_updates += n.saturating_sub(self.last_updates);
                self.last_updates = n;
            }
            OptEvent::SuggestBegin { .. } | OptEvent::ObserveBegin { .. } => {}
        }
    }

    fn on_outcome(&mut self, at_s: f64, outcome: &TrialOutcome) {
        self.snap.wall_clock_s = self.snap.wall_clock_s.max(at_s);
        self.snap.trial_latency_s.record(outcome.elapsed_s);
        if let Some(m) = outcome.machine_id {
            *self.snap.machine_busy_s.entry(m).or_insert(0.0) += outcome.elapsed_s;
        }
    }

    fn on_campaign_end(&mut self, at_s: f64) {
        self.snap.wall_clock_s = self.snap.wall_clock_s.max(at_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_min_max_exact() {
        let mut h = LogHistogram::default();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 3.75).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 8.0);
    }

    #[test]
    fn histogram_quantiles_bucket_resolution() {
        let mut h = LogHistogram::default();
        for _ in 0..99 {
            h.record(1.0);
        }
        h.record(1000.0);
        // p50 lands in the 1.0 bucket, p100 in the tail bucket.
        assert!(h.quantile(0.5) < 2.0);
        assert!(h.quantile(1.0) > 500.0);
        // Quantiles never escape the observed range.
        assert!(h.quantile(0.0) >= 1.0);
        assert!(h.quantile(1.0) <= 1000.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 100.0);
        assert!((a.sum() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_handles_zero_and_nonfinite() {
        let mut h = LogHistogram::default();
        h.record(0.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 2);
        // Both land in the bottom bucket without panicking.
        assert!(h.quantile(0.5).is_finite() || h.quantile(0.5).is_infinite());
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = LogHistogram::default();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "empty histogram quantile({q})");
        }
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        let mut h = LogHistogram::default();
        h.record(7.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 7.0, "single-sample quantile({q})");
        }
    }

    #[test]
    fn utilization_is_zero_when_wall_clock_is_zero() {
        // A campaign observed only under NullTimer and zero virtual time
        // (e.g. snapshot taken before any event) must report 0 utilization,
        // never NaN from busy/0.
        let mut snap = MetricsSnapshot::default();
        snap.machine_busy_s.insert(0, 5.0);
        assert_eq!(snap.wall_clock_s, 0.0);
        assert_eq!(snap.machine_utilization(0), 0.0);
        assert_eq!(snap.fleet_utilization(), 0.0);
        assert!(!format!("{snap}").contains("NaN"));
    }

    #[test]
    fn model_update_events_count_deltas() {
        let mut c = MetricsCollector::new();
        c.on_opt_event(
            0.0,
            &OptEvent::ModelUpdate {
                id: 0,
                n_updates: 1,
            },
        );
        c.on_opt_event(
            0.0,
            &OptEvent::ModelUpdate {
                id: 1,
                n_updates: 4,
            },
        );
        // Replays of the same cumulative counter add nothing.
        c.on_opt_event(
            0.0,
            &OptEvent::ModelUpdate {
                id: 2,
                n_updates: 4,
            },
        );
        assert_eq!(c.snapshot().n_model_updates, 4);
        let other = MetricsSnapshot {
            n_model_updates: 3,
            ..Default::default()
        };
        let mut snap = c.snapshot();
        snap.merge(&other);
        assert_eq!(snap.n_model_updates, 7);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let mut a = MetricsSnapshot {
            n_suggested: 3,
            wall_clock_s: 10.0,
            ..Default::default()
        };
        a.machine_busy_s.insert(0, 5.0);
        let mut b = MetricsSnapshot {
            n_suggested: 2,
            wall_clock_s: 10.0,
            ..Default::default()
        };
        b.machine_busy_s.insert(0, 15.0);
        a.merge(&b);
        assert_eq!(a.n_suggested, 5);
        assert_eq!(a.wall_clock_s, 20.0);
        assert!((a.machine_utilization(0) - 1.0).abs() < 1e-12);
    }
}

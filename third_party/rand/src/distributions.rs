//! The [`Distribution`] trait and the [`Standard`] distribution.

use crate::RngCore;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: uniform `[0,1)` for floats,
/// uniform over all values for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

//! Shared helpers for runnable examples.

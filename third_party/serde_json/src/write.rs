//! JSON rendering of a `Content` tree (compact and pretty).

use serde::__private::Content;

use crate::Error;

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write(
    c: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                // Real serde_json refuses non-finite floats too.
                return Err(Error::new(format!("non-finite float {v} in JSON")));
            }
            // `{:?}` on f64 is the shortest round-trip form; ensure a
            // decimal point or exponent so it re-parses as a float.
            let s = format!("{v:?}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write(item, out, indent, depth + 1)?;
            }
            newline(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write(v, out, indent, depth + 1)?;
            }
            newline(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

//! Pluggable scheduling policies: how many trials run at once and where
//! the synchronization barriers sit.

use serde::{Deserialize, Serialize};

/// How the executor admits and completes trials (tutorial slide 57).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// One trial at a time, the classic sequential loop (slide 33).
    Sequential,
    /// `k` trials per synchronous batch: the batch starts together and the
    /// next batch waits for its slowest member (wall clock = per-batch max).
    SyncBatch {
        /// Batch size.
        k: usize,
    },
    /// Up to `k` trials in flight; the moment one finishes its slot is
    /// refilled — no barrier, so heterogeneous durations don't idle slots.
    AsyncSlots {
        /// Slot-pool size.
        k: usize,
    },
    /// Slot-pool execution for rung-structured sources (successive
    /// halving / Hyperband): the source itself enforces the rung barrier
    /// by yielding `Wait` until every rung member reports.
    Rungs {
        /// Slot-pool size within a rung.
        k: usize,
    },
}

impl SchedulePolicy {
    /// Maximum number of trials in flight.
    pub fn capacity(&self) -> usize {
        match self {
            SchedulePolicy::Sequential => 1,
            SchedulePolicy::SyncBatch { k }
            | SchedulePolicy::AsyncSlots { k }
            | SchedulePolicy::Rungs { k } => (*k).max(1),
        }
    }

    /// Whether completions wait for the whole in-flight wave (batch
    /// barrier) or drain one finisher at a time.
    pub fn barrier(&self) -> bool {
        matches!(self, SchedulePolicy::SyncBatch { .. })
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            SchedulePolicy::Sequential => "sequential".into(),
            SchedulePolicy::SyncBatch { k } => format!("sync-batch({k})"),
            SchedulePolicy::AsyncSlots { k } => format!("async-slots({k})"),
            SchedulePolicy::Rungs { k } => format!("rungs({k})"),
        }
    }
}

//! Multi-armed bandits for discrete knob subspaces (tutorial slide 51).
//!
//! When a knob is categorical (`innodb_flush_method ∈ {fsync, O_DIRECT,
//! ...}`) a bandit over the choices sidesteps the need for a continuous
//! surrogate entirely. These bandits also power the OPPerTune-style hybrid
//! tuner in `autotune-rl`.
//!
//! All bandits **minimize** observed cost, matching the workspace
//! convention (classic bandit literature maximizes reward; we negate).

use rand::Rng;

/// Strategy used by [`Bandit::select`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditPolicy {
    /// Explore uniformly with probability ε, otherwise exploit.
    EpsilonGreedy {
        /// Exploration probability.
        epsilon: f64,
    },
    /// UCB1: optimism in the face of uncertainty, `c` scales the bonus.
    Ucb {
        /// Exploration coefficient (√2 is the classic choice).
        c: f64,
    },
    /// Thompson sampling with a Normal posterior per arm.
    Thompson,
}

/// Per-arm sufficient statistics.
#[derive(Debug, Clone, Default)]
struct Arm {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Arm {
    fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn variance(&self) -> f64 {
        if self.n < 2 {
            1.0 // weakly-informative prior spread
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
}

/// A stochastic multi-armed bandit over `k` discrete arms, minimizing cost.
#[derive(Debug, Clone)]
pub struct Bandit {
    arms: Vec<Arm>,
    policy: BanditPolicy,
    total_pulls: u64,
}

impl Bandit {
    /// Creates a bandit with `k` arms.
    pub fn new(k: usize, policy: BanditPolicy) -> Self {
        assert!(k >= 1, "bandit needs at least one arm");
        Bandit {
            arms: vec![Arm::default(); k],
            policy,
            total_pulls: 0,
        }
    }

    /// Number of arms.
    pub fn n_arms(&self) -> usize {
        self.arms.len()
    }

    /// Total observations across all arms.
    pub fn total_pulls(&self) -> u64 {
        self.total_pulls
    }

    /// Empirical mean cost of an arm (0.0 when unpulled).
    pub fn arm_mean(&self, arm: usize) -> f64 {
        self.arms[arm].mean
    }

    /// Pull count of an arm.
    pub fn arm_pulls(&self, arm: usize) -> u64 {
        self.arms[arm].n
    }

    /// Selects the next arm to pull.
    pub fn select(&self, rng: &mut (impl Rng + ?Sized)) -> usize {
        // Any never-pulled arm is tried first (uniform among them).
        let unpulled: Vec<usize> = (0..self.arms.len())
            .filter(|&i| self.arms[i].n == 0)
            .collect();
        if !unpulled.is_empty() {
            return unpulled[rng.gen_range(0..unpulled.len())];
        }
        match self.policy {
            BanditPolicy::EpsilonGreedy { epsilon } => {
                if rng.gen::<f64>() < epsilon {
                    rng.gen_range(0..self.arms.len())
                } else {
                    self.greedy_arm()
                }
            }
            BanditPolicy::Ucb { c } => {
                let t = self.total_pulls as f64;
                (0..self.arms.len())
                    .min_by(|&a, &b| {
                        let ia = self.lcb_index(a, c, t);
                        let ib = self.lcb_index(b, c, t);
                        ia.total_cmp(&ib)
                    })
                    .expect("at least one arm") // lint: allow(D5) arms asserted non-empty at construction
            }
            BanditPolicy::Thompson => (0..self.arms.len())
                .map(|i| {
                    let a = &self.arms[i];
                    let sd = (a.variance() / a.n.max(1) as f64).sqrt();
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (i, a.mean + sd * z)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| i)
                .expect("at least one arm"), // lint: allow(D5) arms asserted non-empty at construction
        }
    }

    /// Arm with the lowest empirical mean.
    pub fn greedy_arm(&self) -> usize {
        (0..self.arms.len())
            .min_by(|&a, &b| self.arms[a].mean.total_cmp(&self.arms[b].mean))
            .expect("at least one arm") // lint: allow(D5) arms asserted non-empty at construction
    }

    /// Lower-confidence-bound index for minimization (the mirror of UCB1).
    fn lcb_index(&self, arm: usize, c: f64, t: f64) -> f64 {
        let a = &self.arms[arm];
        a.mean - c * (t.max(1.0).ln() / a.n as f64).sqrt()
    }

    /// Records the observed cost of pulling `arm`. Non-finite costs are
    /// ignored (a crashed trial carries no usable magnitude — callers
    /// penalize crashes with a large *finite* cost instead, so the running
    /// means stay well-defined).
    pub fn update(&mut self, arm: usize, cost: f64) {
        assert!(arm < self.arms.len(), "arm index out of range");
        if !cost.is_finite() {
            return;
        }
        self.arms[arm].push(cost);
        self.total_pulls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Simulates `rounds` pulls against arms with the given true mean costs
    /// plus unit-uniform noise; returns pull counts.
    fn simulate(policy: BanditPolicy, means: &[f64], rounds: usize, seed: u64) -> Vec<u64> {
        let mut bandit = Bandit::new(means.len(), policy);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..rounds {
            let arm = bandit.select(&mut rng);
            let cost = means[arm] + rng.gen::<f64>();
            bandit.update(arm, cost);
        }
        (0..means.len()).map(|i| bandit.arm_pulls(i)).collect()
    }

    #[test]
    fn ucb_concentrates_on_best_arm() {
        let pulls = simulate(BanditPolicy::Ucb { c: 1.4 }, &[3.0, 1.0, 5.0], 600, 1);
        assert!(
            pulls[1] > 400,
            "UCB pulled the best arm only {} of 600 times: {pulls:?}",
            pulls[1]
        );
    }

    #[test]
    fn epsilon_greedy_concentrates_but_keeps_exploring() {
        let pulls = simulate(
            BanditPolicy::EpsilonGreedy { epsilon: 0.1 },
            &[2.0, 0.5, 4.0],
            600,
            2,
        );
        assert!(pulls[1] > 400, "pulls {pulls:?}");
        // ε-exploration keeps some probes on other arms.
        assert!(pulls[0] >= 10 && pulls[2] >= 10, "pulls {pulls:?}");
    }

    #[test]
    fn thompson_concentrates_on_best_arm() {
        let pulls = simulate(BanditPolicy::Thompson, &[3.0, 1.0, 5.0], 600, 3);
        assert!(pulls[1] > 350, "Thompson pulls {pulls:?}");
    }

    #[test]
    fn unpulled_arms_tried_first() {
        let mut bandit = Bandit::new(4, BanditPolicy::Ucb { c: 1.0 });
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..4 {
            let arm = bandit.select(&mut rng);
            assert!(seen.insert(arm), "arm {arm} selected twice before coverage");
            bandit.update(arm, 1.0);
        }
    }

    #[test]
    fn nan_update_ignored() {
        let mut bandit = Bandit::new(2, BanditPolicy::Thompson);
        bandit.update(0, f64::NAN);
        assert_eq!(bandit.arm_pulls(0), 0);
        assert_eq!(bandit.total_pulls(), 0);
    }

    #[test]
    fn greedy_arm_is_lowest_mean() {
        let mut bandit = Bandit::new(3, BanditPolicy::Thompson);
        bandit.update(0, 5.0);
        bandit.update(1, 2.0);
        bandit.update(2, 8.0);
        assert_eq!(bandit.greedy_arm(), 1);
        assert_eq!(bandit.arm_mean(1), 2.0);
    }

    #[test]
    fn regret_sublinear_for_ucb() {
        // Cumulative regret after 2T rounds should be < 2x regret after T
        // (i.e. the per-round regret decays).
        let means = [1.0, 0.0];
        let regret = |rounds: usize, seed: u64| {
            let pulls = simulate(BanditPolicy::Ucb { c: 1.4 }, &means, rounds, seed);
            pulls[0] as f64 * (means[0] - means[1])
        };
        let r1: f64 = (0..5).map(|s| regret(300, 100 + s)).sum();
        let r2: f64 = (0..5).map(|s| regret(600, 200 + s)).sum();
        assert!(r2 < 1.8 * r1, "regret not sublinear: T={r1}, 2T={r2}");
    }
}

//! The online tuning agent (tutorial slides 75-84).
//!
//! Production loop: at each step the agent sees the live workload's
//! context, picks a configuration from a discrete candidate menu via a
//! context-scoped hybrid bandit (OPPerTune style), runs it through a
//! safety guardrail (slide 84), observes the cost, and feeds a workload
//! shift detector that resets exploration when the traffic changes.

use crate::executor::{
    CrashPenaltyMw, Executor, SchedulePolicy, SourceStep, TrialOutcome, TrialRequest, TrialSource,
};
use crate::telemetry::Subscriber;
use crate::{Target, TrialStorage};
use autotune_optimizer::bandit::BanditPolicy;
use autotune_rl::{ContextKey, HybridBandit, SafeTuner, SafeTunerConfig};
use autotune_sim::WorkloadSchedule;
use autotune_space::Config;
use autotune_wid::{Fingerprint, ShiftDetector, ShiftDetectorConfig};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Online tuner settings.
#[derive(Debug, Clone)]
pub struct OnlineTunerConfig {
    /// Bandit policy over the candidate menu.
    pub policy: BanditPolicy,
    /// Safety guardrail settings (None disables safety).
    pub safety: Option<SafeTunerConfig>,
    /// Shift-detector settings (None disables detection).
    pub shift: Option<ShiftDetectorConfig>,
}

impl Default for OnlineTunerConfig {
    fn default() -> Self {
        OnlineTunerConfig {
            // Thompson sampling is scale-free: it works whether costs are
            // microseconds or hours, where a UCB exploration constant
            // would need per-system calibration.
            policy: BanditPolicy::Thompson,
            safety: None,
            shift: Some(ShiftDetectorConfig::default()),
        }
    }
}

/// One step's record.
#[derive(Debug, Clone)]
pub struct OnlineStep {
    /// Time step.
    pub t: usize,
    /// Candidate index served.
    pub arm: usize,
    /// Observed cost.
    pub cost: f64,
    /// Whether a workload shift was declared at this step.
    pub shift_detected: bool,
    /// Whether the guardrail blocked/reverted at this step.
    pub guarded: bool,
}

/// A context-aware, guardrailed online tuner over a fixed candidate menu.
pub struct OnlineTuner {
    candidates: Vec<Config>,
    bandit: HybridBandit,
    safety: Option<SafeTuner>,
    detector: Option<ShiftDetector>,
    /// Current context label (bumped on detected shifts).
    regime: usize,
    history: Vec<OnlineStep>,
}

impl OnlineTuner {
    /// Creates a tuner over a candidate configuration menu.
    pub fn new(candidates: Vec<Config>, config: OnlineTunerConfig) -> Self {
        assert!(candidates.len() >= 2, "menu needs at least two candidates");
        OnlineTuner {
            bandit: HybridBandit::new(candidates.len(), config.policy),
            candidates,
            safety: config.safety.map(SafeTuner::new),
            detector: config.shift.map(ShiftDetector::new),
            regime: 0,
            history: Vec::new(),
        }
    }

    /// The candidate menu.
    pub fn candidates(&self) -> &[Config] {
        &self.candidates
    }

    /// Step records so far.
    pub fn history(&self) -> &[OnlineStep] {
        &self.history
    }

    /// Steps at which shifts were detected.
    pub fn detected_shifts(&self) -> Vec<usize> {
        self.history
            .iter()
            .filter(|s| s.shift_detected)
            .map(|s| s.t)
            .collect()
    }

    /// Total cost accumulated (the regret currency).
    pub fn cumulative_cost(&self) -> f64 {
        self.history
            .iter()
            .map(|s| if s.cost.is_finite() { s.cost } else { 0.0 })
            .sum()
    }

    /// Runs the agent against a target whose workload follows `schedule`
    /// for `steps` steps. Returns the per-step records.
    ///
    /// Internally this drives the shared [`Executor`] with an
    /// `OnlineSource` wrapping the bandit/guardrail/detector state; a
    /// [`CrashPenaltyMw`] turns crashed intervals into a large finite
    /// learning penalty so arm statistics stay well-defined while the
    /// recorded cost keeps its honest `NaN`.
    pub fn run(
        &mut self,
        target: &Target,
        schedule: &WorkloadSchedule,
        steps: usize,
        seed: u64,
    ) -> &[OnlineStep] {
        self.run_with_subscribers(target, schedule, steps, seed, &mut [])
    }

    /// [`OnlineTuner::run`] with telemetry subscribers attached to the
    /// underlying executor (each step is one trial on the virtual clock,
    /// so progress lines and spans describe production intervals).
    pub fn run_with_subscribers(
        &mut self,
        target: &Target,
        schedule: &WorkloadSchedule,
        steps: usize,
        seed: u64,
        subscribers: &mut [&mut dyn Subscriber],
    ) -> &[OnlineStep] {
        let mut source = OnlineSource {
            candidates: &self.candidates,
            bandit: &mut self.bandit,
            safety: &mut self.safety,
            detector: &mut self.detector,
            regime: &mut self.regime,
            history: &mut self.history,
            schedule,
            steps,
            t: 0,
            pending: Vec::new(),
            next_id: 0,
        };
        let mut storage = TrialStorage::new();
        let mut exec = Executor::new(target, SchedulePolicy::Sequential)
            .with_middleware(Box::new(CrashPenaltyMw::new(1e9)));
        for sub in subscribers.iter_mut() {
            exec = exec.with_subscriber(Box::new(&mut **sub));
        }
        exec.run(&mut source, &mut storage, seed);
        &self.history
    }
}

/// Dispatch-time bookkeeping an [`OnlineSource`] needs again at report
/// time: which arm was served, under which context, and how the guardrail
/// ruled.
struct PendingServe {
    id: u64,
    t: usize,
    arm: usize,
    context: ContextKey,
    guarded: bool,
    is_candidate: bool,
}

/// Adapts the online agent's select/guard/learn cycle to the executor's
/// [`TrialSource`] contract: `next` picks an arm for the current interval
/// (consulting the safety guardrail), `report` feeds the guardrail, the
/// bandit, and the shift detector with the finalized outcome.
struct OnlineSource<'a> {
    candidates: &'a [Config],
    bandit: &'a mut HybridBandit,
    safety: &'a mut Option<SafeTuner>,
    detector: &'a mut Option<ShiftDetector>,
    regime: &'a mut usize,
    history: &'a mut Vec<OnlineStep>,
    schedule: &'a WorkloadSchedule,
    steps: usize,
    t: usize,
    pending: Vec<PendingServe>,
    next_id: u64,
}

impl TrialSource for OnlineSource<'_> {
    fn next(&mut self, rng: &mut dyn RngCore) -> SourceStep {
        if self.t >= self.steps {
            return SourceStep::Exhausted;
        }
        let t = self.t;
        self.t += 1;
        let workload = self.schedule.at(t);
        let context = ContextKey::new([format!("regime{}", *self.regime)]);

        // Select; consult the guardrail. The bandit's greedy arm plays
        // the incumbent role: its measurements feed the baseline, and
        // exploratory arms must be admitted (one at a time, never
        // blacklisted) before they are served.
        let greedy = self.bandit.greedy(&context);
        let mut arm = self.bandit.select(&context, rng);
        let mut guarded = false;
        let mut is_candidate = false;
        if let Some(safety) = self.safety.as_mut() {
            if arm != greedy {
                let key = self.candidates[arm].render();
                if safety.admit(&key) {
                    is_candidate = true;
                } else {
                    arm = greedy;
                    guarded = true;
                }
            }
        }

        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(PendingServe {
            id,
            t,
            arm,
            context,
            guarded,
            is_candidate,
        });
        SourceStep::Dispatch(TrialRequest {
            config: self.candidates[arm].clone(),
            fidelity: 1.0,
            workload: Some(workload.clone()),
            machine_id: None,
        })
    }

    fn report(&mut self, outcome: &TrialOutcome) {
        // Dispatch order == trial-id order, so the outcome's id picks the
        // matching pending record even if a policy reports out of order.
        let pos = self
            .pending
            .iter()
            .position(|p| p.id == outcome.id)
            .expect("every outcome matches a pending serve"); // lint: allow(D5) outcomes only come from pending dispatches
        let p = self.pending.swap_remove(pos);
        let cost = outcome.cost;
        let mut guarded = p.guarded;

        // Feed the guardrail.
        if let Some(safety) = self.safety.as_mut() {
            if p.is_candidate {
                use autotune_rl::SafeDecision;
                let key = self.candidates[p.arm].render();
                match safety.observe_candidate(&key, cost) {
                    SafeDecision::Reverted | SafeDecision::Blacklisted => guarded = true,
                    _ => {}
                }
            } else if cost.is_finite() {
                safety.observe_baseline(cost);
            }
        }

        // Learn. The crash-penalty middleware already rewrote
        // `learn_cost` for non-finite measurements.
        self.bandit.update(&p.context, p.arm, outcome.learn_cost);

        // Detect workload shifts from the trial's telemetry.
        let mut shift = false;
        if let Some(det) = self.detector.as_mut() {
            if !outcome.telemetry.is_empty() {
                let fp = Fingerprint::from_telemetry(&outcome.telemetry);
                shift = det.observe(fp.features());
                if shift {
                    // New regime: scope future decisions to a fresh
                    // context so the bandit relearns.
                    *self.regime += 1;
                }
            }
        }

        self.history.push(OnlineStep {
            t: p.t,
            arm: p.arm,
            cost,
            shift_detected: shift,
            guarded,
        });
    }
}

/// Contextual online tuner over *continuous* workload features
/// (OnlineTune-flavoured, slides 82-83): instead of scoping a bandit by
/// discrete regime, a LinUCB policy reads the live telemetry fingerprint
/// and scores every candidate against it — no shift detector needed,
/// generalization across unseen mixes for free.
///
/// Reward fed to LinUCB is negative log-cost, so the linear-payoff
/// assumption only has to hold on ratios, not absolute latencies.
pub struct ContextualOnlineTuner {
    candidates: Vec<Config>,
    policy: autotune_rl::LinUcb,
    history: Vec<OnlineStep>,
    /// Rolling context: features of the previous interval's telemetry
    /// (what the agent actually knows when choosing).
    last_context: Option<Vec<f64>>,
    context_dim: usize,
}

impl ContextualOnlineTuner {
    /// Creates a tuner with `alpha` as LinUCB's exploration weight.
    pub fn new(candidates: Vec<Config>, context_dim: usize, alpha: f64) -> Self {
        assert!(candidates.len() >= 2, "menu needs at least two candidates");
        ContextualOnlineTuner {
            policy: autotune_rl::LinUcb::new(candidates.len(), context_dim + 1, alpha, 1.0),
            candidates,
            history: Vec::new(),
            last_context: None,
            context_dim,
        }
    }

    /// Step records so far.
    pub fn history(&self) -> &[OnlineStep] {
        &self.history
    }

    /// Total accumulated cost.
    pub fn cumulative_cost(&self) -> f64 {
        self.history
            .iter()
            .map(|s| if s.cost.is_finite() { s.cost } else { 0.0 })
            .sum()
    }

    /// Runs the agent against `target` following `schedule`.
    pub fn run(
        &mut self,
        target: &Target,
        schedule: &WorkloadSchedule,
        steps: usize,
        seed: u64,
    ) -> &[OnlineStep] {
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..steps {
            let workload = schedule.at(t);
            // Context: last interval's features plus a bias term. First
            // step has no telemetry yet — zeros plus bias.
            let mut ctx = self.last_context.clone().unwrap_or_default();
            ctx.resize(self.context_dim, 0.0);
            ctx.push(1.0);
            let arm = self
                .policy
                .select(&ctx)
                .expect("context built to dimension"); // lint: allow(D5) context resized to the policy dimension above
            let eval = target.evaluate_at(&self.candidates[arm], Some(workload), &mut rng);
            let cost = eval.cost;
            let reward = if cost.is_finite() && cost > 0.0 {
                -cost.ln()
            } else {
                -20.0
            };
            self.policy
                .update(arm, &ctx, reward)
                .expect("context built to dimension"); // lint: allow(D5) context resized to the policy dimension above
            if !eval.result.telemetry.is_empty() {
                let fp = Fingerprint::from_telemetry(&eval.result.telemetry);
                let mut feats = fp.features().to_vec();
                feats.truncate(self.context_dim);
                self.last_context = Some(feats);
            }
            self.history.push(OnlineStep {
                t,
                arm,
                cost,
                shift_detected: false,
                guarded: false,
            });
        }
        &self.history
    }
}

/// Convenience: evaluate a static configuration over the same schedule —
/// the "no online tuning" baseline.
pub fn static_config_cost(
    target: &Target,
    config: &Config,
    schedule: &WorkloadSchedule,
    steps: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for t in 0..steps {
        let w = schedule.at(t);
        let e = target.evaluate_at(config, Some(w), &mut rng);
        if e.cost.is_finite() {
            total += e.cost;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use autotune_sim::{DbmsSim, Environment, Workload};

    /// Target + schedule where the best config flips mid-stream: a
    /// read-only phase (query cache on wins) then a write-heavy phase
    /// (query cache off wins).
    fn shifting_setup() -> (Target, WorkloadSchedule, Vec<Config>) {
        let target = Target::simulated(
            Box::new(DbmsSim::new()),
            Workload::ycsb_c(2_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyAvg,
        );
        let schedule = WorkloadSchedule::new(vec![
            (60, Workload::ycsb_c(2_000.0)),
            (60, Workload::ycsb_a(2_000.0)),
        ]);
        let base = target.space().default_config().with("buffer_pool_gb", 8.0);
        let candidates = vec![
            base.clone().with("query_cache", true),
            base.clone().with("query_cache", false),
        ];
        (target, schedule, candidates)
    }

    #[test]
    fn adapts_across_workload_shift() {
        let (target, schedule, candidates) = shifting_setup();
        let mut tuner = OnlineTuner::new(candidates, OnlineTunerConfig::default());
        tuner.run(&target, &schedule, 120, 1);
        // Late in phase 1 the agent should mostly serve arm 0 (cache on);
        // late in phase 2, arm 1.
        let served = |range: std::ops::Range<usize>, arm: usize| {
            tuner.history()[range]
                .iter()
                .filter(|s| s.arm == arm)
                .count()
        };
        assert!(
            served(40..60, 0) > 13,
            "phase 1 should settle on query_cache=on: {:?}",
            served(40..60, 0)
        );
        assert!(
            served(100..120, 1) > 13,
            "phase 2 should settle on query_cache=off: {}",
            served(100..120, 1)
        );
    }

    #[test]
    fn shift_is_detected_near_the_boundary() {
        let (target, schedule, candidates) = shifting_setup();
        let mut tuner = OnlineTuner::new(candidates, OnlineTunerConfig::default());
        tuner.run(&target, &schedule, 120, 2);
        let shifts = tuner.detected_shifts();
        assert!(
            shifts.iter().any(|&t| (55..=75).contains(&t)),
            "no shift detected near t=60: {shifts:?}"
        );
    }

    #[test]
    fn beats_each_static_config_on_shifting_workload() {
        let (target, schedule, candidates) = shifting_setup();
        let mut tuner = OnlineTuner::new(candidates.clone(), OnlineTunerConfig::default());
        tuner.run(&target, &schedule, 120, 4);
        let online = tuner.cumulative_cost();
        let static_a = static_config_cost(&target, &candidates[0], &schedule, 120, 4);
        let static_b = static_config_cost(&target, &candidates[1], &schedule, 120, 4);
        let best_static = static_a.min(static_b);
        assert!(
            online < best_static * 1.1,
            "online {online} should be competitive with best static {best_static}"
        );
    }

    #[test]
    fn guardrail_limits_crash_exposure() {
        // Menu contains a config that crashes (OOM). With safety on, it is
        // blacklisted after few exposures.
        let target = Target::simulated(
            Box::new(DbmsSim::new()),
            Workload::tpcc(2_000.0),
            Environment::medium(), // 16 GB
            Objective::MinimizeLatencyAvg,
        );
        let schedule = WorkloadSchedule::new(vec![(100, Workload::tpcc(2_000.0))]);
        let good = target.space().default_config().with("buffer_pool_gb", 8.0);
        let crashy = target.space().default_config().with("buffer_pool_gb", 15.9);
        let mut tuner = OnlineTuner::new(
            vec![good, crashy],
            OnlineTunerConfig {
                safety: Some(SafeTunerConfig::default()),
                ..Default::default()
            },
        );
        tuner.run(&target, &schedule, 100, 4);
        let crashes = tuner.history().iter().filter(|s| s.cost.is_nan()).count();
        assert!(
            crashes <= 4,
            "guardrail should blacklist the crashing config quickly, saw {crashes} crashes"
        );
    }

    #[test]
    #[should_panic(expected = "menu")]
    fn tiny_menu_rejected() {
        let _ = OnlineTuner::new(vec![Config::new()], OnlineTunerConfig::default());
    }

    #[test]
    fn contextual_tuner_learns_feature_conditional_policy() {
        // Same shifting setup as the hybrid-bandit test, but the agent
        // must key off continuous telemetry features (read_share flips
        // between phases) instead of a detected regime id.
        let (target, schedule, candidates) = shifting_setup();
        let mut tuner = ContextualOnlineTuner::new(candidates, 14, 0.4);
        tuner.run(&target, &schedule, 120, 7);
        let served = |range: std::ops::Range<usize>, arm: usize| {
            tuner.history()[range]
                .iter()
                .filter(|s| s.arm == arm)
                .count()
        };
        assert!(
            served(40..60, 0) > 12,
            "phase 1 should settle on query_cache=on: {}",
            served(40..60, 0)
        );
        assert!(
            served(100..120, 1) > 12,
            "phase 2 should settle on query_cache=off: {}",
            served(100..120, 1)
        );
    }

    #[test]
    fn contextual_tuner_competitive_with_best_static() {
        let (target, schedule, candidates) = shifting_setup();
        let mut tuner = ContextualOnlineTuner::new(candidates.clone(), 14, 0.4);
        tuner.run(&target, &schedule, 120, 8);
        let online = tuner.cumulative_cost();
        let best_static = candidates
            .iter()
            .map(|c| static_config_cost(&target, c, &schedule, 120, 8))
            .fold(f64::INFINITY, f64::min);
        assert!(
            online < best_static * 1.15,
            "contextual online {online} vs best static {best_static}"
        );
    }
}

//! Experiment report rendering.

/// One table row: cells as strings (numbers pre-formatted by the
/// experiment so units stay attached).
pub type Row = Vec<String>;

/// The output of one experiment.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. "E15".
    pub id: &'static str,
    /// Human title (slide reference included).
    pub title: &'static str,
    /// Column headers.
    pub headers: Vec<&'static str>,
    /// Table body.
    pub rows: Vec<Row>,
    /// What the tutorial/paper reports (the shape to reproduce).
    pub paper_claim: &'static str,
    /// Our one-line measured summary.
    pub measured: String,
    /// Whether the measured shape matches the paper's.
    pub shape_holds: bool,
}

impl Report {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        // Column widths.
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let headers: Vec<String> = self.headers.iter().map(|h| h.to_string()).collect();
        out.push_str(&fmt_row(&headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&format!("paper:    {}\n", self.paper_claim));
        out.push_str(&format!("measured: {}\n", self.measured));
        out.push_str(&format!(
            "shape:    {}\n",
            if self.shape_holds {
                "HOLDS"
            } else {
                "DOES NOT HOLD"
            }
        ));
        out
    }
}

/// Formats a float with the given precision (helper used by experiments).
pub fn f(v: f64, digits: usize) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else {
        format!("{v:.digits$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_aligned_table() {
        let r = Report {
            id: "E0",
            title: "smoke",
            headers: vec!["method", "value"],
            rows: vec![
                vec!["grid".into(), "1.0".into()],
                vec!["random_search".into(), "2.0".into()],
            ],
            paper_claim: "grid < random",
            measured: "grid 1.0 < random 2.0".into(),
            shape_holds: true,
        };
        let s = r.render();
        assert!(s.contains("E0"));
        assert!(s.contains("HOLDS"));
        assert!(s.contains("random_search"));
    }

    #[test]
    fn f_formats_nan() {
        assert_eq!(f(f64::NAN, 2), "n/a");
        assert_eq!(f(1.23456, 2), "1.23");
    }
}

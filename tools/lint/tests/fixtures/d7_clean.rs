//! D7 clean fixture: one global order (clusters before shards), guards
//! dropped before the next acquisition, and shared read re-entry.

pub fn consistent_read(shards: &Shards, clusters: &Clusters) {
    let c = clusters.pread();
    let s = shards.pread();
    merge(s, c);
}

pub fn consistent_write(shards: &Shards, clusters: &Clusters) {
    let c = clusters.pwrite();
    let s = shards.pwrite();
    merge(s, c);
}

pub fn sequential(shards: &Shards, clusters: &Clusters) {
    {
        let c = clusters.pwrite();
        touch(c);
    }
    let s = shards.pwrite();
    touch(s);
}

pub fn explicit_drop(shards: &Shards, clusters: &Clusters) {
    let s = shards.pwrite();
    touch(&s);
    drop(s);
    let c = clusters.pwrite();
    touch(&c);
}

//! E19 (slide 69): early abort — for elapsed-time benchmarks, kill trials
//! already slower than `1.3x` the incumbent and bank the saved time,
//! without changing which configuration wins.

use crate::report::{f, Report};
use autotune::{Objective, SessionConfig, Target, TuningSession};
use autotune_optimizer::RandomSearch;
use autotune_sim::{Environment, SparkSim, Workload};

fn spark_target() -> Target {
    Target::simulated(
        Box::new(SparkSim::new()),
        Workload::tpch(20.0),
        Environment::large(),
        Objective::MinimizeElapsed,
    )
}

/// Runs the experiment.
pub fn run() -> Report {
    let budget = 40;
    let run = |abort: Option<f64>, seed: u64| {
        let target = spark_target();
        let opt = RandomSearch::new(target.space().clone());
        let mut session = TuningSession::new(
            target,
            Box::new(opt),
            SessionConfig {
                early_abort_ratio: abort,
                ..Default::default()
            },
        );
        session.run(budget, seed).expect("tuning campaign succeeds")
    };
    let plain = run(None, 9);
    let abort = run(Some(1.3), 9);
    let saved_pct = 100.0 * (1.0 - abort.total_elapsed_s / plain.total_elapsed_s);

    let rows = vec![
        vec![
            "no abort".into(),
            format!("{} s", f(plain.best_cost, 1)),
            format!("{:.0} s", plain.total_elapsed_s),
            "0".into(),
        ],
        vec![
            "abort @1.3x".into(),
            format!("{} s", f(abort.best_cost, 1)),
            format!("{:.0} s", abort.total_elapsed_s),
            abort.n_aborted.to_string(),
        ],
        vec![
            "time saved".into(),
            format!("{saved_pct:.0}%"),
            format!("{:.0} s", abort.saved_s),
            String::new(),
        ],
    ];
    let shape_holds = saved_pct >= 20.0 && (abort.best_cost - plain.best_cost).abs() < 1e-9;
    Report {
        id: "E19",
        title: "Early abort of hopeless trials (slide 69)",
        headers: vec!["policy", "best runtime", "bench time", "aborted"],
        rows,
        paper_claim: "report bad scores sooner on elapsed-time benchmarks; same winner, less time",
        measured: format!(
            "saved {saved_pct:.0}% of benchmark time ({} aborted), identical winner",
            abort.n_aborted
        ),
        shape_holds,
    }
}

//! E12 (slide 59): multi-task optimization — reuse the data collected
//! while optimizing latency when optimizing throughput. A multi-task GP
//! with a shared kernel predicts the sparse task from the dense one's
//! observations; the payoff is fewer trials to locate the second task's
//! optimum.

use crate::report::{f, Report};
use autotune::{Objective, Target};
use autotune_sim::{Environment, RedisSim, Workload};
use autotune_surrogate::{Matern52, MultiTaskGp, TaskObservation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    // Task 0: P95 latency; task 1: negative throughput. Correlated (both
    // improve at the scheduler sweet spot) but not identical.
    let t_lat = Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(300_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyP95,
    );
    let t_thr = Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(300_000.0),
        Environment::medium(),
        Objective::MaximizeThroughput,
    );
    let mut rng = StdRng::seed_from_u64(3);

    // Dense task-0 data (20 points), sparse task-1 data (4 points).
    let mut obs = Vec::new();
    let mut cfgs = Vec::new();
    for _ in 0..20 {
        let cfg = t_lat.space().sample(&mut rng);
        let x = t_lat.space().encode_unit(&cfg).expect("encodes");
        let y = t_lat.evaluate(&cfg, &mut rng).cost;
        obs.push(TaskObservation { task: 0, x, y });
        cfgs.push(cfg);
    }
    for cfg in cfgs.iter().step_by(5).take(4) {
        let x = t_thr.space().encode_unit(cfg).expect("encodes");
        let y = t_thr.evaluate(cfg, &mut rng).cost;
        obs.push(TaskObservation { task: 1, x, y });
    }

    let d = t_lat.space().len();
    let mut mt = MultiTaskGp::new(Box::new(Matern52::ard(vec![0.4; d], 1.0)), 1e-4, 2);
    mt.fit(&obs).expect("observations are valid");

    // Single-task GP on the 4 sparse points for comparison.
    use autotune_surrogate::{GaussianProcess, Surrogate};
    let sparse: Vec<&TaskObservation> = obs.iter().filter(|o| o.task == 1).collect();
    let xs: Vec<Vec<f64>> = sparse.iter().map(|o| o.x.clone()).collect();
    let ys: Vec<f64> = sparse.iter().map(|o| o.y).collect();
    let mut st = GaussianProcess::new(Box::new(Matern52::ard(vec![0.4; d], 1.0)), 1e-4);
    st.fit(&xs, &ys).expect("sparse data fits");

    // Evaluate predictive accuracy for task 1 on held-out probes.
    let mut mt_err = Vec::new();
    let mut st_err = Vec::new();
    let mut rows = Vec::new();
    for i in 0..10 {
        let cfg = t_thr.space().sample(&mut rng);
        let x = t_thr.space().encode_unit(&cfg).expect("encodes");
        let truth = (0..5)
            .map(|_| t_thr.evaluate(&cfg, &mut rng).cost)
            .sum::<f64>()
            / 5.0;
        let pm = mt.predict(1, &x).mean;
        let ps = st.predict(&x).mean;
        mt_err.push((pm - truth).abs());
        st_err.push((ps - truth).abs());
        if i < 5 {
            rows.push(vec![
                format!("probe {i}"),
                f(-truth, 0),
                f(-pm, 0),
                f(-ps, 0),
            ]);
        }
    }
    let mt_mae = autotune_linalg::stats::mean(&mt_err);
    let st_mae = autotune_linalg::stats::mean(&st_err);
    rows.push(vec![
        "MAE".into(),
        String::new(),
        f(mt_mae, 0),
        f(st_mae, 0),
    ]);
    rows.push(vec![
        "fitted rho".into(),
        f(mt.rho(), 2),
        String::new(),
        String::new(),
    ]);

    let shape_holds = mt_mae < st_mae && mt.rho() > 0.0;
    Report {
        id: "E12",
        title: "Multi-task GP: reuse latency data for throughput (slide 59)",
        headers: vec!["probe", "true thr", "multi-task pred", "single-task pred"],
        rows,
        paper_claim: "data from one target transfers to correlated targets via a shared kernel",
        measured: format!(
            "multi-task MAE {} vs single-task MAE {} (rho {})",
            f(mt_mae, 0),
            f(st_mae, 0),
            f(mt.rho(), 2)
        ),
        shape_holds,
    }
}

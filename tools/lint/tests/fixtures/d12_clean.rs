//! D12 clean fixture: every acquisition goes through the PoisonFree
//! wrapper, so poisoning recovers deterministically at one blessed site.

use autotune::sync::{PoisonFree, PoisonFreeMutex};

pub fn read_state(m: &std::sync::Mutex<State>) -> u64 {
    m.plock().value
}

pub fn write_state(l: &std::sync::RwLock<State>, v: u64) {
    l.pwrite().value = v;
}

pub fn snapshot(l: &std::sync::RwLock<State>) -> State {
    l.pread().clone()
}

//! Row-major dense matrix with the handful of operations the autotuning
//! stack needs.

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// A dense, row-major `f64` matrix.
///
/// Storage is a single `Vec<f64>` of length `rows * cols`; element `(i, j)`
/// lives at index `i * cols + j`. This layout keeps GP kernel-matrix
/// construction and Cholesky inner loops cache-friendly for the matrix
/// sizes we care about (a few hundred rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Copy of the main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Sum of the main diagonal.
    pub fn trace(&self) -> f64 {
        self.diag().iter().sum()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Uses an ikj loop order so the inner loop streams over contiguous
    /// rows of both the output and `other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                context: "matmul: self.cols must equal other.rows",
            });
        }
        // The zero-skip fast path is only sound when `other` is entirely
        // finite: IEEE gives `0.0 * NaN = NaN` and `0.0 * inf = NaN`, so
        // skipping a zero row against a non-finite operand would silently
        // replace a NaN result with 0. One upfront scan keeps the skip
        // O(1) per row instead of re-checking inside the hot loop.
        let other_finite = other.data.iter().all(|v| v.is_finite());
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 && other_finite {
                    continue;
                }
                let orow = other.row(k);
                let outrow = out.row_mut(i);
                for (o, &b) in outrow.iter_mut().zip(orow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                context: "matvec: self.cols must equal v.len()",
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), v))
            .collect())
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b, "add: shapes must match")
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b, "sub: shapes must match")
    }

    fn zip_with(
        &self,
        other: &Matrix,
        f: impl Fn(f64, f64) -> f64,
        context: &'static str,
    ) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch { context });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Adds `v` to each diagonal entry in place (e.g. observation noise or
    /// Cholesky jitter).
    pub fn add_diag(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += v;
        }
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (infinity norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True when `self` and `other` agree entrywise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// True when the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Stacks `rows` (each of length `cols`) into a matrix; the design-matrix
    /// constructor used throughout the surrogate models.
    pub fn from_row_vectors(rows: &[Vec<f64>]) -> Self {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_zero_times_nonfinite_propagates() {
        // Regression: the zero-skip fast path used to silently drop
        // non-finite entries of `other` — `0 * NaN` and `0 * inf` must
        // produce NaN, exactly as an unskipped IEEE accumulation would.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
        let b = Matrix::from_rows(&[&[f64::NAN, 5.0], &[6.0, f64::INFINITY]]);
        let c = a.matmul(&b).unwrap();
        assert!(c[(0, 0)].is_nan(), "0*NaN + 1*6 must be NaN");
        assert!(c[(0, 1)].is_infinite(), "0*5 + 1*inf is inf");
        assert!(c[(1, 0)].is_nan(), "2*NaN + 0*6 must be NaN");
        assert!(c[(1, 1)].is_nan(), "2*5 + 0*inf must be NaN");
    }

    #[test]
    fn matmul_zero_skip_still_exact_on_finite_operands() {
        // A zero-heavy left operand against a finite right operand must
        // give the exact same result the dense accumulation would.
        let a = Matrix::from_rows(&[&[0.0, 0.0, 3.0], &[0.0, 2.0, 0.0]]);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[15.0, 18.0], &[6.0, 8.0]]);
        assert!(c.approx_eq(&expected, 0.0));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![17.0, 39.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let back = a.add(&b).unwrap().sub(&b).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn diag_trace_and_add_diag() {
        let mut a = Matrix::from_rows(&[&[1.0, 9.0], &[9.0, 2.0]]);
        assert_eq!(a.diag(), vec![1.0, 2.0]);
        assert_eq!(a.trace(), 3.0);
        a.add_diag(0.5);
        assert_eq!(a.diag(), vec![1.5, 2.5]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert!(s.is_symmetric(1e-12));
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn display_does_not_panic() {
        let a = Matrix::identity(3);
        let s = format!("{a}");
        assert!(s.contains("1.0000"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}

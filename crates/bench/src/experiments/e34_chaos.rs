//! E34 (ROADMAP item 1, crash-safe serving): the durable serving layer
//! survives chaos-injected process crashes, worker panics, and torn WAL
//! tails without changing any campaign's outcome, and sheds overload
//! without perturbing accepted campaigns.
//!
//! Four claims, matching the durability layer's contract:
//!
//! * **Crash recovery** — a 128-campaign mixed fleet driven through a
//!   [`DurableRegistry`] with seeded chaos crashes (pre-append,
//!   mid-append/torn-write, post-append-pre-ack) is repeatedly killed
//!   and reopened from the WAL; every campaign's final history is
//!   byte-identical to its standalone run.
//! * **Torn tails** — mid-append crashes leave half-written records;
//!   recovery truncates them (counted in bytes) instead of failing.
//! * **Worker panics** — panics injected inside the measurement pool
//!   are caught at the `step_round` boundary and recovered by rebuild
//!   from the WAL, again byte-identically.
//! * **Overload** — with admission control bounding the fleet, excess
//!   registrations are shed with a typed `Overloaded` answer while
//!   every accepted campaign still matches its standalone history.

use crate::experiments::e33_serve::fleet_specs;
use crate::report::{f, Report};
use autotune_serve::{
    AdmissionConfig, CampaignRegistry, CampaignSpec, ChaosPlan, DurableRegistry, ServeError,
    WalConfig,
};
use std::path::PathBuf;
use std::time::Instant;

/// Fleet size for the chaos-recovery arm.
pub const CHAOS_N: usize = 128;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("autotune-e34-{}-{tag}", std::process::id()))
}

fn standalone_histories(specs: &[CampaignSpec]) -> Vec<String> {
    specs
        .iter()
        .map(|s| {
            let mut c = s.build();
            c.run();
            c.storage().to_json()
        })
        .collect()
}

fn find_by_name(durable: &DurableRegistry, name: &str) -> Option<u64> {
    durable.registry().ids().into_iter().find(|id| {
        durable
            .registry()
            .stats(*id)
            .map(|st| st.name == name)
            .unwrap_or(false)
    })
}

/// Outcome of one chaotic drive-to-completion.
pub struct ChaosOutcome {
    /// Final per-campaign histories, in spec order.
    pub histories: Vec<String>,
    /// Simulated process crashes that fired.
    pub crashes: u64,
    /// WAL reopens (one per crash).
    pub reopens: u64,
    /// Worker-panic recoveries caught at the pool boundary.
    pub panic_recoveries: u64,
    /// Torn-tail bytes truncated across all reopens.
    pub torn_bytes: u64,
    /// Mean wall milliseconds per `DurableRegistry::open`.
    pub mean_open_ms: f64,
    /// Total WAL appends acknowledged.
    pub wal_appends: u64,
}

/// Drives `specs` through a durable registry under chaos until every
/// campaign completes; each simulated crash is followed by recovery
/// from the WAL with a re-derived chaos seed (same plan would re-roll
/// the same crash — a real restart is a new process).
pub fn chaos_drive(specs: &[CampaignSpec], seed: u64, p_crash: f64, p_panic: f64) -> ChaosOutcome {
    let dir = temp_dir(&format!("chaos-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    let config = WalConfig::default();
    let mut durable = DurableRegistry::create(&dir, 8, config).expect("create durable registry");
    let mut incarnation = 0u64;
    let arm = |d: &mut DurableRegistry, inc: u64| {
        d.set_chaos(
            ChaosPlan::new(seed.wrapping_add(inc))
                .with_crashes(p_crash)
                .with_worker_panics(p_panic),
        );
    };
    arm(&mut durable, incarnation);
    let mut crashes = 0u64;
    let mut reopens = 0u64;
    let mut panic_recoveries = 0u64;
    let mut torn_bytes = 0u64;
    let mut open_ms = Vec::new();
    let mut next_spec = 0usize;
    loop {
        if durable.crashed().is_some() {
            crashes += 1;
            incarnation += 1;
            assert!(
                incarnation < 10_000,
                "chaos drive failed to converge (p_crash too high?)"
            );
            let t = Instant::now();
            let (reopened, report) =
                DurableRegistry::open(&dir, 8, config).expect("reopen after crash");
            open_ms.push(t.elapsed().as_secs_f64() * 1_000.0);
            durable = reopened;
            reopens += 1;
            torn_bytes += report.truncated_bytes;
            arm(&mut durable, incarnation);
        }
        if next_spec < specs.len() {
            match durable.register_spec(&specs[next_spec]) {
                Ok(_) => next_spec += 1,
                Err(ServeError::Storage(_)) => continue, // crashed mid-register
                Err(e) => panic!("unexpected registration error: {e}"),
            }
            continue;
        }
        // A crash during registration may have lost in-flight specs;
        // re-register anything not yet durable.
        for s in specs {
            if find_by_name(&durable, &s.name).is_none() && durable.register_spec(s).is_err() {
                break;
            }
        }
        if durable.crashed().is_some() {
            continue;
        }
        if !durable.registry().has_runnable() {
            break;
        }
        match durable.step_round() {
            Ok(round) if round.recovered => panic_recoveries += 1,
            Ok(_) => {}
            Err(_) => {} // crashed; handled at loop top
        }
    }
    let histories = specs
        .iter()
        .map(|s| {
            let id = find_by_name(&durable, &s.name).expect("campaign survived chaos");
            durable
                .registry()
                .campaign(id)
                .expect("registered id")
                .storage()
                .to_json()
        })
        .collect();
    let wal_appends = durable.registry().fleet_stats().wal_appends;
    let _ = std::fs::remove_dir_all(&dir);
    ChaosOutcome {
        histories,
        crashes,
        reopens,
        panic_recoveries,
        torn_bytes,
        mean_open_ms: if open_ms.is_empty() {
            0.0
        } else {
            open_ms.iter().sum::<f64>() / open_ms.len() as f64
        },
        wal_appends,
    }
}

/// Outcome of the overload arm.
pub struct OverloadOutcome {
    /// Registrations offered.
    pub offered: usize,
    /// Registrations accepted (ran to completion).
    pub accepted: usize,
    /// Registrations shed with `Overloaded`.
    pub shed: usize,
    /// Accepted campaigns whose history matches standalone.
    pub identical: usize,
}

/// Offers `specs` to a registry bounded by `admission`; sheds the
/// excess and verifies the accepted campaigns stay byte-deterministic.
pub fn overload_drive(
    specs: &[CampaignSpec],
    want: &[String],
    admission: AdmissionConfig,
) -> OverloadOutcome {
    let mut reg = CampaignRegistry::new(8);
    reg.set_admission(admission);
    let mut accepted_ids = Vec::new();
    let mut shed = 0usize;
    for (i, s) in specs.iter().enumerate() {
        match reg.admit_spec(s, Some(i as u64)) {
            Ok(id) => accepted_ids.push((i, id)),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    reg.run_all().expect("overloaded fleet drive failed");
    let identical = accepted_ids
        .iter()
        .filter(|(i, id)| {
            reg.campaign(*id)
                .map(|c| c.storage().to_json() == want[*i])
                .unwrap_or(false)
        })
        .count();
    OverloadOutcome {
        offered: specs.len(),
        accepted: accepted_ids.len(),
        shed,
        identical,
    }
}

/// Runs the experiment.
pub fn run() -> Report {
    let specs = fleet_specs(CHAOS_N);
    let want = standalone_histories(&specs);

    // Two chaos seeds: crashes + panics at rates that fire repeatedly
    // over a ~3k-append drive.
    let a = chaos_drive(&specs, 0xE34, 0.002, 0.004);
    let b = chaos_drive(&specs, 0x5EED, 0.002, 0.004);
    let identical_a = a
        .histories
        .iter()
        .zip(&want)
        .filter(|(g, w)| g == w)
        .count();
    let identical_b = b
        .histories
        .iter()
        .zip(&want)
        .filter(|(g, w)| g == w)
        .count();

    let overload = overload_drive(
        &specs,
        &want,
        AdmissionConfig {
            max_active: 24,
            max_pending: 40,
        },
    );

    let rows = vec![
        vec![
            "chaos drive A (seed 0xE34)".into(),
            format!("{identical_a}/{CHAOS_N} identical"),
            format!(
                "{} crashes, {} panic recoveries, {} torn bytes truncated",
                a.crashes, a.panic_recoveries, a.torn_bytes
            ),
        ],
        vec![
            "chaos drive B (seed 0x5EED)".into(),
            format!("{identical_b}/{CHAOS_N} identical"),
            format!(
                "{} crashes, {} panic recoveries, {} torn bytes truncated",
                b.crashes, b.panic_recoveries, b.torn_bytes
            ),
        ],
        vec![
            "WAL recovery latency".into(),
            format!("{} ms mean open", f(a.mean_open_ms.max(b.mean_open_ms), 1)),
            format!("{} WAL appends (drive A)", a.wal_appends),
        ],
        vec![
            "overload: 24 active / 40 pending".into(),
            format!(
                "{} accepted, {} shed of {}",
                overload.accepted, overload.shed, overload.offered
            ),
            format!(
                "{}/{} accepted histories identical",
                overload.identical, overload.accepted
            ),
        ],
    ];
    let chaos_fired = a.crashes + b.crashes > 0
        && a.panic_recoveries + b.panic_recoveries > 0
        && a.torn_bytes + b.torn_bytes > 0;
    let shape_holds = identical_a == CHAOS_N
        && identical_b == CHAOS_N
        && chaos_fired
        && overload.shed > 0
        && overload.identical == overload.accepted;
    Report {
        id: "E34",
        title: "Crash-safe serving under chaos (ROADMAP: robust tuning-as-a-service)",
        headers: vec!["check", "result", "detail"],
        rows,
        paper_claim: "a production tuning service must survive crashes and overload without corrupting campaign state",
        measured: format!(
            "{identical_a}+{identical_b}/{} recovered histories byte-identical across {} crashes ({} torn bytes), {} shed under overload with {}/{} accepted identical",
            2 * CHAOS_N,
            a.crashes + b.crashes,
            a.torn_bytes + b.torn_bytes,
            overload.shed,
            overload.identical,
            overload.accepted
        ),
        shape_holds,
    }
}

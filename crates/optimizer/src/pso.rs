//! Particle swarm optimization (tutorial slide 50; Gad 2022).
//!
//! A population of particles moves through the unit cube, each attracted to
//! its own best position and the swarm's global best, with inertia. Simple,
//! derivative-free, embarrassingly parallel — a common choice for online
//! tuners with cheap trials.

use crate::{BestTracker, Observation, Optimizer};
use autotune_space::{Config, Space};
use rand::{Rng, RngCore};

/// PSO hyperparameters (standard constricted values by default).
#[derive(Debug, Clone)]
pub struct PsoConfig {
    /// Number of particles.
    pub n_particles: usize,
    /// Inertia weight ω.
    pub inertia: f64,
    /// Cognitive (personal-best) weight c₁.
    pub cognitive: f64,
    /// Social (global-best) weight c₂.
    pub social: f64,
    /// Maximum velocity per dimension (unit-cube units).
    pub v_max: f64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig {
            n_particles: 12,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            v_max: 0.3,
        }
    }
}

#[derive(Debug, Clone)]
struct Particle {
    position: Vec<f64>,
    velocity: Vec<f64>,
    best_position: Vec<f64>,
    best_value: f64,
}

/// Particle-swarm optimizer over the unit encoding of a space.
#[derive(Debug)]
pub struct ParticleSwarm {
    space: Space,
    config: PsoConfig,
    particles: Vec<Particle>,
    global_best: Option<(Vec<f64>, f64)>,
    /// Index of the particle whose position was last suggested.
    cursor: usize,
    initialized: bool,
    tracker: BestTracker,
}

impl ParticleSwarm {
    /// Creates a swarm over `space`.
    pub fn new(space: Space, config: PsoConfig) -> Self {
        assert!(
            config.n_particles >= 2,
            "swarm needs at least two particles"
        );
        ParticleSwarm {
            space,
            config,
            particles: Vec::new(),
            global_best: None,
            cursor: 0,
            initialized: false,
            tracker: BestTracker::default(),
        }
    }

    fn init_swarm(&mut self, rng: &mut dyn RngCore) {
        let mut rng = rng;
        let d = self.space.len();
        self.particles = (0..self.config.n_particles)
            .map(|_| {
                let cfg = self.space.sample(&mut rng);
                let position = self
                    .space
                    .encode_unit(&cfg)
                    .expect("sampled config encodes"); // lint: allow(D5) sampled configs always encode
                let velocity: Vec<f64> = (0..d)
                    .map(|_| rng.gen_range(-self.config.v_max..self.config.v_max))
                    .collect();
                Particle {
                    best_position: position.clone(),
                    best_value: f64::INFINITY,
                    position,
                    velocity,
                }
            })
            .collect();
        self.initialized = true;
        self.cursor = 0;
    }

    /// Advances particle `i` one step using current bests.
    #[allow(clippy::needless_range_loop)] // indexes three parallel vectors
    fn step_particle(&mut self, i: usize, rng: &mut dyn RngCore) {
        let gbest = match &self.global_best {
            Some((p, _)) => p.clone(),
            None => return, // nothing to be attracted to yet
        };
        let cfg = &self.config;
        let p = &mut self.particles[i];
        for d in 0..p.position.len() {
            let r1: f64 = rng.gen();
            let r2: f64 = rng.gen();
            let v = cfg.inertia * p.velocity[d]
                + cfg.cognitive * r1 * (p.best_position[d] - p.position[d])
                + cfg.social * r2 * (gbest[d] - p.position[d]);
            p.velocity[d] = v.clamp(-cfg.v_max, cfg.v_max);
            p.position[d] = (p.position[d] + p.velocity[d]).clamp(0.0, 1.0);
        }
    }
}

impl Optimizer for ParticleSwarm {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> Config {
        if !self.initialized {
            self.init_swarm(rng);
        }
        let i = self.cursor;
        self.cursor = (self.cursor + 1) % self.particles.len();
        // Move the particle (no-op on the very first pass, before any
        // global best exists), then propose its position.
        self.step_particle(i, rng);
        self.space
            .decode_unit(&self.particles[i].position)
            .expect("particle positions have space dimension") // lint: allow(D5) particle positions have the space dimension
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
        if value.is_nan() {
            return;
        }
        let x = self
            .space
            .encode_unit(config)
            .expect("configs against this space encode"); // lint: allow(D5) observed configs originate from this space
                                                          // Attribute the observation to the nearest particle.
        if let Some((i, _)) = self
            .particles
            .iter()
            .enumerate()
            .map(|(i, p)| (i, autotune_linalg::squared_distance(&p.position, &x)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
        {
            let p = &mut self.particles[i];
            if value < p.best_value {
                p.best_value = value;
                p.best_position = x.clone();
            }
        }
        if self.global_best.as_ref().is_none_or(|(_, v)| value < *v) {
            self.global_best = Some((x, value));
        }
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        "pso"
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};

    #[test]
    fn solves_sphere() {
        let mut opt = ParticleSwarm::new(sphere_space(), PsoConfig::default());
        let best = run_loop(&mut opt, sphere, 240, 19);
        assert!(best < 0.02, "PSO best {best} after 240 trials");
    }

    #[test]
    fn velocities_bounded() {
        let mut opt = ParticleSwarm::new(sphere_space(), PsoConfig::default());
        run_loop(&mut opt, sphere, 60, 23);
        for p in &opt.particles {
            for &v in &p.velocity {
                assert!(v.abs() <= opt.config.v_max + 1e-12);
            }
            for &x in &p.position {
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    #[test]
    fn global_best_matches_tracker() {
        let mut opt = ParticleSwarm::new(sphere_space(), PsoConfig::default());
        run_loop(&mut opt, sphere, 50, 29);
        let (_, gv) = opt.global_best.clone().unwrap();
        assert!((gv - opt.best().unwrap().value).abs() < 1e-12);
    }

    #[test]
    fn nan_ignored() {
        let space = sphere_space();
        let mut opt = ParticleSwarm::new(space.clone(), PsoConfig::default());
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x9E3779B97F4A7C15);
        let c = opt.suggest(&mut rng);
        opt.observe(&c, f64::NAN);
        assert!(opt.best().is_none());
        assert!(opt.global_best.is_none());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_swarm_rejected() {
        let _ = ParticleSwarm::new(
            sphere_space(),
            PsoConfig {
                n_particles: 1,
                ..Default::default()
            },
        );
    }
}

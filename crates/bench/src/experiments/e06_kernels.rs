//! E6 (slides 43-44): kernel functions — the RBF lengthscale controls
//! smoothness, and the Matérn family orders by roughness (ν=1/2 roughest).
//! Wiggliness is measured as the mean absolute second difference of prior
//! sample paths.

use crate::report::{f, Report};
use autotune_surrogate::{GaussianProcess, Kernel, Matern12, Matern32, Matern52, Rbf};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean absolute second difference of prior samples under a kernel.
fn wiggliness(kernel: Box<dyn Kernel>, seed: u64) -> f64 {
    let gp = GaussianProcess::new(kernel, 0.0);
    let points: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 79.0]).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    let n_draws = 8;
    for _ in 0..n_draws {
        let y = gp.sample_function(&points, &mut rng);
        let second_diffs: f64 = y
            .windows(3)
            .map(|w| (w[2] - 2.0 * w[1] + w[0]).abs())
            .sum::<f64>()
            / (y.len() - 2) as f64;
        total += second_diffs;
    }
    total / n_draws as f64
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut rows = Vec::new();
    // RBF lengthscale sweep.
    let mut rbf_w = Vec::new();
    for &l in &[0.05, 0.15, 0.5] {
        let w = wiggliness(Box::new(Rbf::isotropic(l, 1.0)), 42);
        rbf_w.push(w);
        rows.push(vec![format!("RBF l={l}"), f(w, 4)]);
    }
    // Matérn family at fixed lengthscale.
    let m12 = wiggliness(Box::new(Matern12::isotropic(0.15, 1.0)), 43);
    let m32 = wiggliness(Box::new(Matern32::isotropic(0.15, 1.0)), 44);
    let m52 = wiggliness(Box::new(Matern52::isotropic(0.15, 1.0)), 45);
    let rbf = rbf_w[1];
    rows.push(vec!["Matern 1/2 l=0.15".into(), f(m12, 4)]);
    rows.push(vec!["Matern 3/2 l=0.15".into(), f(m32, 4)]);
    rows.push(vec!["Matern 5/2 l=0.15".into(), f(m52, 4)]);

    let lengthscale_orders = rbf_w[0] > rbf_w[1] && rbf_w[1] > rbf_w[2];
    let matern_orders = m12 > m32 && m32 > m52 && m52 > rbf;
    Report {
        id: "E6",
        title: "Kernel smoothness (slides 43-44)",
        headers: vec!["kernel", "wiggliness"],
        rows,
        paper_claim: "smaller lengthscale = wigglier; Matern roughness: 1/2 > 3/2 > 5/2 > RBF",
        measured: format!(
            "RBF l-sweep {} > {} > {}; Matern {} > {} > {} > RBF {}",
            f(rbf_w[0], 3),
            f(rbf_w[1], 3),
            f(rbf_w[2], 3),
            f(m12, 3),
            f(m32, 3),
            f(m52, 3),
            f(rbf, 3)
        ),
        shape_holds: lengthscale_orders && matern_orders,
    }
}

//! Multi-campaign registry with fair scheduling over a bounded pool.
//!
//! A [`CampaignRegistry`] owns many [`Campaign`]s and advances them in
//! *rounds* of deficit round-robin: each active campaign accrues credit
//! every round, and once its credit covers its policy's wave capacity it
//! is serviced — its ready wave is staged, measured, and absorbed. Waves
//! from all serviced campaigns in a round are measured together on a
//! bounded worker pool ([`par_map_threads`]), one worker per wave.
//!
//! # Determinism
//!
//! Each campaign owns its target, so the only cross-campaign coupling is
//! *which* waves get measured in a round — a pure function of credits and
//! policies. Within a wave, measurements run sequentially in wave order
//! on a single worker, because a noisy target's drift clock advances per
//! evaluation: splitting one campaign's wave across threads would make
//! the clock order scheduling-dependent. Parallelism therefore comes
//! from servicing *different* campaigns concurrently, which touches
//! disjoint targets. The result: every campaign's history is
//! byte-identical to running it alone, for any worker count and any
//! fleet composition.
//!
//! # Virtual pool accounting
//!
//! Real wall-clock on the test host says little about serving capacity
//! (and reading it is banned in library code). Instead the registry
//! keeps a deterministic *virtual* pool model: each round, the benchmark
//! seconds of every measured trial are assigned greedily to the
//! least-loaded of `workers` virtual workers; the round's makespan is
//! the maximum worker load. Serial seconds divided by summed makespans
//! gives the pool speedup a real fleet of that size would see.

use crate::chaos::ChaosPlan;
use crate::spec::CampaignSpec;
use autotune::{measure_request, Campaign, CampaignError, CampaignSnapshot, MetricsSnapshot};
use autotune_linalg::par_map_threads;
use std::collections::BTreeMap;

/// Errors from registry operations.
#[derive(Debug)]
pub enum ServeError {
    /// No campaign with the given id.
    UnknownCampaign(u64),
    /// The campaign rejected the operation (snapshot/resume/wave error).
    Campaign(CampaignError),
    /// A protocol-level failure (framing, serde, closed pipe).
    Protocol(String),
    /// A frame's length prefix exceeds [`crate::protocol::MAX_FRAME_LEN`];
    /// the body was never read (let alone allocated) and the stream is no
    /// longer at a frame boundary.
    FrameTooLarge {
        /// The advertised body length.
        len: u64,
        /// The cap it violated.
        max: u64,
    },
    /// A complete, well-framed payload failed to decode (garbage JSON,
    /// unknown variant). The stream is still at a frame boundary, so the
    /// connection remains usable.
    Decode(String),
    /// The server shed the request under overload; retry after the
    /// indicated number of scheduling rounds.
    Overloaded {
        /// Suggested backoff before retrying, in scheduling rounds.
        retry_after_rounds: u64,
    },
    /// Durable storage failure (WAL/snapshot I/O or corruption).
    Storage(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownCampaign(id) => write!(f, "unknown campaign id {id}"),
            ServeError::Campaign(e) => write!(f, "campaign error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ServeError::Decode(msg) => write!(f, "decode error: {msg}"),
            ServeError::Overloaded { retry_after_rounds } => {
                write!(f, "overloaded; retry after {retry_after_rounds} rounds")
            }
            ServeError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CampaignError> for ServeError {
    fn from(e: CampaignError) -> Self {
        ServeError::Campaign(e)
    }
}

/// Point-in-time stats for one registered campaign. Flat and
/// serializable so it can cross the serving protocol.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CampaignStats {
    /// Registry-assigned id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Schedule label (e.g. `sync-batch(4)`).
    pub policy: String,
    /// Whether the campaign has drained its source.
    pub done: bool,
    /// Whether serving was stopped administratively.
    pub stopped: bool,
    /// Whether the campaign is admitted but still queued behind the
    /// `max_active` admission limit.
    #[serde(default)]
    pub queued: bool,
    /// Ticks completed.
    pub n_ticks: u64,
    /// Trials recorded in storage.
    pub n_trials: usize,
    /// Best finite cost so far (infinity if none).
    pub best_cost: f64,
    /// Waves serviced by the registry.
    pub waves_served: u64,
    /// Live measurements performed by the registry.
    pub live_measurements: u64,
    /// Benchmark seconds this campaign consumed on the virtual pool.
    pub virtual_busy_s: f64,
    /// Trials suggested (from the campaign's telemetry).
    pub n_suggested: u64,
    /// Trials crashed (from the campaign's telemetry).
    pub n_crashed: u64,
    /// Virtual campaign wall-clock seconds (from telemetry).
    pub wall_clock_s: f64,
    /// Mean suggest latency in real nanoseconds (0 without a timer).
    pub mean_suggest_ns: f64,
    /// Mean observe latency in real nanoseconds (0 without a timer).
    pub mean_observe_ns: f64,
    /// WAL records appended for this campaign (durable serving only).
    #[serde(default)]
    pub wal_appends: u64,
    /// Times this campaign was rebuilt from its durable log after a
    /// crash or worker panic.
    #[serde(default)]
    pub recoveries: u64,
}

/// Aggregate stats for the whole registry.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FleetStats {
    /// Worker-pool size the registry schedules for.
    pub workers: usize,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Registered campaigns.
    pub n_campaigns: usize,
    /// Campaigns still running (not done, not stopped).
    pub n_active: usize,
    /// Completed campaigns.
    pub n_done: usize,
    /// Live measurements performed across all campaigns.
    pub live_measurements: u64,
    /// Total benchmark seconds if measured strictly serially.
    pub virtual_serial_s: f64,
    /// Deterministic makespan of the same work on the virtual pool.
    pub virtual_makespan_s: f64,
    /// `virtual_serial_s / virtual_makespan_s` (1.0 when no work yet).
    pub pool_speedup: f64,
    /// Trials suggested across the fleet.
    pub n_suggested: u64,
    /// Trials crashed across the fleet.
    pub n_crashed: u64,
    /// Campaigns admitted but queued behind the `max_active` limit.
    #[serde(default)]
    pub n_pending: usize,
    /// Register requests shed by admission control.
    #[serde(default)]
    pub shed_requests: u64,
    /// Idempotent request retries absorbed without duplicating work.
    #[serde(default)]
    pub retried_requests: u64,
    /// WAL records appended across the fleet (durable serving only).
    #[serde(default)]
    pub wal_appends: u64,
    /// Bytes discarded as torn WAL tails during recovery.
    #[serde(default)]
    pub wal_truncated_bytes: u64,
    /// Crash/panic recoveries: whole-process WAL replays plus
    /// per-campaign rebuilds after worker panics.
    #[serde(default)]
    pub recoveries: u64,
}

/// Admission limits for a registry. Defaults are unbounded, preserving
/// the plain `register` behavior; a serving deployment sets both to put
/// a hard ceiling on memory and scheduling load.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Campaigns allowed to run concurrently; admissions beyond this
    /// queue (FIFO) until capacity frees up.
    pub max_active: usize,
    /// Bound on that pending queue; admissions beyond it are shed with
    /// [`ServeError::Overloaded`].
    pub max_pending: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_active: usize::MAX,
            max_pending: usize::MAX,
        }
    }
}

struct Entry {
    id: u64,
    name: String,
    campaign: Campaign<'static>,
    credit: f64,
    stopped: bool,
    queued: bool,
    waves_served: u64,
    live_measurements: u64,
    virtual_busy_s: f64,
    wal_appends: u64,
    recoveries: u64,
}

impl Entry {
    fn active(&self) -> bool {
        !self.stopped && !self.queued && !self.campaign.is_done()
    }
}

/// Outcome of one [`CampaignRegistry::step_round`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundReport {
    /// Campaigns whose waves were measured this round.
    pub campaigns_serviced: usize,
    /// Live measurements performed this round.
    pub live_measurements: usize,
    /// Drain ticks (no live work) absorbed this round.
    pub drain_ticks: usize,
    /// Virtual makespan of this round's measurements on the pool.
    pub makespan_s: f64,
}

/// Owns and fairly advances a fleet of campaigns. See the module docs
/// for the scheduling and determinism story.
pub struct CampaignRegistry {
    entries: Vec<Entry>,
    workers: usize,
    quantum: f64,
    next_id: u64,
    rounds: u64,
    virtual_serial_s: f64,
    virtual_makespan_s: f64,
    admission: AdmissionConfig,
    request_ids: BTreeMap<u64, u64>,
    shed_requests: u64,
    retried_requests: u64,
    wal_truncated_bytes: u64,
    fleet_recoveries: u64,
    worker_panic_plan: Option<ChaosPlan>,
}

impl CampaignRegistry {
    /// A registry scheduling for a pool of `workers` (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        CampaignRegistry {
            entries: Vec::new(),
            workers: workers.max(1),
            quantum: 1.0,
            next_id: 0,
            rounds: 0,
            virtual_serial_s: 0.0,
            virtual_makespan_s: 0.0,
            admission: AdmissionConfig::default(),
            request_ids: BTreeMap::new(),
            shed_requests: 0,
            retried_requests: 0,
            wal_truncated_bytes: 0,
            fleet_recoveries: 0,
            worker_panic_plan: None,
        }
    }

    /// Arms deterministic worker-panic injection: each (round, campaign)
    /// measurement job consults `plan` and may panic inside the pool.
    /// The panic propagates out of [`CampaignRegistry::step_round`]; a
    /// durability layer catches it at that boundary and rebuilds from
    /// the WAL.
    pub fn inject_worker_panics(&mut self, plan: ChaosPlan) {
        self.worker_panic_plan = Some(plan);
    }

    /// Credit accrued per campaign per round (default 1.0). Larger
    /// quanta service wide-wave campaigns more eagerly; the value only
    /// shifts interleaving order, never any campaign's own history.
    pub fn with_quantum(mut self, quantum: f64) -> Self {
        self.quantum = quantum.max(f64::MIN_POSITIVE);
        self
    }

    /// Caps concurrent and queued admissions (see [`AdmissionConfig`]).
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Replaces the admission limits in place (recovery re-applies the
    /// pre-crash configuration to a rebuilt registry).
    pub fn set_admission(&mut self, admission: AdmissionConfig) {
        self.admission = admission;
    }

    /// Scheduling rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Restores the round counter on a rebuilt registry, so stats stay
    /// monotone across a recovery and chaos rolls keyed on the round
    /// number never re-roll a round that already fired.
    pub(crate) fn set_rounds(&mut self, rounds: u64) {
        self.rounds = rounds;
    }

    /// Re-inserts a campaign under its original id during recovery.
    pub(crate) fn restore_entry(
        &mut self,
        id: u64,
        name: String,
        campaign: Campaign<'static>,
        stopped: bool,
        wal_appends: u64,
        recoveries: u64,
    ) {
        self.next_id = self.next_id.max(id + 1);
        self.entries.push(Entry {
            id,
            name,
            campaign,
            credit: 0.0,
            stopped,
            queued: false,
            waves_served: 0,
            live_measurements: 0,
            virtual_busy_s: 0.0,
            wal_appends,
            recoveries,
        });
    }

    /// Fleet-level robustness counters, for carrying across a rebuild:
    /// `(shed, retried, wal_truncated_bytes, fleet_recoveries)`.
    pub(crate) fn robustness_counters(&self) -> (u64, u64, u64, u64) {
        (
            self.shed_requests,
            self.retried_requests,
            self.wal_truncated_bytes,
            self.fleet_recoveries,
        )
    }

    /// Restores fleet-level robustness counters on a rebuilt registry.
    pub(crate) fn set_robustness_counters(
        &mut self,
        shed: u64,
        retried: u64,
        truncated: u64,
        recoveries: u64,
    ) {
        self.shed_requests = shed;
        self.retried_requests = retried;
        self.wal_truncated_bytes = truncated;
        self.fleet_recoveries = recoveries;
    }

    /// Registers an owned campaign under `name`; returns its id. This
    /// low-level path bypasses admission control — servers route
    /// registrations through [`CampaignRegistry::admit_spec`] instead.
    pub fn register(&mut self, name: impl Into<String>, campaign: Campaign<'static>) -> u64 {
        self.push_entry(name.into(), campaign, false)
    }

    fn push_entry(&mut self, name: String, campaign: Campaign<'static>, queued: bool) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(Entry {
            id,
            name,
            campaign,
            credit: 0.0,
            stopped: false,
            queued,
            waves_served: 0,
            live_measurements: 0,
            virtual_busy_s: 0.0,
            wal_appends: 0,
            recoveries: 0,
        });
        id
    }

    /// Builds and registers a campaign from a declarative spec.
    pub fn register_spec(&mut self, spec: &CampaignSpec) -> u64 {
        self.register(spec.name.clone(), spec.build())
    }

    /// Admission-controlled registration. A `request_id` seen before
    /// returns the originally assigned campaign id (idempotent retry);
    /// past `max_active` the campaign is queued; past `max_pending` the
    /// request is shed with [`ServeError::Overloaded`].
    pub fn admit_spec(
        &mut self,
        spec: &CampaignSpec,
        request_id: Option<u64>,
    ) -> Result<u64, ServeError> {
        if let Some(rid) = request_id {
            if let Some(&id) = self.request_ids.get(&rid) {
                self.retried_requests += 1;
                return Ok(id);
            }
        }
        let n_running = self.n_active();
        let n_queued = self.n_pending();
        if n_running >= self.admission.max_active && n_queued >= self.admission.max_pending {
            self.shed_requests += 1;
            return Err(ServeError::Overloaded {
                retry_after_rounds: n_queued as u64 + 1,
            });
        }
        let queued = n_running >= self.admission.max_active;
        let id = self.push_entry(spec.name.clone(), spec.build(), queued);
        if let Some(rid) = request_id {
            self.request_ids.insert(rid, id);
        }
        Ok(id)
    }

    /// Number of registered campaigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Campaigns still running (not done, not stopped, not queued).
    pub fn n_active(&self) -> usize {
        self.entries.iter().filter(|e| e.active()).count()
    }

    /// Campaigns admitted but queued behind the `max_active` limit.
    pub fn n_pending(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.queued && !e.stopped && !e.campaign.is_done())
            .count()
    }

    /// Whether any campaign can still make progress (running now, or
    /// queued and eligible for activation).
    pub fn has_runnable(&self) -> bool {
        self.n_active() > 0 || (self.n_pending() > 0 && self.admission.max_active > 0)
    }

    /// Pool size this registry schedules for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn entry(&self, id: u64) -> Result<&Entry, ServeError> {
        self.entries
            .iter()
            .find(|e| e.id == id)
            .ok_or(ServeError::UnknownCampaign(id))
    }

    fn entry_mut(&mut self, id: u64) -> Result<&mut Entry, ServeError> {
        self.entries
            .iter_mut()
            .find(|e| e.id == id)
            .ok_or(ServeError::UnknownCampaign(id))
    }

    /// Read access to a campaign (history, metrics, log).
    pub fn campaign(&self, id: u64) -> Result<&Campaign<'static>, ServeError> {
        Ok(&self.entry(id)?.campaign)
    }

    /// Stops serving a campaign (its state is kept and can still be
    /// snapshotted). Returns whether it was previously active.
    pub fn stop(&mut self, id: u64) -> Result<bool, ServeError> {
        let entry = self.entry_mut(id)?;
        let was_active = entry.active();
        entry.stopped = true;
        Ok(was_active)
    }

    /// Snapshots a campaign at its current tick boundary.
    pub fn snapshot(&self, id: u64) -> Result<CampaignSnapshot, ServeError> {
        Ok(self.entry(id)?.campaign.snapshot()?)
    }

    /// Removes a campaign from the registry, returning it.
    pub fn deregister(&mut self, id: u64) -> Result<Campaign<'static>, ServeError> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.id == id)
            .ok_or(ServeError::UnknownCampaign(id))?;
        Ok(self.entries.remove(idx).campaign)
    }

    /// Executes one deficit-round-robin round: accrues credit, stages
    /// ready waves of every campaign whose credit covers its wave
    /// capacity, measures all staged waves on the worker pool (one
    /// worker per wave), and absorbs the results. Drain ticks — ticks
    /// with no live measurement, e.g. barrier completions or replay
    /// fills — are absorbed for free so a stalled campaign never blocks
    /// the fleet.
    pub fn step_round(&mut self) -> Result<RoundReport, ServeError> {
        self.rounds += 1;
        let mut report = RoundReport::default();
        // Phase 0: activate queued admissions FIFO as capacity frees up
        // (registration order, so activation is deterministic).
        let mut n_running = self.n_active();
        for entry in &mut self.entries {
            if n_running >= self.admission.max_active {
                break;
            }
            if entry.queued && !entry.stopped && !entry.campaign.is_done() {
                entry.queued = false;
                n_running += 1;
            }
        }
        // Phase 1: accrue credit and stage waves.
        let mut staged: Vec<(usize, Vec<autotune::WorkItem>)> = Vec::new();
        for idx in 0..self.entries.len() {
            let quantum = self.quantum;
            let entry = &mut self.entries[idx];
            if !entry.active() {
                continue;
            }
            entry.credit += quantum;
            let capacity = entry.campaign.policy().capacity() as f64;
            if entry.credit < capacity {
                continue;
            }
            // Absorb drain ticks for free until live work (or done).
            loop {
                let wave = entry.campaign.ready_wave();
                if wave.is_empty() {
                    if entry.campaign.is_done() {
                        break;
                    }
                    entry.campaign.complete_wave(Vec::new())?;
                    report.drain_ticks += 1;
                    if entry.campaign.is_done() {
                        break;
                    }
                    continue;
                }
                entry.credit -= (wave.len() as f64).max(1.0);
                staged.push((idx, wave));
                break;
            }
        }
        // Phase 2: measure all staged waves on the pool — one worker
        // per wave, sequential in wave order within a wave (see module
        // docs for why splitting a wave would break determinism).
        let jobs: Vec<_> = staged
            .iter()
            .map(|(idx, wave)| {
                let e = &self.entries[*idx];
                (
                    e.id,
                    std::sync::Arc::clone(e.campaign.target()),
                    e.campaign.noise_strategy().clone(),
                    wave.clone(),
                )
            })
            .collect();
        let round = self.rounds;
        let panic_plan = self.worker_panic_plan;
        let measured: Vec<Vec<autotune::Measurement>> = par_map_threads(
            &jobs,
            2,
            self.workers,
            move |_, (id, target, strategy, wave)| {
                if panic_plan.is_some_and(|p| p.worker_panics(round, *id)) {
                    chaos_worker_panic(round, *id);
                }
                wave.iter()
                    .map(|w| measure_request(target, strategy, &w.req, w.eval_seed))
                    .collect()
            },
        );
        // Phase 3: virtual-pool accounting, then absorb results in
        // staging order.
        let mut loads = vec![0.0f64; self.workers];
        for m in measured.iter().flatten() {
            let slot = least_loaded(&loads);
            loads[slot] += m.elapsed_s;
            self.virtual_serial_s += m.elapsed_s;
        }
        report.makespan_s = loads.iter().fold(0.0f64, |a, &b| a.max(b));
        self.virtual_makespan_s += report.makespan_s;
        for ((idx, _), live) in staged.iter().zip(measured) {
            let entry = &mut self.entries[*idx];
            let elapsed: f64 = live.iter().map(|m| m.elapsed_s).sum();
            entry.waves_served += 1;
            entry.live_measurements += live.len() as u64;
            entry.virtual_busy_s += elapsed;
            report.live_measurements += live.len();
            report.campaigns_serviced += 1;
            entry.campaign.complete_wave(live)?;
        }
        Ok(report)
    }

    /// Runs rounds until every campaign is done or stopped; returns the
    /// number of rounds executed.
    pub fn run_all(&mut self) -> Result<u64, ServeError> {
        let start = self.rounds;
        while self.has_runnable() {
            self.step_round()?;
        }
        Ok(self.rounds - start)
    }

    /// Attributes `n` durable WAL appends to campaign `id` (hook for
    /// the durability layer; unknown ids count fleet-wide only).
    pub fn note_wal_appends(&mut self, id: u64, n: u64) {
        if let Ok(entry) = self.entry_mut(id) {
            entry.wal_appends += n;
        }
    }

    /// Records torn-tail bytes discarded during WAL recovery.
    pub fn note_wal_truncated(&mut self, bytes: u64) {
        self.wal_truncated_bytes += bytes;
    }

    /// Records a whole-process recovery (WAL replay after a crash).
    pub fn note_fleet_recovery(&mut self) {
        self.fleet_recoveries += 1;
    }

    /// Records a per-campaign rebuild (e.g. after a worker panic).
    pub fn note_campaign_recovery(&mut self, id: u64) {
        if let Ok(entry) = self.entry_mut(id) {
            entry.recoveries += 1;
        }
    }

    /// Restores the idempotency table after recovery, so retried
    /// `Register`s from before the crash still map to their campaigns.
    pub fn restore_request_id(&mut self, request_id: u64, campaign_id: u64) {
        self.request_ids.insert(request_id, campaign_id);
    }

    /// Stats for one campaign.
    pub fn stats(&self, id: u64) -> Result<CampaignStats, ServeError> {
        let entry = self.entry(id)?;
        let m = entry.campaign.metrics();
        Ok(CampaignStats {
            id: entry.id,
            name: entry.name.clone(),
            policy: entry.campaign.policy().label(),
            done: entry.campaign.is_done(),
            stopped: entry.stopped,
            queued: entry.queued,
            n_ticks: entry.campaign.n_ticks(),
            n_trials: entry.campaign.storage().len(),
            best_cost: entry
                .campaign
                .storage()
                .best()
                .map_or(f64::INFINITY, |t| t.cost),
            waves_served: entry.waves_served,
            live_measurements: entry.live_measurements,
            virtual_busy_s: entry.virtual_busy_s,
            n_suggested: m.n_suggested,
            n_crashed: m.n_crashed,
            wall_clock_s: m.wall_clock_s,
            mean_suggest_ns: m.suggest_ns.mean(),
            mean_observe_ns: m.observe_ns.mean(),
            wal_appends: entry.wal_appends,
            recoveries: entry.recoveries,
        })
    }

    /// Merged telemetry across every registered campaign (wall clocks
    /// add, as for sequential concatenation), plus the registry's own
    /// durability and overload counters.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for entry in &self.entries {
            merged.merge(&entry.campaign.metrics());
        }
        merged.wal_appends = self.entries.iter().map(|e| e.wal_appends).sum();
        merged.wal_truncated_bytes = self.wal_truncated_bytes;
        merged.recoveries = self.fleet_recoveries;
        merged.shed_requests = self.shed_requests;
        merged.retried_requests = self.retried_requests;
        merged
    }

    /// Aggregate fleet stats.
    pub fn fleet_stats(&self) -> FleetStats {
        let merged = self.merged_metrics();
        FleetStats {
            workers: self.workers,
            rounds: self.rounds,
            n_campaigns: self.entries.len(),
            n_active: self.n_active(),
            n_done: self.entries.iter().filter(|e| e.campaign.is_done()).count(),
            live_measurements: self.entries.iter().map(|e| e.live_measurements).sum(),
            virtual_serial_s: self.virtual_serial_s,
            virtual_makespan_s: self.virtual_makespan_s,
            pool_speedup: if self.virtual_makespan_s > 0.0 {
                self.virtual_serial_s / self.virtual_makespan_s
            } else {
                1.0
            },
            n_suggested: merged.n_suggested,
            n_crashed: merged.n_crashed,
            n_pending: self.n_pending(),
            shed_requests: self.shed_requests,
            retried_requests: self.retried_requests,
            wal_appends: merged.wal_appends,
            wal_truncated_bytes: self.wal_truncated_bytes,
            recoveries: merged.recoveries,
        }
    }

    /// Ids of all registered campaigns, in registration order.
    pub fn ids(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.id).collect()
    }
}

/// Deterministic chaos injection for the measurement pool: rolled by
/// the armed [`ChaosPlan`] on (round, campaign id), and caught at the
/// `step_round` boundary by the durability layer, which quarantines the
/// in-memory fleet and rebuilds it from the WAL.
fn chaos_worker_panic(round: u64, id: u64) -> ! {
    panic!("chaos: injected worker panic (round {round}, campaign {id})") // lint: allow(D5) seeded chaos, caught at the pool boundary
}

/// Index of the least-loaded virtual worker (first wins ties, so the
/// assignment is deterministic).
fn least_loaded(loads: &[f64]) -> usize {
    let mut best = 0;
    for (i, &l) in loads.iter().enumerate().skip(1) {
        if l < loads[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, NoiseSpec, OptimizerKind, SystemKind};
    use autotune::{Objective, SchedulePolicy};
    use autotune_sim::{Environment, FaultPlan, NoiseConfig, Workload};

    fn mixed_specs(n: usize) -> Vec<CampaignSpec> {
        (0..n)
            .map(|i| {
                let mut s = CampaignSpec::minimal(
                    format!("c{i}"),
                    match i % 4 {
                        0 => SystemKind::Redis,
                        1 => SystemKind::Dbms,
                        2 => SystemKind::Spark,
                        _ => SystemKind::Nginx,
                    },
                    6 + i % 3,
                    1_000 + i as u64,
                );
                s.workload = match i % 4 {
                    0 => Workload::kv_cache(60_000.0),
                    1 => Workload::tpcc(1_500.0),
                    2 => Workload::tpch(8.0),
                    _ => Workload::ycsb_b(40_000.0),
                };
                s.environment = Environment::small();
                s.objective = if i % 2 == 0 {
                    Objective::MinimizeLatencyAvg
                } else {
                    Objective::MinimizeLatencyP99
                };
                s.policy = match i % 3 {
                    0 => SchedulePolicy::Sequential,
                    1 => SchedulePolicy::SyncBatch { k: 3 },
                    _ => SchedulePolicy::AsyncSlots { k: 2 },
                };
                s.optimizer = if i % 5 == 0 {
                    OptimizerKind::BoGp
                } else {
                    OptimizerKind::Random
                };
                if i % 3 == 2 {
                    s.noise = Some(NoiseSpec {
                        n_machines: 3,
                        config: NoiseConfig::default(),
                        seed: 70 + i as u64,
                    });
                    s.faults = Some(FaultPlan::new(500 + i as u64));
                }
                s
            })
            .collect()
    }

    fn sequential_histories(specs: &[CampaignSpec]) -> Vec<String> {
        specs
            .iter()
            .map(|s| {
                let mut c = s.build();
                c.run();
                c.storage().to_json()
            })
            .collect()
    }

    #[test]
    fn interleaved_serving_determinism_matches_standalone_runs() {
        let specs = mixed_specs(12);
        let want = sequential_histories(&specs);
        for workers in [1, 4] {
            let mut reg = CampaignRegistry::new(workers);
            let ids: Vec<u64> = specs.iter().map(|s| reg.register_spec(s)).collect();
            reg.run_all().unwrap();
            for (id, want) in ids.iter().zip(&want) {
                let got = reg.campaign(*id).unwrap().storage().to_json();
                assert_eq!(&got, want, "campaign {id} diverged (workers={workers})");
            }
        }
    }

    #[test]
    fn round_determinism_same_fleet_same_round_reports() {
        let specs = mixed_specs(6);
        let run = |workers| {
            let mut reg = CampaignRegistry::new(workers);
            for s in &specs {
                reg.register_spec(s);
            }
            let mut reports = Vec::new();
            while reg.n_active() > 0 {
                reports.push(reg.step_round().unwrap());
            }
            (reports, reg.fleet_stats().virtual_serial_s)
        };
        let (a, serial_a) = run(1);
        let (b, serial_b) = run(1);
        assert_eq!(a, b);
        assert_eq!(serial_a.to_bits(), serial_b.to_bits());
        // A bigger pool changes makespans but not the work done.
        let (_, serial_c) = run(8);
        assert_eq!(serial_a.to_bits(), serial_c.to_bits());
    }

    #[test]
    fn snapshot_resume_determinism_through_registry() {
        let specs = mixed_specs(4);
        let want = sequential_histories(&specs);
        let mut reg = CampaignRegistry::new(2);
        let ids: Vec<u64> = specs.iter().map(|s| reg.register_spec(s)).collect();
        for _ in 0..3 {
            reg.step_round().unwrap();
        }
        // Snapshot every campaign mid-flight, resume into fresh builds,
        // finish them standalone: histories must match the straight runs.
        for (i, id) in ids.iter().enumerate() {
            let snap = reg.snapshot(*id).unwrap();
            let fresh = specs[i].build();
            let mut resumed = autotune::Campaign::resume(&snap, fresh).unwrap();
            resumed.run();
            assert_eq!(
                resumed.storage().to_json(),
                want[i],
                "campaign {i} resume diverged"
            );
        }
    }

    #[test]
    fn fairness_no_campaign_starves() {
        let specs = mixed_specs(9);
        let mut reg = CampaignRegistry::new(2);
        let ids: Vec<u64> = specs.iter().map(|s| reg.register_spec(s)).collect();
        for _ in 0..4 {
            reg.step_round().unwrap();
        }
        for id in &ids {
            let st = reg.stats(*id).unwrap();
            assert!(
                st.waves_served > 0 || st.done,
                "campaign {id} starved after 4 rounds: {st:?}"
            );
        }
    }

    #[test]
    fn stop_freezes_a_campaign_and_keeps_it_snapshotable() {
        let specs = mixed_specs(3);
        let mut reg = CampaignRegistry::new(2);
        let ids: Vec<u64> = specs.iter().map(|s| reg.register_spec(s)).collect();
        reg.step_round().unwrap();
        assert!(reg.stop(ids[0]).unwrap());
        let ticks = reg.stats(ids[0]).unwrap().n_ticks;
        reg.run_all().unwrap();
        assert_eq!(reg.stats(ids[0]).unwrap().n_ticks, ticks);
        assert!(reg.snapshot(ids[0]).is_ok());
        assert!(reg.stats(ids[1]).unwrap().done);
        assert!(reg.stats(ids[2]).unwrap().done);
    }

    #[test]
    fn virtual_pool_speedup_grows_with_workers() {
        let specs = mixed_specs(12);
        let makespan = |workers| {
            let mut reg = CampaignRegistry::new(workers);
            for s in &specs {
                reg.register_spec(s);
            }
            reg.run_all().unwrap();
            let fs = reg.fleet_stats();
            (fs.virtual_serial_s, fs.virtual_makespan_s)
        };
        let (serial_1, mk_1) = makespan(1);
        let (serial_8, mk_8) = makespan(8);
        assert_eq!(serial_1.to_bits(), serial_8.to_bits());
        assert!(
            (mk_1 - serial_1).abs() < 1e-9,
            "1 worker ⇒ makespan = serial"
        );
        assert!(
            mk_8 < mk_1 / 2.0,
            "8 virtual workers should at least halve the makespan: {mk_8} vs {mk_1}"
        );
    }

    #[test]
    fn admission_queues_then_sheds_and_stays_deterministic() {
        let specs = mixed_specs(6);
        let want = sequential_histories(&specs);
        let mut reg = CampaignRegistry::new(2).with_admission(AdmissionConfig {
            max_active: 2,
            max_pending: 2,
        });
        // First two run, next two queue, the rest shed.
        let mut ids = Vec::new();
        for s in &specs[..4] {
            ids.push(reg.admit_spec(s, None).unwrap());
        }
        assert_eq!(reg.n_active(), 2);
        assert_eq!(reg.n_pending(), 2);
        assert!(reg.stats(ids[2]).unwrap().queued);
        for s in &specs[4..] {
            assert!(matches!(
                reg.admit_spec(s, None),
                Err(ServeError::Overloaded { .. })
            ));
        }
        assert_eq!(reg.fleet_stats().shed_requests, 2);
        // Accepted campaigns drain to completion and match standalone
        // histories byte for byte despite queueing.
        reg.run_all().unwrap();
        for (i, id) in ids.iter().enumerate() {
            let got = reg.campaign(*id).unwrap().storage().to_json();
            assert_eq!(&got, &want[i], "campaign {i} diverged under admission");
        }
    }

    #[test]
    fn idempotent_request_ids_never_double_create() {
        let specs = mixed_specs(1);
        let mut reg = CampaignRegistry::new(1);
        let a = reg.admit_spec(&specs[0], Some(77)).unwrap();
        let b = reg.admit_spec(&specs[0], Some(77)).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.fleet_stats().retried_requests, 1);
        // A different request id is a genuinely new campaign.
        let c = reg.admit_spec(&specs[0], Some(78)).unwrap();
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn unknown_ids_error() {
        let mut reg = CampaignRegistry::new(1);
        assert!(matches!(reg.stats(7), Err(ServeError::UnknownCampaign(7))));
        assert!(reg.stop(0).is_err());
        assert!(reg.snapshot(0).is_err());
        assert!(reg.deregister(0).is_err());
    }
}

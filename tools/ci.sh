#!/usr/bin/env bash
# The tier-1 gate, runnable locally and from CI: build, test, format,
# lint. Everything must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault determinism (release) =="
# The resilience stack (retries, timeouts, quarantine) must keep the
# byte-identical k=1 schedule-policy contract; run its regression test
# against the optimized build, where any wall-clock/thread-timing leak
# would surface.
cargo test -q --release -p autotune-tests --test fault_resilience

echo "CI gate passed."

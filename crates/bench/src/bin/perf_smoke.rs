//! CI perf-smoke gate for the incremental surrogate hot path.
//!
//! Measures the mean suggest time per trial of an incremental BO campaign
//! at n = 500 observations (the E32 A/B arm, see
//! `experiments::e32_hotpath`) and compares it against the committed
//! baseline in `tools/perf_baseline.json`. Exits non-zero when the
//! measurement regresses more than 2x over the baseline — a cheap,
//! criterion-free tripwire against reintroducing an O(n³) fit into the
//! suggest path. The committed baseline already carries generous headroom
//! over the reference measurement, so ordinary CI-machine jitter passes.
//!
//! ```text
//! cargo run -p autotune-bench --release --bin perf_smoke
//! cargo run -p autotune-bench --release --bin perf_smoke -- --write-baseline
//! ```

use autotune_bench::experiments::e32_hotpath::incremental_suggest_ns_at_n500;

const BASELINE_PATH: &str = "tools/perf_baseline.json";
const KEY: &str = "suggest_ns_per_trial_n500";
/// Regression threshold: fail when measured > `MAX_RATIO` x baseline.
const MAX_RATIO: f64 = 2.0;
/// Headroom folded into a freshly written baseline, so the committed
/// number already absorbs machine-to-machine variance.
const WRITE_HEADROOM: f64 = 2.0;

/// Pulls `"<KEY>": <number>` out of the baseline JSON. The file is a flat
/// object written by `--write-baseline`; a two-line scan keeps the bench
/// crate free of a JSON dependency.
fn parse_baseline(text: &str) -> Option<f64> {
    let start = text.find(&format!("\"{KEY}\""))? + KEY.len() + 2;
    let rest = text[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let write = std::env::args().any(|a| a == "--write-baseline");
    eprintln!("measuring incremental suggest time at n=500 (3 reps, best kept)...");
    // Best-of-3 rejects one-off scheduler hiccups without hiding a real
    // algorithmic regression, which slows every repetition alike.
    let measured = (0..3)
        .map(|_| incremental_suggest_ns_at_n500())
        .fold(f64::INFINITY, f64::min);
    println!("measured: {:.0} ns/trial", measured);

    if write {
        let baseline = measured * WRITE_HEADROOM;
        let json = format!(
            "{{\n  \"metric\": \"incremental BO mean suggest ns per trial at n=500 (bench e32 A/B arm, best of 3)\",\n  \"{KEY}\": {baseline:.0},\n  \"note\": \"written with {WRITE_HEADROOM}x headroom over the reference measurement; perf_smoke fails at >{MAX_RATIO}x this value\"\n}}\n"
        );
        std::fs::write(BASELINE_PATH, json).expect("write baseline");
        println!("baseline written to {BASELINE_PATH}: {baseline:.0} ns/trial");
        return;
    }

    let text = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {BASELINE_PATH} ({e}); run with --write-baseline first");
            std::process::exit(2);
        }
    };
    let Some(baseline) = parse_baseline(&text) else {
        eprintln!("no \"{KEY}\" number in {BASELINE_PATH}");
        std::process::exit(2);
    };
    let ratio = measured / baseline;
    println!("baseline: {baseline:.0} ns/trial -> ratio {ratio:.2} (limit {MAX_RATIO:.1})");
    if ratio > MAX_RATIO {
        println!("PERF SMOKE FAILED: suggest path regressed {ratio:.2}x over baseline");
        std::process::exit(1);
    }
    println!("perf smoke OK");
}

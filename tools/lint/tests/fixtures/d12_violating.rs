//! D12 fixture: poison-handling at lock sites — panicking adapters and
//! hand-rolled recovery both belong in `autotune::sync::PoisonFree`.

pub fn read_state(m: &std::sync::Mutex<State>) -> u64 {
    m.lock().unwrap().value
}

pub fn write_state(l: &std::sync::RwLock<State>, v: u64) {
    l.write().expect("not poisoned").value = v;
}

pub fn hand_rolled(l: &std::sync::RwLock<State>) -> u64 {
    l.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .value
}

//! Gaussian-process regression (tutorial slides 35-44).
//!
//! The GP models the unknown target as `f ~ GP(m, K)`; conditioning on the
//! observed trials gives a closed-form posterior (slide 41):
//!
//! ```text
//! mean(x)  = k(x, X) (K + σ²I)⁻¹ y
//! var(x)   = k(x, x) - k(x, X) (K + σ²I)⁻¹ k(X, x)
//! ```
//!
//! Targets are standardized internally (zero mean, unit variance) so kernel
//! signal scales stay O(1) regardless of whether the metric is nanoseconds
//! or transactions per minute.

use crate::{check_training_set, Kernel, Prediction, Result, Surrogate, SurrogateError};
use autotune_linalg::{Cholesky, Matrix};
use rand::Rng;

/// Configuration for marginal-likelihood hyperparameter fitting.
#[derive(Debug, Clone)]
pub struct HyperFitConfig {
    /// Number of random restarts sampled from the search ranges.
    pub n_candidates: usize,
    /// Log-space search half-width around the current parameter values.
    pub log_range: f64,
    /// Also fit the observation-noise variance.
    pub fit_noise: bool,
    /// Noise search bounds (variance), log-uniform.
    pub noise_bounds: (f64, f64),
    /// Extra restarts that keep the incumbent kernel parameters and only
    /// redraw the noise (ignored when `fit_noise` is off). These reuse the
    /// cached noiseless kernel matrix and merely re-add the diagonal, so
    /// they cost one Cholesky each instead of n² kernel evaluations plus a
    /// Cholesky.
    pub n_noise_candidates: usize,
}

impl Default for HyperFitConfig {
    fn default() -> Self {
        HyperFitConfig {
            n_candidates: 50,
            log_range: 3.0,
            fit_noise: true,
            noise_bounds: (1e-8, 1e-1),
            n_noise_candidates: 16,
        }
    }
}

/// Candidate batches at or above this size are scored on parallel threads.
const MIN_PAR_CANDIDATES: usize = 8;

/// Noiseless kernel matrix over the training set, memoized against the
/// kernel parameters it was built with. `x_train` growth is handled by
/// [`KCache::push`]; any other change to the training set must drop the
/// cache.
#[derive(Debug, Clone)]
struct KCache {
    params: Vec<f64>,
    k: Matrix,
}

impl KCache {
    /// Borders the cached matrix with one row/column: `col` holds
    /// `k(x_i, x_new)` for the existing points and `diag` is `k(x, x)`.
    fn push(&mut self, col: &[f64], diag: f64) {
        let n = self.k.rows();
        debug_assert_eq!(col.len(), n, "KCache::push: column length mismatch");
        let mut k = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            k.row_mut(i)[..n].copy_from_slice(&self.k.row(i)[..n]);
            k[(i, n)] = col[i];
            k[(n, i)] = col[i];
        }
        k[(n, n)] = diag;
        self.k = k;
    }
}

/// A Gaussian-process regressor with a pluggable kernel.
pub struct GaussianProcess {
    kernel: Box<dyn Kernel>,
    /// Observation-noise *variance* added to the kernel diagonal.
    noise: f64,
    x_train: Vec<Vec<f64>>,
    /// Raw targets, kept so incremental observes can re-standardize.
    y_raw: Vec<f64>,
    /// Standardized targets.
    y_std: Vec<f64>,
    /// Standardization parameters (mean, std) of the raw targets.
    y_shift: (f64, f64),
    chol: Option<Cholesky>,
    /// `(K + σ²I)⁻¹ y`, precomputed at fit time.
    alpha: Vec<f64>,
    /// Memoized noiseless kernel matrix (see [`KCache`]).
    k_cache: Option<KCache>,
}

impl std::fmt::Debug for GaussianProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaussianProcess")
            .field("kernel", &self.kernel)
            .field("noise", &self.noise)
            .field("n_train", &self.x_train.len())
            .finish()
    }
}

impl GaussianProcess {
    /// Creates an unfitted GP with the given kernel and observation-noise
    /// variance.
    pub fn new(kernel: Box<dyn Kernel>, noise: f64) -> Self {
        assert!(noise >= 0.0, "noise variance must be non-negative");
        GaussianProcess {
            kernel,
            noise,
            x_train: Vec::new(),
            y_raw: Vec::new(),
            y_std: Vec::new(),
            y_shift: (0.0, 1.0),
            chol: None,
            alpha: Vec::new(),
            k_cache: None,
        }
    }

    /// The kernel currently in use.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Observation-noise variance.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Builds the noiseless kernel matrix over `xs` with the given kernel.
    fn noiseless_matrix(kernel: &dyn Kernel, xs: &[Vec<f64>]) -> Matrix {
        let n = xs.len();
        let mut k = Matrix::from_fn(n, n, |i, j| {
            if j < i {
                0.0 // filled by symmetry below
            } else {
                kernel.eval(&xs[i], &xs[j])
            }
        });
        for i in 0..n {
            for j in 0..i {
                k[(i, j)] = k[(j, i)];
            }
        }
        k
    }

    /// Makes the memoized noiseless kernel matrix current for the present
    /// kernel parameters and training set size.
    fn ensure_k_cache(&mut self) {
        let n = self.x_train.len();
        let params = self.kernel.params();
        if self
            .k_cache
            .as_ref()
            .is_some_and(|c| c.k.rows() == n && c.params == params)
        {
            return;
        }
        self.k_cache = Some(KCache {
            params,
            k: Self::noiseless_matrix(self.kernel.as_ref(), &self.x_train),
        });
    }

    /// Re-standardizes `y_std`/`y_shift` from the raw targets.
    fn restandardize(&mut self) {
        let mean = autotune_linalg::stats::mean(&self.y_raw);
        let std = autotune_linalg::stats::std_dev(&self.y_raw);
        let std = if std > 1e-12 { std } else { 1.0 };
        self.y_shift = (mean, std);
        self.y_std = self.y_raw.iter().map(|&y| (y - mean) / std).collect();
    }

    /// Re-runs the factorization against the stored training data.
    fn refit(&mut self) -> Result<()> {
        self.ensure_k_cache();
        let mut k = self.k_cache.as_ref().expect("cache just ensured").k.clone(); // lint: allow(D5) cache ensured on the previous line
        k.add_diag(self.noise.max(1e-12));
        let chol = Cholesky::new(&k).map_err(|_| SurrogateError::NumericalFailure)?;
        self.alpha = chol.solve_vec(&self.y_std);
        self.chol = Some(chol);
        Ok(())
    }

    /// Log marginal likelihood of the current fit (standardized targets).
    ///
    /// `log p(y|X) = -½ yᵀα - ½ log|K| - n/2 log 2π` (slide 39: the
    /// closed-form payoff of choosing Gaussians).
    pub fn log_marginal_likelihood(&self) -> f64 {
        let Some(chol) = &self.chol else {
            return f64::NEG_INFINITY;
        };
        let n = self.y_std.len() as f64;
        let data_fit: f64 = autotune_linalg::dot(&self.y_std, &self.alpha);
        -0.5 * data_fit - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Log marginal likelihood of a hyperparameter candidate, evaluated
    /// without touching the current fit. Candidates matching the memoized
    /// kernel parameters reuse the cached noiseless matrix and only re-add
    /// the diagonal. Returns `-inf` when the candidate's kernel matrix
    /// cannot be factorized (mirroring the old "skip this restart" path).
    fn candidate_lml(&self, params: &[f64], noise: f64) -> f64 {
        // A non-finite or negative noise draw (e.g. from pathological
        // bounds) must lose, not be silently clamped by `max(1e-12)` below
        // and then committed as the model's noise.
        if !noise.is_finite() || noise < 0.0 || params.iter().any(|p| !p.is_finite()) {
            return f64::NEG_INFINITY;
        }
        let n = self.x_train.len();
        let mut k = match self.k_cache.as_ref() {
            Some(c) if c.k.rows() == n && c.params == params => c.k.clone(),
            _ => {
                let mut kernel = self.kernel.clone_box();
                kernel.set_params(params);
                Self::noiseless_matrix(kernel.as_ref(), &self.x_train)
            }
        };
        k.add_diag(noise.max(1e-12));
        let Ok(chol) = Cholesky::new(&k) else {
            return f64::NEG_INFINITY;
        };
        let alpha = chol.solve_vec(&self.y_std);
        let data_fit = autotune_linalg::dot(&self.y_std, &alpha);
        -0.5 * data_fit - 0.5 * chol.log_det() - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    }

    /// Maximizes the log marginal likelihood over kernel hyperparameters
    /// (and optionally the noise) by random multi-start search around the
    /// current values. Returns the best LML found.
    ///
    /// Random search is deliberate: it is derivative-free, trivially
    /// correct for composite kernels, and at the trial counts autotuning
    /// sees (n ≤ a few hundred) each LML evaluation is a sub-millisecond
    /// Cholesky — robustness beats gradient bookkeeping.
    ///
    /// All candidates are drawn from `rng` up front (in the same order as
    /// the historical sequential loop) and scored in parallel as pure
    /// functions of the frozen training set, with a deterministic
    /// index-ordered argmax — results are independent of thread count and
    /// interleaving. On any error the GP is left in its pre-call state.
    pub fn fit_hyperparameters(
        &mut self,
        config: &HyperFitConfig,
        rng: &mut impl Rng,
    ) -> Result<f64> {
        if self.x_train.is_empty() {
            return Err(SurrogateError::EmptyTrainingSet);
        }
        let base = self.kernel.params();
        let base_noise = self.noise;
        let incumbent_lml = self.log_marginal_likelihood();
        let noise_from = |u: f64| {
            let (lo, hi) = config.noise_bounds;
            (lo.ln() + u * (hi.ln() - lo.ln())).exp()
        };
        let mut cands: Vec<(Vec<f64>, f64)> =
            Vec::with_capacity(config.n_candidates + config.n_noise_candidates);
        for i in 0..config.n_candidates {
            // Half the candidates perturb the current values; the other
            // half search around unit scales (log-param 0), which rescues
            // the fit from a hopeless initialization.
            let center: &[f64] = if i % 2 == 0 { &base } else { &[] };
            let cand: Vec<f64> = (0..base.len())
                .map(|j| {
                    let c = center.get(j).copied().unwrap_or(0.0);
                    c + rng.gen_range(-config.log_range..config.log_range)
                })
                .collect();
            let noise = if config.fit_noise {
                noise_from(rng.gen())
            } else {
                base_noise
            };
            cands.push((cand, noise));
        }
        if config.fit_noise {
            // Noise-only restarts around the incumbent kernel; these reuse
            // the cached noiseless K below. Drawn after the full restarts
            // so the draws above keep their historical stream positions.
            for _ in 0..config.n_noise_candidates {
                cands.push((base.clone(), noise_from(rng.gen())));
            }
        }
        self.ensure_k_cache();
        let this: &Self = self;
        let lmls = autotune_linalg::par_map(&cands, MIN_PAR_CANDIDATES, |_, (params, noise)| {
            this.candidate_lml(params, *noise)
        });
        let mut best_lml = incumbent_lml;
        let mut best: Option<usize> = None;
        for (i, &lml) in lmls.iter().enumerate() {
            if lml > best_lml {
                best_lml = lml;
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let (params, noise) = &cands[i];
                self.kernel.set_params(params);
                self.noise = *noise;
                if let Err(e) = self.refit() {
                    // Defensive: the winner factorized during scoring, so
                    // this is unreachable short of kernel non-determinism.
                    // Restore the pre-call state; the old factorization is
                    // still in place and the GP stays usable.
                    self.kernel.set_params(&base);
                    self.noise = base_noise;
                    self.k_cache = None;
                    return Err(e);
                }
            }
            // The incumbent won and its factorization is already current:
            // the terminal refit of the sequential implementation would
            // recompute the identical factor, so skip it.
            None if self.chol.is_some() => {}
            None => self.refit()?,
        }
        Ok(best_lml)
    }

    /// Posterior covariance between two query points.
    fn posterior_cov(&self, a: &[f64], b: &[f64], ka: &[f64], kb: &[f64]) -> f64 {
        let chol = self.chol.as_ref().expect("called only after fit"); // lint: allow(D5) private helper called only after fit
                                                                       // cov(a,b) = k(a,b) - k(a,X) K⁻¹ k(X,b), computed via the factor:
                                                                       // v_a = L⁻¹ k(X,a), v_b = L⁻¹ k(X,b), cov = k(a,b) - v_a·v_b.
        let va = chol.solve_lower(ka);
        let vb = chol.solve_lower(kb);
        self.kernel.eval(a, b) - autotune_linalg::dot(&va, &vb)
    }

    /// Cross-covariance vector `k(X, x)`.
    fn k_vec(&self, x: &[f64]) -> Vec<f64> {
        self.x_train
            .iter()
            .map(|xi| self.kernel.eval(xi, x))
            .collect()
    }

    /// Draws one sample path of the posterior evaluated at `points`
    /// (or the prior, when the GP is unfitted). This powers the tutorial's
    /// "distribution over functions" figures (slides 35-36).
    pub fn sample_function(&self, points: &[Vec<f64>], rng: &mut impl Rng) -> Vec<f64> {
        let m = points.len();
        if m == 0 {
            return Vec::new();
        }
        // Mean vector and covariance matrix at the query points.
        let (mean, mut cov) = if self.chol.is_some() {
            let kvecs: Vec<Vec<f64>> = points.iter().map(|p| self.k_vec(p)).collect();
            let mean: Vec<f64> = points
                .iter()
                .zip(&kvecs)
                .map(|(_, kv)| autotune_linalg::dot(kv, &self.alpha))
                .collect();
            let cov = Matrix::from_fn(m, m, |i, j| {
                self.posterior_cov(&points[i], &points[j], &kvecs[i], &kvecs[j])
            });
            (mean, cov)
        } else {
            let mean = vec![0.0; m];
            let cov = Matrix::from_fn(m, m, |i, j| self.kernel.eval(&points[i], &points[j]));
            (mean, cov)
        };
        // Symmetrize against round-off before factorizing.
        for i in 0..m {
            for j in 0..i {
                let avg = 0.5 * (cov[(i, j)] + cov[(j, i)]);
                cov[(i, j)] = avg;
                cov[(j, i)] = avg;
            }
        }
        cov.add_diag(1e-9);
        let chol = Cholesky::new(&cov).expect("posterior covariance is PSD with jitter"); // lint: allow(D5) jitter makes the covariance SPD
        let z: Vec<f64> = (0..m)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let lz = chol
            .l()
            .matvec(&z)
            .expect("dimensions match by construction"); // lint: allow(D5) factor dims match by construction
        let (ym, ys) = self.y_shift;
        mean.iter()
            .zip(&lz)
            .map(|(&mu, &dz)| ym + ys * (mu + dz))
            .collect()
    }

    /// Predictive distribution at `x` in the *standardized* target space.
    fn predict_std(&self, x: &[f64]) -> Prediction {
        let Some(chol) = &self.chol else {
            return Prediction {
                mean: 0.0,
                variance: self.kernel.diag(x),
            };
        };
        let k = self.k_vec(x);
        let mean = autotune_linalg::dot(&k, &self.alpha);
        let v = chol.solve_lower(&k);
        let variance = (self.kernel.diag(x) - autotune_linalg::dot(&v, &v)).max(0.0);
        Prediction { mean, variance }
    }
}

impl Surrogate for GaussianProcess {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        check_training_set(xs, ys)?;
        self.y_raw = ys.to_vec();
        self.restandardize();
        self.x_train = xs.to_vec();
        self.k_cache = None; // training inputs replaced wholesale
        self.refit()
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        let p = self.predict_std(x);
        let (ym, ys) = self.y_shift;
        Prediction {
            mean: ym + ys * p.mean,
            variance: ys * ys * p.variance,
        }
    }

    fn n_train(&self) -> usize {
        self.x_train.len()
    }

    /// O(n²) incremental update: borders the kernel matrix with the new
    /// point, extends the Cholesky factor in place ([`Cholesky::extend`]),
    /// re-standardizes the targets (the shift changes with every raw
    /// observation, but `K` depends only on the inputs, so the factor stays
    /// valid), and recomputes `alpha` with two triangular solves.
    ///
    /// Falls back to a full re-factorization when the new point is
    /// numerically dependent on the training set; if even that fails the
    /// observation is rolled back and the previous fit is preserved.
    fn observe(&mut self, x: &[f64], y: f64) -> Result<()> {
        if self.x_train.is_empty() {
            return self.fit(&[x.to_vec()], &[y]);
        }
        if x.len() != self.x_train[0].len() {
            return Err(SurrogateError::DimensionMismatch {
                context: format!(
                    "observe: point has dimension {} (expected {})",
                    x.len(),
                    self.x_train[0].len()
                ),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(SurrogateError::DimensionMismatch {
                context: "observe: point contains non-finite values".into(),
            });
        }
        if !y.is_finite() {
            return Err(SurrogateError::NonFiniteTarget);
        }
        let k_col: Vec<f64> = self
            .x_train
            .iter()
            .map(|xi| self.kernel.eval(xi, x))
            .collect();
        let k_diag = self.kernel.diag(x);
        let extended = match &mut self.chol {
            Some(chol) => chol.extend(&k_col, k_diag + self.noise.max(1e-12)).is_ok(),
            None => false,
        };
        if extended {
            let params = self.kernel.params();
            match &mut self.k_cache {
                Some(c) if c.params == params && c.k.rows() == self.x_train.len() => {
                    c.push(&k_col, k_diag);
                }
                _ => self.k_cache = None,
            }
        }
        self.x_train.push(x.to_vec());
        self.y_raw.push(y);
        let saved_shift = self.y_shift;
        self.restandardize();
        if extended {
            let chol = self.chol.as_ref().expect("factor present when extended"); // lint: allow(D5) extend success implies factor present
            self.alpha = chol.solve_vec(&self.y_std);
            return Ok(());
        }
        self.k_cache = None;
        if let Err(e) = self.refit() {
            // Roll back so the model is exactly as before the call.
            self.x_train.pop();
            self.y_raw.pop();
            self.y_shift = saved_shift;
            let (m, s) = saved_shift;
            self.y_std = self.y_raw.iter().map(|&v| (v - m) / s).collect();
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matern52, Rbf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin() + 2.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points_with_tiny_noise() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-8);
        gp.fit(&xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 1e-3, "mean {} vs target {y}", p.mean);
            assert!(p.variance < 1e-4, "variance {} not collapsed", p.variance);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Matern52::isotropic(0.2, 1.0)), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let at_data = gp.predict(&xs[4]).variance;
        let far = gp.predict(&[3.0]).variance;
        assert!(
            far > 100.0 * at_data.max(1e-12),
            "far {far} vs at-data {at_data}"
        );
    }

    #[test]
    fn prediction_reasonable_between_points() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Matern52::isotropic(0.3, 1.0)), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let x = 0.5f64;
        let truth = (4.0 * x).sin() + 2.0;
        let p = gp.predict(&[x]);
        assert!(
            (p.mean - truth).abs() < 0.1,
            "mean {} vs truth {truth}",
            p.mean
        );
    }

    #[test]
    fn unfitted_gp_returns_prior() {
        let gp = GaussianProcess::new(Box::new(Rbf::isotropic(1.0, 2.0)), 0.0);
        let p = gp.predict(&[0.3]);
        assert_eq!(p.mean, 0.0);
        assert!((p.variance - 4.0).abs() < 1e-12);
        assert_eq!(gp.n_train(), 0);
    }

    #[test]
    fn standardization_handles_large_offsets() {
        // Latencies around 1e6 ns: without standardization an O(1) signal
        // prior would be hopeless.
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0e6 + 1.0e4 * x[0]).collect();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.5, 1.0)), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.005e6).abs() < 2e3, "mean {}", p.mean);
    }

    #[test]
    fn hyperparameter_fit_improves_lml() {
        let (xs, ys) = toy_data();
        // Deliberately bad starting lengthscale.
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(50.0, 0.1)), 1e-4);
        gp.fit(&xs, &ys).unwrap();
        let before = gp.log_marginal_likelihood();
        let mut rng = StdRng::seed_from_u64(42);
        let after = gp
            .fit_hyperparameters(&HyperFitConfig::default(), &mut rng)
            .unwrap();
        assert!(after > before, "LML {after} should beat initial {before}");
        // And the fit should now interpolate decently.
        let p = gp.predict(&[0.5]);
        assert!((p.mean - ((2.0f64).sin() + 2.0)).abs() < 0.3);
    }

    #[test]
    fn posterior_samples_pass_near_observations() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-8);
        gp.fit(&xs, &ys).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let sample = gp.sample_function(&xs, &mut rng);
        for (s, &y) in sample.iter().zip(&ys) {
            assert!(
                (s - y).abs() < 0.05,
                "sample {s} strays from observation {y}"
            );
        }
    }

    #[test]
    fn prior_samples_have_prior_scale() {
        let gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.5, 1.0)), 0.0);
        let points: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
        let mut rng = StdRng::seed_from_u64(5);
        // Pool many prior draws: empirical std should be near 1.
        let mut all = Vec::new();
        for _ in 0..20 {
            all.extend(gp.sample_function(&points, &mut rng));
        }
        let sd = autotune_linalg::stats::std_dev(&all);
        assert!((sd - 1.0).abs() < 0.3, "prior sample std {sd}");
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(1.0, 1.0)), 1e-6);
        assert_eq!(
            gp.fit(&[], &[]).unwrap_err(),
            SurrogateError::EmptyTrainingSet
        );
        assert!(gp.fit(&[vec![0.0], vec![0.0, 1.0]], &[1.0, 2.0]).is_err());
        assert_eq!(
            gp.fit(&[vec![0.0]], &[f64::NAN]).unwrap_err(),
            SurrogateError::NonFiniteTarget
        );
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5]];
        let ys = vec![1.0, 1.1, 0.9];
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(1.0, 1.0)), 0.0);
        gp.fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.0).abs() < 0.1);
    }

    #[test]
    fn incremental_observe_matches_full_fit() {
        let (xs, ys) = toy_data();
        let mut inc = GaussianProcess::new(Box::new(Matern52::isotropic(0.3, 1.0)), 1e-6);
        // Grow one point at a time through the incremental path.
        for (x, &y) in xs.iter().zip(&ys) {
            inc.observe(x, y).unwrap();
        }
        let mut full = GaussianProcess::new(Box::new(Matern52::isotropic(0.3, 1.0)), 1e-6);
        full.fit(&xs, &ys).unwrap();
        assert_eq!(inc.n_train(), full.n_train());
        for q in [0.05, 0.31, 0.5, 0.77, 1.3] {
            let a = inc.predict(&[q]);
            let b = full.predict(&[q]);
            assert!(
                (a.mean - b.mean).abs() < 1e-8,
                "mean at {q}: {} vs {}",
                a.mean,
                b.mean
            );
            assert!(
                (a.variance - b.variance).abs() < 1e-8,
                "variance at {q}: {} vs {}",
                a.variance,
                b.variance
            );
        }
        assert!((inc.log_marginal_likelihood() - full.log_marginal_likelihood()).abs() < 1e-8);
    }

    #[test]
    fn observe_on_duplicate_point_falls_back_to_full_refit() {
        // A duplicated configuration makes the rank-1 Schur complement
        // non-positive; observe must transparently re-factorize with
        // jitter instead of failing.
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(1.0, 1.0)), 0.0);
        gp.observe(&[0.5], 1.0).unwrap();
        gp.observe(&[0.5], 1.1).unwrap();
        gp.observe(&[0.5], 0.9).unwrap();
        assert_eq!(gp.n_train(), 3);
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.0).abs() < 0.1);
    }

    #[test]
    fn observe_rejects_bad_input_without_mutating() {
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let before = gp.predict(&[0.4]);
        assert!(matches!(
            gp.observe(&[0.1, 0.2], 1.0),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
        assert_eq!(
            gp.observe(&[0.3], f64::NAN).unwrap_err(),
            SurrogateError::NonFiniteTarget
        );
        assert!(matches!(
            gp.observe(&[f64::INFINITY], 1.0),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
        assert_eq!(gp.n_train(), xs.len());
        assert_eq!(gp.predict(&[0.4]), before);
    }

    #[test]
    fn failed_hyperfit_restores_pre_call_state() {
        // Satellite regression: pathological noise bounds make every
        // candidate's kernel matrix unfactorizable (NaN noise). The GP must
        // come back with its original hyperparameters, factorization, and
        // predictions intact — the old implementation left mutated params
        // with a stale factor.
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.3, 1.0)), 1e-6);
        gp.fit(&xs, &ys).unwrap();
        let params_before = gp.kernel().params();
        let noise_before = gp.noise();
        let lml_before = gp.log_marginal_likelihood();
        let pred_before = gp.predict(&[0.42]);
        let cfg = HyperFitConfig {
            noise_bounds: (f64::NAN, f64::NAN),
            ..HyperFitConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let got = gp.fit_hyperparameters(&cfg, &mut rng).unwrap();
        assert_eq!(got, lml_before, "no candidate can beat the incumbent");
        assert_eq!(gp.kernel().params(), params_before);
        assert_eq!(gp.noise(), noise_before);
        assert_eq!(gp.predict(&[0.42]), pred_before);
        // The GP must still be fully usable after the failed search.
        gp.observe(&[0.05], 2.1).unwrap();
        assert_eq!(gp.n_train(), xs.len() + 1);
    }

    #[test]
    fn noise_only_candidates_keep_kernel_params() {
        // With zero full restarts, only noise-only candidates run: kernel
        // parameters must come back unchanged while a badly initialized
        // noise can still be improved through the cached-K path.
        let (xs, ys) = toy_data();
        let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(0.3, 1.0)), 5e-2);
        gp.fit(&xs, &ys).unwrap();
        let params_before = gp.kernel().params();
        let before = gp.log_marginal_likelihood();
        let cfg = HyperFitConfig {
            n_candidates: 0,
            n_noise_candidates: 40,
            ..HyperFitConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let after = gp.fit_hyperparameters(&cfg, &mut rng).unwrap();
        assert!(
            after >= before,
            "noise search can only improve: {after} vs {before}"
        );
        assert_eq!(gp.kernel().params(), params_before);
        assert!(
            after > before,
            "toy data with tiny true noise should beat 5e-2"
        );
        assert!(gp.noise() < 5e-2, "noise {} should shrink", gp.noise());
    }

    #[test]
    fn hyperfit_draw_order_is_stable_for_full_restarts() {
        // The pre-draw refactor must consume the RNG exactly like the old
        // sequential loop: with noise-only candidates disabled, two
        // configurations differing only in `n_noise_candidates` see
        // identical full-restart candidates, so they pick the same winner.
        let (xs, ys) = toy_data();
        let mk = || {
            let mut gp = GaussianProcess::new(Box::new(Rbf::isotropic(50.0, 0.1)), 1e-4);
            gp.fit(&xs, &ys).unwrap();
            gp
        };
        let mut a = mk();
        let mut b = mk();
        let cfg_a = HyperFitConfig {
            n_noise_candidates: 0,
            ..HyperFitConfig::default()
        };
        let cfg_b = HyperFitConfig {
            n_noise_candidates: 64,
            ..HyperFitConfig::default()
        };
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let lml_a = a.fit_hyperparameters(&cfg_a, &mut rng_a).unwrap();
        let lml_b = b.fit_hyperparameters(&cfg_b, &mut rng_b).unwrap();
        // Extra noise-only candidates can only match or improve the LML.
        assert!(lml_b >= lml_a);
    }
}

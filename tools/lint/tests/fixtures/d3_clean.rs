//! D3 clean fixture: every stream derives from the campaign seed.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn noise(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}

//! NSGA-II: non-dominated sorting genetic algorithm (Deb et al. 2002).
//!
//! The reference evolutionary multi-objective optimizer the tutorial's
//! ParEGO-style scalarization is usually compared against: maintain a
//! population, rank by non-domination depth, break ties by crowding
//! distance, breed with tournament selection. Cheap per suggestion (no
//! surrogate), so it wins when trials are cheap and loses on sample
//! efficiency when they are not — exactly the trade E11 illustrates.

use crate::moo::{dominates, MultiObservation, ParetoFront};
use autotune_space::{Config, Space};
use rand::{Rng, RngCore};

/// NSGA-II settings.
#[derive(Debug, Clone)]
pub struct NsgaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Per-individual mutation probability.
    pub mutation_rate: f64,
    /// Mutation step scale in unit-cube units.
    pub mutation_scale: f64,
}

impl Default for NsgaConfig {
    fn default() -> Self {
        NsgaConfig {
            population: 24,
            mutation_rate: 0.5,
            mutation_scale: 0.15,
        }
    }
}

/// NSGA-II over a configuration space with `k` objectives (minimization).
pub struct NsgaII {
    space: Space,
    config: NsgaConfig,
    n_objectives: usize,
    /// Scored parents surviving selection.
    parents: Vec<MultiObservation>,
    /// Offspring awaiting evaluation.
    pending: std::collections::VecDeque<Config>,
    /// Scores arriving for the current generation.
    incoming: Vec<MultiObservation>,
    front: ParetoFront,
    generation: usize,
}

impl std::fmt::Debug for NsgaII {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsgaII")
            .field("generation", &self.generation)
            .field("front_size", &self.front.len())
            .finish()
    }
}

impl NsgaII {
    /// Creates an NSGA-II optimizer.
    pub fn new(space: Space, n_objectives: usize, config: NsgaConfig) -> Self {
        assert!(n_objectives >= 2, "NSGA-II is for multi-objective problems");
        assert!(config.population >= 4, "population must be at least 4");
        NsgaII {
            space,
            config,
            n_objectives,
            parents: Vec::new(),
            pending: std::collections::VecDeque::new(),
            incoming: Vec::new(),
            front: ParetoFront::new(),
            generation: 0,
        }
    }

    /// The archive of all non-dominated observations seen so far.
    pub fn front(&self) -> &ParetoFront {
        &self.front
    }

    /// Completed generations.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Proposes the next configuration to evaluate.
    pub fn suggest(&mut self, rng: &mut dyn RngCore) -> Config {
        let mut rng = rng;
        if let Some(c) = self.pending.pop_front() {
            return c;
        }
        if self.incoming.len() >= self.config.population {
            self.evolve(&mut rng);
            if let Some(c) = self.pending.pop_front() {
                return c;
            }
        }
        self.space.sample(&mut rng)
    }

    /// Reports an observed objective vector.
    pub fn observe(&mut self, config: &Config, objectives: &[f64]) {
        assert_eq!(
            objectives.len(),
            self.n_objectives,
            "objective arity mismatch"
        );
        let sanitized: Vec<f64> = objectives
            .iter()
            .map(|&v| if v.is_nan() { f64::INFINITY } else { v })
            .collect();
        let obs = MultiObservation {
            config: config.clone(),
            objectives: sanitized,
        };
        self.front.insert(obs.clone());
        self.incoming.push(obs);
    }

    /// Selection + breeding once a full generation is scored.
    fn evolve(&mut self, rng: &mut dyn RngCore) {
        let mut rng = rng;
        let mut pool = std::mem::take(&mut self.incoming);
        pool.append(&mut self.parents);
        // Non-dominated sorting into fronts.
        let fronts = non_dominated_sort(&pool);
        // Fill the parent set front by front; crowding-sort the last one.
        let mut parents: Vec<MultiObservation> = Vec::with_capacity(self.config.population);
        for front in fronts {
            if parents.len() >= self.config.population {
                break;
            }
            let mut members: Vec<MultiObservation> =
                front.iter().map(|&i| pool[i].clone()).collect();
            let remaining = self.config.population - parents.len();
            if members.len() > remaining {
                let crowd = crowding_distance(&members);
                let mut order: Vec<usize> = (0..members.len()).collect();
                order.sort_by(|&a, &b| crowd[b].total_cmp(&crowd[a]));
                members = order
                    .into_iter()
                    .take(remaining)
                    .map(|i| members[i].clone())
                    .collect();
            }
            parents.extend(members);
        }
        // Breed offspring by binary tournament on (rank via dominance,
        // then uniform) — parents are already the elite, so uniform
        // tournament over them approximates rank selection.
        let mut offspring = Vec::with_capacity(self.config.population);
        while offspring.len() < self.config.population {
            let a = &parents[rng.gen_range(0..parents.len())];
            let b = &parents[rng.gen_range(0..parents.len())];
            let winner = if dominates(&a.objectives, &b.objectives) {
                a
            } else {
                b
            };
            let mut child = winner.config.clone();
            if rng.gen::<f64>() < self.config.mutation_rate {
                child = self
                    .space
                    .neighbor(&child, self.config.mutation_scale, &mut rng);
            } else {
                // Uniform crossover with a second tournament winner.
                let c = &parents[rng.gen_range(0..parents.len())];
                child = self.crossover(&winner.config, &c.config, &mut rng);
            }
            offspring.push(child);
        }
        self.parents = parents;
        self.pending = offspring.into();
        self.generation += 1;
    }

    fn crossover(&self, a: &Config, b: &Config, rng: &mut dyn RngCore) -> Config {
        let mut child = Config::new();
        for p in self.space.params() {
            let donor = if rng.gen::<bool>() { a } else { b };
            let v = donor
                .get(&p.name)
                .or_else(|| {
                    if rng.gen::<bool>() {
                        a.get(&p.name)
                    } else {
                        b.get(&p.name)
                    }
                })
                .unwrap_or(&p.default);
            child.set(p.name.clone(), v.clone());
        }
        let x = self
            .space
            .encode_unit(&child)
            .expect("child covers all params"); // lint: allow(D5) child covers every param of the space
        self.space.decode_unit(&x).expect("encoded child decodes") // lint: allow(D5) encoded child always decodes
    }
}

/// Partitions indices into non-dominated fronts (front 0 = non-dominated).
fn non_dominated_sort(pool: &[MultiObservation]) -> Vec<Vec<usize>> {
    let n = pool.len();
    let mut dominated_by: Vec<usize> = vec![0; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&pool[i].objectives, &pool[j].objectives) {
                dominates_list[i].push(j);
            } else if dominates(&pool[j].objectives, &pool[i].objectives) {
                dominated_by[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Crowding distance per member of one front (larger = less crowded).
fn crowding_distance(front: &[MultiObservation]) -> Vec<f64> {
    let n = front.len();
    if n == 0 {
        return Vec::new();
    }
    let k = front[0].objectives.len();
    let mut dist = vec![0.0; n];
    for m in 0..k {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| front[a].objectives[m].total_cmp(&front[b].objectives[m]));
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let lo = front[order[0]].objectives[m];
        let hi = front[order[n - 1]].objectives[m];
        let range = (hi - lo).max(1e-12);
        for w in order.windows(3) {
            let (prev, mid, next) = (w[0], w[1], w[2]);
            dist[mid] += (front[next].objectives[m] - front[prev].objectives[m]) / range;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obs(objs: &[f64]) -> MultiObservation {
        MultiObservation {
            config: Config::new(),
            objectives: objs.to_vec(),
        }
    }

    #[test]
    fn non_dominated_sort_layers_correctly() {
        let pool = vec![
            obs(&[1.0, 1.0]), // front 0
            obs(&[2.0, 2.0]), // front 1 (dominated by 0)
            obs(&[0.5, 3.0]), // front 0 (incomparable with [1,1])
            obs(&[3.0, 3.0]), // front 2
        ];
        let fronts = non_dominated_sort(&pool);
        assert_eq!(fronts[0], vec![0, 2]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![3]);
    }

    #[test]
    fn crowding_rewards_boundary_and_spread() {
        let front = vec![obs(&[0.0, 3.0]), obs(&[1.0, 1.0]), obs(&[3.0, 0.0])];
        let d = crowding_distance(&front);
        assert!(d[0].is_infinite());
        assert!(d[2].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn recovers_biobjective_front() {
        // f1 = x², f2 = (x-1)²: Pareto set x in [0,1].
        let space = Space::builder()
            .add(Param::float("x", -2.0, 3.0))
            .build()
            .unwrap();
        let mut nsga = NsgaII::new(space, 2, NsgaConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let cfg = nsga.suggest(&mut rng);
            let x = cfg.get_f64("x").unwrap();
            nsga.observe(&cfg, &[x * x, (x - 1.0) * (x - 1.0)]);
        }
        assert!(nsga.generation() >= 8);
        assert!(nsga.front().len() >= 5, "front size {}", nsga.front().len());
        for m in nsga.front().members() {
            let x = m.config.get_f64("x").unwrap();
            assert!(
                (-0.15..=1.15).contains(&x),
                "front member outside Pareto set: {x}"
            );
        }
        // Good hypervolume against reference (4,4): ideal approaches ~14.8.
        let hv = nsga.front().hypervolume_2d((4.0, 4.0));
        assert!(hv > 13.0, "hypervolume {hv}");
    }

    #[test]
    fn crashes_rank_last() {
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .build()
            .unwrap();
        let mut nsga = NsgaII::new(space, 2, NsgaConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..60 {
            let cfg = nsga.suggest(&mut rng);
            if i % 5 == 0 {
                nsga.observe(&cfg, &[f64::NAN, f64::NAN]);
            } else {
                let x = cfg.get_f64("x").unwrap();
                nsga.observe(&cfg, &[x, 1.0 - x]);
            }
        }
        // Front contains no crashed entries.
        for m in nsga.front().members() {
            assert!(m.objectives.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "multi-objective")]
    fn single_objective_rejected() {
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .build()
            .unwrap();
        let _ = NsgaII::new(space, 1, NsgaConfig::default());
    }
}

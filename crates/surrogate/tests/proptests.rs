//! Property-based tests for surrogate-model invariants.

use autotune_surrogate::{
    GaussianProcess, Kernel, Matern12, Matern32, Matern52, RandomForest, Rbf, Surrogate,
};
use proptest::prelude::*;

fn points_strategy(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0..1.0f64, d), n)
}

proptest! {
    /// Kernel matrices are symmetric with the signal variance on the
    /// diagonal — for every stationary kernel.
    #[test]
    fn kernels_symmetric_with_unit_diag(
        xs in points_strategy(6, 2),
        l in 0.05..5.0f64,
        s in 0.1..3.0f64,
    ) {
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(Rbf::isotropic(l, s)),
            Box::new(Matern12::isotropic(l, s)),
            Box::new(Matern32::isotropic(l, s)),
            Box::new(Matern52::isotropic(l, s)),
        ];
        for k in &kernels {
            for a in &xs {
                prop_assert!((k.eval(a, a) - s * s).abs() < 1e-9);
                for b in &xs {
                    prop_assert!((k.eval(a, b) - k.eval(b, a)).abs() < 1e-12);
                    // PD kernels satisfy |k(a,b)| <= sqrt(k(a,a) k(b,b)).
                    prop_assert!(k.eval(a, b) <= s * s + 1e-9);
                }
            }
        }
    }

    /// Stationary kernels decay monotonically with distance.
    #[test]
    fn kernel_monotone_decay(d1 in 0.0..2.0f64, d2 in 0.0..2.0f64) {
        let k = Matern52::isotropic(0.5, 1.0);
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(k.eval(&[0.0], &[near]) >= k.eval(&[0.0], &[far]) - 1e-12);
    }

    /// GP predictions at training points match targets (small noise), and
    /// predictive variance is non-negative everywhere.
    #[test]
    fn gp_interpolation_and_nonneg_variance(
        xs in points_strategy(8, 1),
        seed_vals in proptest::collection::vec(-5.0..5.0f64, 8),
    ) {
        // Deduplicate inputs (identical points with different targets are
        // legitimately non-interpolable).
        let mut seen: Vec<Vec<f64>> = Vec::new();
        let mut uxs = Vec::new();
        let mut uys = Vec::new();
        for (x, &y) in xs.iter().zip(&seed_vals) {
            if !seen.iter().any(|s| autotune_linalg::squared_distance(s, x) < 1e-4) {
                seen.push(x.clone());
                uxs.push(x.clone());
                uys.push(y);
            }
        }
        prop_assume!(uxs.len() >= 3);
        let mut gp = GaussianProcess::new(Box::new(Matern52::isotropic(0.3, 1.0)), 1e-8);
        gp.fit(&uxs, &uys).unwrap();
        for (x, &y) in uxs.iter().zip(&uys) {
            let p = gp.predict(x);
            prop_assert!(p.variance >= 0.0);
            prop_assert!((p.mean - y).abs() < 0.15 * (y.abs() + 1.0),
                "mean {} vs target {y}", p.mean);
        }
        // Off-data variance also non-negative.
        let p = gp.predict(&[0.5]);
        prop_assert!(p.variance >= 0.0);
    }

    /// Random forest predictions stay within the convex hull of targets.
    #[test]
    fn rf_predictions_bounded_by_targets(
        xs in points_strategy(20, 2),
        ys in proptest::collection::vec(-10.0..10.0f64, 20),
        q in proptest::collection::vec(0.0..1.0f64, 2),
    ) {
        let mut rf = RandomForest::default_forest();
        rf.fit(&xs, &ys).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = rf.predict(&q);
        prop_assert!(p.mean >= lo - 1e-9 && p.mean <= hi + 1e-9);
        prop_assert!(p.variance >= 0.0);
    }

    /// Kernel params round-trip through set_params.
    #[test]
    fn kernel_params_roundtrip(l in 0.05..5.0f64, s in 0.1..3.0f64) {
        let mut k = Rbf::ard(vec![l, l * 2.0], s);
        let p = k.params();
        let before = k.eval(&[0.1, 0.2], &[0.8, 0.4]);
        k.set_params(&p);
        let after = k.eval(&[0.1, 0.2], &[0.8, 0.4]);
        prop_assert!((before - after).abs() < 1e-12);
    }
}

//! Queueing-theoretic DBMS simulator — the MySQL/PostgreSQL stand-in.
//!
//! Models the knob interactions the tutorial keeps returning to:
//!
//! * buffer-pool sizing vs RAM and working set (slide 60's marginal
//!   constraint: "on 8 GB of RAM the pool should be 6-7 GB"), with an OOM
//!   **crash region** above ~90 % of RAM (knowledge-transfer experiments
//!   need trials that fail hard);
//! * `flush_method` categorical with durability/throughput trade-offs
//!   (slide 51's `innodb_flush_method` example);
//! * the `chunk_size <= pool / instances` constraint (slide 60);
//! * PG-style conditional JIT knobs (slide 61): `jit_above_cost` only
//!   matters when `jit=on`, JIT helps scans and taxes cheap queries;
//! * thread-pool contention hump, query-cache write penalty, WAL/
//!   checkpoint pressure from undersized logs.
//!
//! Latency comes from an M/M/c-flavoured service model: per-op service
//! time from CPU + buffer-miss I/O, utilization against the VM's cores and
//! IOPS, tail inflation with utilization.

use crate::{Environment, SimSystem, TrialResult, Workload};
use autotune_space::{Condition, Config, Constraint, Param, Space};
use rand::RngCore;

/// Simulated relational database server.
#[derive(Debug)]
pub struct DbmsSim {
    space: Space,
}

impl DbmsSim {
    /// Creates the simulator with a 12-knob MySQL/PG-flavoured space.
    ///
    /// Defaults deliberately mirror stock database defaults (tiny buffer
    /// pool, small logs): the tutorial's "4-10x from tuning" claim is
    /// measured against exactly such defaults.
    pub fn new() -> Self {
        let space = Space::builder()
            .add(
                Param::float("buffer_pool_gb", 0.125, 64.0)
                    .log_scale()
                    .default_value(0.125),
            )
            .add(Param::int("buffer_pool_instances", 1, 16).default_value(1i64))
            .add(
                Param::float("buffer_pool_chunk_gb", 0.125, 8.0)
                    .log_scale()
                    .default_value(0.125),
            )
            .add(
                Param::categorical(
                    "flush_method",
                    &[
                        "fsync",
                        "O_DSYNC",
                        "O_DIRECT",
                        "O_DIRECT_NO_FSYNC",
                        "littlesync",
                        "nosync",
                    ],
                )
                .default_value("fsync"),
            )
            .add(
                Param::float("log_file_size_mb", 48.0, 4096.0)
                    .log_scale()
                    .default_value(48.0),
            )
            .add(
                Param::float("wal_buffer_mb", 1.0, 256.0)
                    .log_scale()
                    .default_value(16.0),
            )
            .add(
                Param::int("io_threads", 1, 64)
                    .log_scale()
                    .default_value(4i64),
            )
            .add(
                Param::int("worker_threads", 1, 512)
                    .log_scale()
                    .default_value(16i64),
            )
            .add(Param::bool("query_cache").default_value(false))
            .add(Param::bool("jit").default_value(false))
            .add(
                Param::float("jit_above_cost", 1e3, 1e6)
                    .log_scale()
                    .default_value(1e5),
            )
            .add(Param::bool("sync_commit").default_value(true))
            .condition(Condition::equals("jit_above_cost", "jit", true))
            .constraint(Constraint::black_box(
                "chunk*instances <= pool",
                |cfg: &Config| match (
                    cfg.get_f64("buffer_pool_chunk_gb"),
                    cfg.get_i64("buffer_pool_instances"),
                    cfg.get_f64("buffer_pool_gb"),
                ) {
                    (Some(chunk), Some(inst), Some(pool)) => chunk * inst as f64 <= pool + 1e-9,
                    _ => true,
                },
            ))
            .build()
            .expect("static space definition is valid"); // lint: allow(D5) static space definition is valid
        DbmsSim { space }
    }

    /// Buffer hit ratio for a working set under Zipfian skew: skewed
    /// workloads get more out of a small cache.
    fn hit_ratio(buffer_gb: f64, working_set_gb: f64, skew: f64) -> f64 {
        if working_set_gb <= 0.0 {
            return 1.0;
        }
        let frac = (buffer_gb / working_set_gb).min(1.0);
        frac.powf(1.0 - 0.7 * skew)
    }

    /// Per-write WAL/flush overhead, milliseconds.
    fn flush_cost_ms(
        method: &str,
        sync_commit: bool,
        wal_buffer_mb: f64,
        env: &Environment,
    ) -> f64 {
        // One fsync ≈ 1000/IOPS ms; methods change how many and whether
        // the OS cache double-buffers.
        let sync_ms = 1000.0 / env.disk_iops.max(1.0);
        let method_factor = match method {
            "fsync" => 1.6, // data + OS double buffering
            "O_DSYNC" => 1.3,
            "O_DIRECT" => 1.0, // no double buffering
            "O_DIRECT_NO_FSYNC" => 0.8,
            "littlesync" => 0.5,
            "nosync" => 0.15, // unsafe but fast
            _ => 1.6,
        };
        let group_commit = (1.0 + (wal_buffer_mb / 16.0).ln_1p()).max(1.0);
        let per_commit = if sync_commit { 1.0 } else { 0.25 };
        sync_ms * method_factor * per_commit / group_commit
    }
}

impl Default for DbmsSim {
    fn default() -> Self {
        DbmsSim::new()
    }
}

impl SimSystem for DbmsSim {
    fn name(&self) -> &str {
        "dbms"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn run_trial(
        &self,
        config: &Config,
        workload: &Workload,
        env: &Environment,
        rng: &mut dyn RngCore,
    ) -> TrialResult {
        let bp = config.get_f64("buffer_pool_gb").unwrap_or(0.125);
        let flush = config.get_str("flush_method").unwrap_or("fsync");
        let log_mb = config.get_f64("log_file_size_mb").unwrap_or(48.0);
        let wal_mb = config.get_f64("wal_buffer_mb").unwrap_or(16.0);
        let io_threads = config.get_i64("io_threads").unwrap_or(4).max(1) as f64;
        let workers = config.get_i64("worker_threads").unwrap_or(16).max(1) as f64;
        let query_cache = config.get_bool("query_cache").unwrap_or(false);
        let jit = config.get_bool("jit").unwrap_or(false);
        let jit_cost = config.get_f64("jit_above_cost").unwrap_or(1e5);
        let sync_commit = config.get_bool("sync_commit").unwrap_or(true);

        // OOM crash region: the process plus pool cannot exceed RAM.
        if bp > 0.9 * env.ram_gb {
            return TrialResult::crash(5.0);
        }

        let ws = workload.effective_working_set_gb();
        let hit = Self::hit_ratio(bp, ws, workload.skew);
        let io_ms = 1000.0 / env.disk_iops.max(1.0);
        let io_parallel = io_threads.min(env.cores as f64 * 4.0).sqrt();

        // --- point reads ---
        let cpu_read_ms = 0.02;
        let read_ms = cpu_read_ms + (1.0 - hit) * io_ms / io_parallel;
        // Query cache accelerates repeat reads but invalidation taxes writes.
        let qc_read = if query_cache {
            1.0 - 0.35 * workload.read_fraction * workload.skew
        } else {
            1.0
        };
        let qc_write = if query_cache { 1.6 } else { 1.0 };

        // --- scans ---
        // Scan touches the whole working set; buffered fraction is free-ish
        // and async prefetch threads overlap the rest.
        let scan_io_s = ws * 1024.0 * (1.0 - 0.9 * hit) / (env.disk_mbps.max(1.0) * io_parallel);
        let mut scan_cpu_s = ws * 0.15; // per-GiB aggregation CPU
        if jit {
            // JIT compiles expensive queries: scans speed up, but a low
            // threshold wastes compile time on cheap statements.
            scan_cpu_s *= 0.65;
            let threshold_penalty = if jit_cost < 2e4 { 0.4 } else { 0.0 };
            scan_cpu_s += threshold_penalty;
        }
        let scan_ms = (scan_io_s + scan_cpu_s) * 1000.0 / env.cores as f64;

        // --- writes ---
        let flush_ms = Self::flush_cost_ms(flush, sync_commit, wal_mb, env);
        // Undersized redo logs force frequent checkpoints: stall factor.
        let checkpoint =
            1.0 + (256.0 / log_mb.max(1.0)).min(8.0) * 0.35 * workload.write_fraction();
        let write_ms = (0.03 + (1.0 - hit) * io_ms / io_parallel + flush_ms) * checkpoint;

        // --- mix ---
        let point_fraction = 1.0 - workload.scan_fraction;
        let read_mix = workload.read_fraction * point_fraction;
        let write_mix = workload.write_fraction() * point_fraction;
        let service_ms = read_mix * read_ms * qc_read
            + write_mix * write_ms * qc_write
            + workload.scan_fraction * scan_ms;

        // --- concurrency ---
        // Workers add useful parallelism up to ~2x cores, then the
        // context-switch/latch hump takes over.
        let useful = workers.min(2.0 * env.cores as f64);
        let contention = 1.0 + 0.002 * (workers / env.cores as f64).powi(2);
        // Component profile: where one average operation's time goes.
        // This is the simulated analogue of a stack profile (slide 68's
        // PGO/FDO opportunity): each share maps back to the knobs that
        // influence that component.
        let profile = vec![
            (
                "cpu".to_string(),
                read_mix * cpu_read_ms * qc_read
                    + write_mix * 0.03 * qc_write
                    + workload.scan_fraction * scan_cpu_s * 1000.0 / env.cores as f64,
            ),
            (
                "io_point".to_string(),
                (read_mix + write_mix) * (1.0 - hit) * io_ms / io_parallel,
            ),
            (
                "io_scan".to_string(),
                workload.scan_fraction * scan_io_s * 1000.0 / env.cores as f64,
            ),
            ("wal_flush".to_string(), write_mix * flush_ms * qc_write),
            (
                "checkpoint".to_string(),
                write_mix * write_ms * qc_write * (checkpoint - 1.0) / checkpoint,
            ),
            ("contention".to_string(), service_ms * (contention - 1.0)),
        ];

        let capacity_ops = useful * 1000.0 / (service_ms.max(1e-3) * contention);
        let raw_util = workload.offered_ops / capacity_ops.max(1e-9);
        let utilization = raw_util.min(0.999);
        let queueing = 1.0 / (1.0 - utilization);
        // Past saturation the backlog grows with the overload ratio, so
        // higher-capacity configs still separate under a flood.
        let overload = raw_util.max(1.0);
        let mean_latency = service_ms * contention * (0.3 + 0.7 * queueing) * overload;
        let throughput = workload.offered_ops.min(capacity_ops);
        let elapsed = workload.duration_s();

        crate::finish_trial(
            mean_latency,
            utilization,
            throughput,
            elapsed,
            env.cost_per_hour,
            workload,
            env,
            rng,
        )
        .with_profile(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn avg_result(
        sim: &DbmsSim,
        cfg: &Config,
        w: &Workload,
        env: &Environment,
        seed: u64,
    ) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lat = Vec::new();
        let mut thr = Vec::new();
        for _ in 0..8 {
            let r = sim.run_trial(cfg, w, env, &mut rng);
            assert!(!r.crashed, "unexpected crash for {cfg}");
            lat.push(r.latency_avg_ms);
            thr.push(r.throughput_ops);
        }
        (
            autotune_linalg::stats::mean(&lat),
            autotune_linalg::stats::mean(&thr),
        )
    }

    /// A hand-tuned "good" config for a 16 GB / TPC-C-ish environment.
    fn tuned_config(sim: &DbmsSim) -> Config {
        sim.space()
            .default_config()
            .with("buffer_pool_gb", 12.0)
            .with("buffer_pool_instances", 8i64)
            .with("buffer_pool_chunk_gb", 1.0)
            .with("flush_method", "O_DIRECT")
            .with("log_file_size_mb", 2048.0)
            .with("wal_buffer_mb", 64.0)
            .with("io_threads", 16i64)
            .with("worker_threads", 8i64)
            .with("sync_commit", true)
    }

    #[test]
    fn tuning_yields_tutorial_scale_throughput_gain() {
        // Slide 10: "properly tuned database systems can achieve 4-10x
        // higher throughput". Offered load far above default capacity so
        // throughput reflects capacity.
        let sim = DbmsSim::new();
        let env = Environment::medium();
        let w = Workload::tpcc(200_000.0);
        let (_, thr_default) = avg_result(&sim, &sim.space().default_config(), &w, &env, 1);
        let (_, thr_tuned) = avg_result(&sim, &tuned_config(&sim), &w, &env, 2);
        let gain = thr_tuned / thr_default;
        assert!(
            (3.0..20.0).contains(&gain),
            "throughput gain {gain:.1}x outside the expected 4-10x ballpark"
        );
    }

    #[test]
    fn oversized_buffer_pool_crashes() {
        let sim = DbmsSim::new();
        let env = Environment::medium(); // 16 GB
        let cfg = sim.space().default_config().with("buffer_pool_gb", 15.5);
        let mut rng = StdRng::seed_from_u64(3);
        let r = sim.run_trial(&cfg, &Workload::tpcc(1000.0), &env, &mut rng);
        assert!(r.crashed);
        assert!(r.latency_avg_ms.is_nan());
    }

    #[test]
    fn bigger_buffer_pool_helps_until_ram() {
        let sim = DbmsSim::new();
        let env = Environment::medium();
        let w = Workload::tpcc(2_000.0);
        let lat = |bp: f64, seed| {
            let cfg = sim.space().default_config().with("buffer_pool_gb", bp);
            avg_result(&sim, &cfg, &w, &env, seed).0
        };
        let small = lat(0.25, 4);
        let medium = lat(4.0, 5);
        let large = lat(12.0, 6);
        assert!(medium < small, "4 GB {medium} should beat 0.25 GB {small}");
        assert!(large < medium, "12 GB {large} should beat 4 GB {medium}");
    }

    #[test]
    fn o_direct_beats_fsync_for_writes() {
        let sim = DbmsSim::new();
        let env = Environment::medium();
        let w = Workload::ycsb_a(2_000.0); // write-heavy
        let lat = |m: &str, seed| {
            let cfg = sim.space().default_config().with("flush_method", m);
            avg_result(&sim, &cfg, &w, &env, seed).0
        };
        let fsync = lat("fsync", 7);
        let direct = lat("O_DIRECT", 8);
        let nosync = lat("nosync", 9);
        assert!(
            direct < fsync,
            "O_DIRECT {direct} should beat fsync {fsync}"
        );
        assert!(nosync < direct, "nosync {nosync} is unsafe but fastest");
    }

    #[test]
    fn flush_method_irrelevant_for_read_only() {
        let sim = DbmsSim::new();
        let env = Environment::medium();
        let w = Workload::ycsb_c(2_000.0);
        let lat = |m: &str, seed| {
            let cfg = sim.space().default_config().with("flush_method", m);
            avg_result(&sim, &cfg, &w, &env, seed).0
        };
        let a = lat("fsync", 10);
        let b = lat("nosync", 11);
        assert!(
            (a - b).abs() / a < 0.1,
            "flush method should not matter read-only: {a} vs {b}"
        );
    }

    #[test]
    fn jit_helps_analytics_hurts_oltp_when_threshold_low() {
        let sim = DbmsSim::new();
        let env = Environment::large();
        let tpch = Workload::tpch(5.0);
        let lat = |jit: bool, threshold: f64, w: &Workload, seed| {
            let mut cfg = sim.space().default_config().with("jit", jit);
            if jit {
                cfg = cfg.with("jit_above_cost", threshold);
            } else {
                cfg.remove("jit_above_cost");
            }
            avg_result(&sim, &cfg, w, &env, seed).0
        };
        let no_jit = lat(false, 0.0, &tpch, 12);
        let good_jit = lat(true, 1e5, &tpch, 13);
        assert!(
            good_jit < no_jit,
            "JIT should speed analytics: {good_jit} vs {no_jit}"
        );
        let low_threshold = lat(true, 2e3, &tpch, 14);
        assert!(
            low_threshold > good_jit,
            "too-low threshold {low_threshold} should tax vs {good_jit}"
        );
    }

    #[test]
    fn query_cache_helps_reads_hurts_writes() {
        let sim = DbmsSim::new();
        let env = Environment::medium();
        let lat = |qc: bool, w: &Workload, seed| {
            let cfg = sim.space().default_config().with("query_cache", qc);
            avg_result(&sim, &cfg, w, &env, seed).0
        };
        let reads = Workload::ycsb_c(2_000.0);
        let writes = Workload::ycsb_a(2_000.0);
        assert!(lat(true, &reads, 15) < lat(false, &reads, 16));
        assert!(lat(true, &writes, 17) > lat(false, &writes, 18));
    }

    #[test]
    fn worker_thread_contention_hump() {
        let sim = DbmsSim::new();
        let env = Environment::medium(); // 4 cores
        let w = Workload::tpcc(3_000.0);
        let lat = |threads: i64, seed| {
            let cfg = sim.space().default_config().with("worker_threads", threads);
            avg_result(&sim, &cfg, &w, &env, seed).0
        };
        let few = lat(2, 19);
        let right = lat(8, 20);
        let too_many = lat(512, 21);
        assert!(right < few, "8 workers {right} should beat 2 {few}");
        assert!(
            too_many > right,
            "512 workers {too_many} should thrash vs {right}"
        );
    }

    #[test]
    fn small_logs_stall_write_workloads() {
        let sim = DbmsSim::new();
        let env = Environment::medium();
        let w = Workload::ycsb_a(2_000.0);
        let lat = |log_mb: f64, seed| {
            let cfg = sim
                .space()
                .default_config()
                .with("log_file_size_mb", log_mb);
            avg_result(&sim, &cfg, &w, &env, seed).0
        };
        assert!(lat(2048.0, 22) < lat(48.0, 23));
    }

    #[test]
    fn chunk_constraint_enforced_by_space() {
        let sim = DbmsSim::new();
        let bad = sim
            .space()
            .default_config()
            .with("buffer_pool_gb", 1.0)
            .with("buffer_pool_instances", 16i64)
            .with("buffer_pool_chunk_gb", 1.0);
        assert!(!sim.space().is_feasible(&bad));
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..50 {
            let c = sim.space().sample(&mut rng);
            assert!(
                sim.space().is_feasible(&c),
                "sampler violated constraint: {c}"
            );
        }
    }

    #[test]
    fn multi_fidelity_shift_io_knobs_matter_only_at_scale() {
        // Slide 66: at SF-1 everything fits in memory — I/O knobs are
        // irrelevant; at SF-10 they dominate.
        let sim = DbmsSim::new();
        let env = Environment::medium();
        let lat_gap = |sf: f64, seeds: (u64, u64)| {
            let w = Workload::tpch(sf);
            let base = sim.space().default_config().with("buffer_pool_gb", 2.0);
            let more_io = base.clone().with("io_threads", 32i64);
            let a = avg_result(&sim, &base, &w, &env, seeds.0).0;
            let b = avg_result(&sim, &more_io, &w, &env, seeds.1).0;
            (a - b) / a
        };
        let gap_small = lat_gap(1.0, (25, 26)).abs();
        let gap_large = lat_gap(10.0, (27, 28));
        assert!(
            gap_large > gap_small + 0.02,
            "I/O knob should matter more at SF-10: {gap_small} vs {gap_large}"
        );
    }
}

#!/usr/bin/env bash
# The tier-1 gate, runnable locally; CI runs the same steps split across
# the build-test / lint / determinism matrix jobs in
# .github/workflows/ci.yml. Everything must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
# unwrap_used stays a warning in editors (per-crate [lints] tables); the
# enforcing gate for panic sites is autotune-lint's D5 below, so keep
# -D warnings from tripping on the documented allow-listed survivors.
cargo clippy --workspace --all-targets -- -D warnings -A clippy::unwrap_used

echo "== rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== static invariants (autotune-lint) =="
# Machine-checks the determinism and panic-safety contracts across every
# crates/*/src file: no wall-clock reads, no hash-ordered containers, no
# unseeded randomness, no NaN-panicking comparisons, no panics or stdout
# in library paths (D1-D6; see DESIGN.md "Static invariants").
cargo run -q --release -p autotune-lint -- --deny-all

echo "== fault determinism (release) =="
# The resilience stack (retries, timeouts, quarantine) must keep the
# byte-identical k=1 schedule-policy contract; run its regression test
# against the optimized build, where any wall-clock/thread-timing leak
# would surface.
cargo test -q --release -p autotune-tests --test fault_resilience

echo "== serve determinism (release) =="
# ISSUE 6 acceptance: interleaving campaigns through the serving layer —
# any worker count, any round schedule, snapshot/resume mid-flight,
# through the wire protocol — must leave every campaign's history
# byte-identical to running it alone. Checked against the optimized
# build, where a thread-order leak in the wave fan-out would surface.
cargo test -q --release -p autotune-serve -- determinism

echo "== chaos recovery determinism (release) =="
# ISSUE 7 acceptance: crash the durable fleet at chaos-chosen WAL
# appends (pre-append, mid-append/torn-write, post-append-pre-ack),
# inject worker panics, recover from the log, and demand byte-identical
# campaign histories; fuzz the frame codec (truncation, bit flips,
# oversized prefixes must be typed errors, never panics); shed overload
# without perturbing accepted campaigns.
cargo test -q --release -p autotune-serve
cargo test -q --release -p autotune-tests --test serve_robustness

echo "== chaos recovery E34 (release, two chaos seeds) =="
# The 128-campaign chaos drive: repeated simulated crashes + reopens
# across two chaos seeds must leave 128/128 recovered histories
# byte-identical, with torn WAL tails truncated, not fatal.
cargo run -q --release -p autotune-bench --bin repro -- e34

echo "== telemetry purity (release) =="
# ISSUE 3 acceptance: enabling every telemetry subscriber leaves k=1
# campaigns byte-identical.
cargo test -q --release -p autotune-tests --test telemetry

echo "== perf smoke (incremental suggest path) =="
# ISSUE 4 acceptance: mean suggest time per trial at n=500 on the
# incremental path must stay within 2x of tools/perf_baseline.json —
# a cheap tripwire against reintroducing an O(n³) fit per suggestion.
cargo run -q --release -p autotune-bench --bin perf_smoke

echo "CI gate passed."

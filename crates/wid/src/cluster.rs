//! K-means clustering of workload embeddings.
//!
//! Groups workloads into families so one tuned configuration can serve a
//! whole cluster (slide 88: "optimize one system, reuse on similar ones").
//! K-means++ seeding plus Lloyd iterations; deterministic under a seed.

use crate::{Fingerprint, Result, WidError};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    /// Training-set assignments (cluster index per input row).
    assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    inertia: f64,
}

impl KMeans {
    /// Fits `k` clusters to `points` (rows), deterministically per seed.
    pub fn fit(points: &[Vec<f64>], k: usize, seed: u64) -> Result<Self> {
        if points.len() < k || k == 0 {
            return Err(WidError::NotEnoughData {
                what: "k-means",
                needed: k.max(1),
                got: points.len(),
            });
        }
        let d = points[0].len();
        for p in points {
            if p.len() != d {
                return Err(WidError::DimensionMismatch {
                    expected: d,
                    actual: p.len(),
                });
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut inertia = f64::INFINITY;
        for _iter in 0..100 {
            // Assign.
            let mut changed = false;
            let mut new_inertia = 0.0;
            for (i, p) in points.iter().enumerate() {
                let (best, dist) = nearest(&centroids, p);
                new_inertia += dist;
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            inertia = new_inertia;
            if !changed {
                break;
            }
            // Update.
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignments) {
                autotune_linalg::axpy(1.0, p, &mut sums[a]);
                counts[a] += 1;
            }
            // Re-seed empty clusters at the point farthest from any
            // current centroid (computed before mutation to keep the
            // borrow checker and the semantics honest).
            let far = points
                .iter()
                .max_by(|a, b| {
                    let da = nearest(&centroids, a).1;
                    let db = nearest(&centroids, b).1;
                    da.total_cmp(&db)
                })
                .expect("points non-empty") // lint: allow(D5) fit() rejects empty inputs at entry
                .clone();
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    *c = sum.iter().map(|s| s / count as f64).collect();
                } else {
                    *c = far.clone();
                }
            }
        }
        Ok(KMeans {
            centroids,
            assignments,
            inertia,
        })
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Training-set assignments.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Final inertia (sum of squared distances).
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Predicts the cluster of a new point.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest(&self.centroids, point).0
    }
}

/// One centroid of a [`StreamingClusters`] model: a running mean over the
/// fingerprints assigned to it so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCentroid {
    mean: Vec<f64>,
    /// Number of fingerprints folded into the running mean.
    n: u64,
}

impl StreamCentroid {
    /// Current centroid position.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Number of assignments absorbed.
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// Result of assigning one fingerprint to a [`StreamingClusters`] model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamAssignment {
    /// Index of the workload family the fingerprint was assigned to.
    pub family: usize,
    /// Euclidean distance to the family centroid *before* the running-mean
    /// update (0 for a freshly spawned family).
    pub distance: f64,
    /// True if this assignment spawned a new family.
    pub spawned: bool,
}

/// Streaming online clustering of workload fingerprints.
///
/// Each incoming fingerprint is assigned to its nearest existing centroid
/// (Euclidean distance, lowest index wins ties); when the nearest centroid
/// is farther than `threshold` — or no centroid exists yet — a new family
/// is spawned at the fingerprint. Assigned centroids track the running mean
/// of their members, so families drift toward the true workload center.
///
/// The model is a pure function of the assignment order: no randomness, no
/// hash iteration, no clocks. Replaying the same fingerprint sequence
/// reproduces byte-identical state, which is what lets the serve layer
/// journal assignments in its WAL and rebuild the model on recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingClusters {
    threshold: f64,
    centroids: Vec<StreamCentroid>,
}

impl StreamingClusters {
    /// Creates an empty model that spawns a new family whenever the
    /// nearest centroid is farther than `threshold` (Euclidean).
    ///
    /// # Panics
    /// Panics if `threshold` is not finite and positive.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "streaming cluster threshold must be finite and positive"
        );
        StreamingClusters {
            threshold,
            centroids: Vec::new(),
        }
    }

    /// The spawn threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of families spawned so far.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// True if no fingerprint has been assigned yet.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// The centroids, indexed by family id.
    pub fn centroids(&self) -> &[StreamCentroid] {
        &self.centroids
    }

    /// Non-mutating nearest-family query: `(family, distance)` of the
    /// closest centroid within the threshold, or `None` if the fingerprint
    /// would spawn a new family. Used by read-only cache lookups that must
    /// not perturb the model.
    pub fn classify(&self, fp: &Fingerprint) -> Option<(usize, f64)> {
        let (family, d2) = nearest_checked(&self.centroids, fp.features())?;
        let dist = d2.sqrt();
        if dist <= self.threshold {
            Some((family, dist))
        } else {
            None
        }
    }

    /// Assigns `fp` to its nearest family, spawning a new one past the
    /// threshold, and folds it into the winning centroid's running mean.
    ///
    /// # Panics
    /// Panics if `fp`'s dimension disagrees with existing centroids.
    pub fn assign(&mut self, fp: &Fingerprint) -> StreamAssignment {
        let x = fp.features();
        match nearest_checked(&self.centroids, x) {
            Some((family, d2)) if d2.sqrt() <= self.threshold => {
                let c = &mut self.centroids[family];
                c.n += 1;
                let inv = 1.0 / c.n as f64;
                for (m, &xi) in c.mean.iter_mut().zip(x) {
                    *m += (xi - *m) * inv;
                }
                StreamAssignment {
                    family,
                    distance: d2.sqrt(),
                    spawned: false,
                }
            }
            _ => {
                self.centroids.push(StreamCentroid {
                    mean: x.to_vec(),
                    n: 1,
                });
                StreamAssignment {
                    family: self.centroids.len() - 1,
                    distance: 0.0,
                    spawned: true,
                }
            }
        }
    }
}

/// Returns `(index, squared_distance)` of the nearest streaming centroid,
/// or `None` when there are no centroids. Lowest index wins exact ties
/// because the scan keeps the first strict minimum.
fn nearest_checked(centroids: &[StreamCentroid], x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in centroids.iter().enumerate() {
        assert_eq!(
            c.mean.len(),
            x.len(),
            "fingerprint dimension mismatch against centroid"
        );
        let d = autotune_linalg::squared_distance(&c.mean, x);
        match best {
            Some((_, bd)) if d >= bd => {}
            _ => best = Some((i, d)),
        }
    }
    best
}

/// Returns `(index, squared_distance)` of the nearest centroid.
fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = autotune_linalg::squared_distance(c, p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// K-means++ seeding: spread the initial centroids proportionally to
/// squared distance from those already chosen.
fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points.iter().map(|p| nearest(&centroids, p).1).collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids: duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, &d) in dists.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

/// Clustering purity against known labels: the fraction of points whose
/// cluster's majority label matches their own. 1.0 = perfect.
pub fn purity(assignments: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignments.len(), labels.len(), "purity: length mismatch");
    if assignments.is_empty() {
        return 1.0;
    }
    let k = assignments.iter().max().map_or(0, |&m| m + 1);
    let l = labels.iter().max().map_or(0, |&m| m + 1);
    let mut counts = vec![vec![0usize; l]; k];
    for (&a, &lab) in assignments.iter().zip(labels) {
        counts[a][lab] += 1;
    }
    let majority_sum: usize = counts
        .iter()
        .map(|row| row.iter().max().copied().unwrap_or(0))
        .sum();
    majority_sum as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn blobs(
        centers: &[Vec<f64>],
        per: usize,
        spread: f64,
        seed: u64,
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (li, c) in centers.iter().enumerate() {
            for _ in 0..per {
                let p: Vec<f64> = c
                    .iter()
                    .map(|&x| x + spread * (rng.gen::<f64>() - 0.5))
                    .collect();
                pts.push(p);
                labels.push(li);
            }
        }
        (pts, labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let centers = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]];
        let (pts, labels) = blobs(&centers, 30, 1.0, 1);
        let km = KMeans::fit(&pts, 3, 42).unwrap();
        assert!(purity(km.assignments(), &labels) > 0.95);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let centers = vec![vec![0.0], vec![100.0]];
        let (pts, _) = blobs(&centers, 10, 1.0, 2);
        let km = KMeans::fit(&pts, 2, 3).unwrap();
        for (p, &a) in pts.iter().zip(km.assignments()) {
            assert_eq!(km.predict(p), a);
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let centers = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![10.0, 0.0]];
        let (pts, _) = blobs(&centers, 20, 2.0, 4);
        let i1 = KMeans::fit(&pts, 1, 5).unwrap().inertia();
        let i3 = KMeans::fit(&pts, 3, 5).unwrap().inertia();
        assert!(i3 < i1 * 0.5, "inertia k=3 {i3} vs k=1 {i1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (pts, _) = blobs(&[vec![0.0], vec![8.0]], 15, 1.0, 6);
        let a = KMeans::fit(&pts, 2, 7).unwrap();
        let b = KMeans::fit(&pts, 2, 7).unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn too_few_points_rejected() {
        let pts = vec![vec![1.0]];
        assert!(matches!(
            KMeans::fit(&pts, 2, 0),
            Err(WidError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn purity_extremes() {
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        assert_eq!(purity(&[0, 1, 0, 1], &[0, 0, 1, 1]), 0.5);
        assert_eq!(purity(&[], &[]), 1.0);
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let km = KMeans::fit(&pts, 2, 8).unwrap();
        assert_eq!(km.assignments().len(), 10);
        assert!(km.inertia() < 1e-12);
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::from_features(v.to_vec())
    }

    #[test]
    fn streaming_spawns_and_assigns() {
        let mut sc = StreamingClusters::new(1.0);
        assert!(sc.is_empty());
        let a = sc.assign(&fp(&[0.0, 0.0]));
        assert!(a.spawned);
        assert_eq!(a.family, 0);
        // Within threshold: joins family 0.
        let b = sc.assign(&fp(&[0.5, 0.0]));
        assert!(!b.spawned);
        assert_eq!(b.family, 0);
        // Far away: spawns family 1.
        let c = sc.assign(&fp(&[10.0, 0.0]));
        assert!(c.spawned);
        assert_eq!(c.family, 1);
        assert_eq!(sc.len(), 2);
    }

    #[test]
    fn streaming_running_mean_updates() {
        let mut sc = StreamingClusters::new(10.0);
        sc.assign(&fp(&[0.0]));
        sc.assign(&fp(&[2.0]));
        assert_eq!(sc.centroids()[0].mean(), &[1.0]);
        assert_eq!(sc.centroids()[0].n(), 2);
        sc.assign(&fp(&[4.0]));
        assert_eq!(sc.centroids()[0].mean(), &[2.0]);
    }

    #[test]
    fn streaming_classify_is_pure() {
        let mut sc = StreamingClusters::new(1.0);
        sc.assign(&fp(&[0.0, 0.0]));
        let before = sc.clone();
        assert_eq!(sc.classify(&fp(&[0.5, 0.0])).map(|(f, _)| f), Some(0));
        assert_eq!(sc.classify(&fp(&[5.0, 0.0])), None);
        assert_eq!(sc, before, "classify must not mutate the model");
    }

    #[test]
    fn streaming_tie_breaks_to_lowest_index() {
        let mut sc = StreamingClusters::new(0.5);
        sc.assign(&fp(&[0.0]));
        sc.assign(&fp(&[0.8])); // spawns family 1 (distance 0.8 > 0.5)
                                // Equidistant point: family 0 must win.
        let a = sc.classify(&fp(&[0.4]));
        assert_eq!(a.map(|(f, _)| f), Some(0));
    }

    #[test]
    fn streaming_replay_is_byte_identical() {
        let seq: Vec<Fingerprint> = (0..50)
            .map(|i| fp(&[(i % 7) as f64 * 3.0, (i % 5) as f64]))
            .collect();
        let mut a = StreamingClusters::new(2.0);
        let mut b = StreamingClusters::new(2.0);
        let ra: Vec<_> = seq.iter().map(|f| a.assign(f)).collect();
        let rb: Vec<_> = seq.iter().map(|f| b.assign(f)).collect();
        assert_eq!(ra, rb);
        assert_eq!(a, b);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb);
        let back: StreamingClusters = serde_json::from_str(&ja).unwrap();
        assert_eq!(back, a);
    }
}

//! Cross-crate integration: fault injection (`autotune_sim::FaultPlan`)
//! composed with the resilient executor stack (`RetryMw`, `TimeoutMw`,
//! `QuarantineMw`).
//!
//! The determinism test here is the CI gate for the fault layer: the PR 1
//! contract — `Sequential`, `SyncBatch{k:1}` and `AsyncSlots{k:1}` are
//! byte-identical — must survive retries, timeouts and quarantine, all of
//! which are driven by `(seed, trial, attempt)` rather than wall-clock or
//! thread timing.

use autotune::executor::{
    CrashPenaltyMw, Executor, MachineAssignMw, OptimizerSource, QuarantineMw, RetryMw,
    SchedulePolicy, TimeoutMw,
};
use autotune::{Target, TrialStatus, TrialStorage};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{CloudNoise, FaultPlan, NoiseConfig};
use autotune_tests::redis_target;

const N_MACHINES: usize = 6;

fn faulty_target(seed: u64) -> Target {
    redis_target()
        .with_noise(CloudNoise::new_fleet(
            N_MACHINES,
            NoiseConfig::default(),
            seed,
        ))
        .with_faults(
            FaultPlan::aggressive(seed)
                .with_sick_machine(1, 6.0)
                .with_outage(3, 0.0, 1_500.0),
        )
}

fn run_resilient(seed: u64, policy: SchedulePolicy, budget: usize) -> (TrialStorage, usize) {
    let target = faulty_target(seed);
    let mut opt = BayesianOptimizer::gp(target.space().clone());
    let mut source = OptimizerSource::new(&mut opt, budget);
    let mut storage = TrialStorage::new();
    let report = Executor::new(&target, policy)
        .with_middleware(Box::new(MachineAssignMw::round_robin(N_MACHINES)))
        .with_middleware(Box::new(QuarantineMw::with_defaults(N_MACHINES)))
        .with_middleware(Box::new(RetryMw::new(3, 5.0)))
        .with_middleware(Box::new(TimeoutMw::new(150.0)))
        .with_middleware(Box::new(CrashPenaltyMw::new(1e9)))
        .run(&mut source, &mut storage, seed);
    (storage, report.n_retried)
}

/// The fault-determinism regression test CI runs in `--release`:
/// identical seeds must give byte-identical trial histories across all
/// three single-slot schedule policies, faults and resilience included.
#[test]
fn fault_campaigns_are_byte_identical_across_k1_policies() {
    for seed in [2, 47] {
        let (seq, seq_retries) = run_resilient(seed, SchedulePolicy::Sequential, 24);
        let (sync1, _) = run_resilient(seed, SchedulePolicy::SyncBatch { k: 1 }, 24);
        let (async1, async_retries) = run_resilient(seed, SchedulePolicy::AsyncSlots { k: 1 }, 24);
        assert_eq!(seq.to_json(), sync1.to_json(), "seed {seed}: sync differs");
        assert_eq!(
            seq.to_json(),
            async1.to_json(),
            "seed {seed}: async differs"
        );
        assert_eq!(
            seq_retries, async_retries,
            "seed {seed}: retry counts differ"
        );
    }
}

/// Re-running the identical campaign replays it exactly (faults, retries,
/// quarantine decisions and all).
#[test]
fn fault_campaigns_replay_exactly() {
    let (a, _) = run_resilient(9, SchedulePolicy::AsyncSlots { k: 3 }, 30);
    let (b, _) = run_resilient(9, SchedulePolicy::AsyncSlots { k: 3 }, 30);
    assert_eq!(a.to_json(), b.to_json());
}

/// The resilient stack keeps the campaign productive under an aggressive
/// fault plan: most trials still complete, retries fire, and the learner
/// still finds a competitive optimum.
#[test]
fn resilient_stack_survives_aggressive_faults() {
    let (storage, n_retried) = run_resilient(5, SchedulePolicy::AsyncSlots { k: 2 }, 40);
    assert_eq!(storage.len(), 40);
    assert!(n_retried > 0, "aggressive plan should trigger retries");
    let complete = storage
        .trials()
        .iter()
        .filter(|t| t.status == TrialStatus::Complete)
        .count();
    assert!(
        complete >= 20,
        "retries should keep most trials alive: {complete}/40"
    );
    // Transient losses are recorded as such, not as config crashes.
    assert!(storage.n_transient_failures() < 40 - complete + 1);
    assert!(storage.best().is_some());
}

/// A session-level campaign on a faulty target surfaces the fault
/// counters in its summary.
#[test]
fn session_summary_reports_fault_counters() {
    use autotune::{SessionConfig, TuningSession};
    use autotune_optimizer::RandomSearch;
    let target = redis_target().with_faults(FaultPlan::aggressive(17));
    let opt = RandomSearch::new(target.space().clone());
    let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
    let summary = session.run(40, 17).expect("some trials survive");
    // No retry middleware in a plain session: transient losses surface
    // directly, with zero retries and zero quarantines.
    assert!(summary.n_transient > 0);
    assert_eq!(summary.n_retried, 0);
    assert_eq!(summary.n_quarantined_machines, 0);
    assert!(summary.best_cost.is_finite());
}

#!/usr/bin/env bash
# The tier-1 gate, runnable locally and from CI: build, test, format,
# lint. Everything must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."

//! Configuration-space definition for systems autotuning.
//!
//! A *configuration space* ("search space") describes the tunable knobs of a
//! system: their types (continuous, integer, quantized, categorical,
//! boolean), scales (linear or logarithmic), priors, special values,
//! conditional structure (a knob only matters when a parent knob enables
//! it), and cross-knob constraints (e.g. MySQL's
//! `innodb_buffer_pool_chunk_size <= innodb_buffer_pool_size /
//! innodb_buffer_pool_instances`).
//!
//! The space also owns the *encodings* optimizers operate on:
//!
//! * [`Space::encode_unit`] — one dimension per parameter, everything mapped
//!   into `[0, 1]` (categoricals as normalized index). Used by random
//!   forests, evolutionary algorithms, and random projections.
//! * [`Space::encode_onehot`] — categoricals expanded to one-hot indicator
//!   dimensions. Used by Gaussian-process surrogates, where an artificial
//!   order over categories would corrupt the kernel distances.
//!
//! # Example
//!
//! ```
//! use autotune_space::{Space, Param, Value};
//!
//! let space = Space::builder()
//!     .add(Param::float("buffer_pool_gb", 0.5, 16.0).log_scale())
//!     .add(Param::categorical("flush_method", &["fsync", "O_DIRECT", "O_DSYNC"]))
//!     .add(Param::int("io_threads", 1, 64))
//!     .build()
//!     .unwrap();
//!
//! let mut rng = rand::thread_rng();
//! let config = space.sample(&mut rng);
//! let x = space.encode_unit(&config).unwrap();
//! assert_eq!(x.len(), 3);
//! let back = space.decode_unit(&x).unwrap();
//! assert_eq!(config.get("flush_method"), back.get("flush_method"));
//! ```

mod condition;
mod config;
mod constraint;
mod param;
#[allow(clippy::module_inception)]
mod space;

pub use condition::Condition;
pub use config::{Config, Value};
pub use constraint::Constraint;
pub use param::{Domain, Param, Prior};
pub use space::{Space, SpaceBuilder};

/// Errors produced when defining or using a configuration space.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// A parameter name appears twice in the space.
    DuplicateParam(String),
    /// A referenced parameter does not exist.
    UnknownParam(String),
    /// A parameter's bounds are inverted or empty.
    InvalidDomain {
        /// Offending parameter.
        param: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A value has the wrong type or is out of range for its parameter.
    InvalidValue {
        /// Offending parameter.
        param: String,
        /// What is wrong with it.
        reason: String,
    },
    /// An encoded vector has the wrong length for this space.
    EncodingLength {
        /// What the space expected.
        expected: usize,
        /// What the caller supplied.
        actual: usize,
    },
    /// A condition references itself or forms a cycle.
    ConditionCycle(String),
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::DuplicateParam(p) => write!(f, "duplicate parameter '{p}'"),
            SpaceError::UnknownParam(p) => write!(f, "unknown parameter '{p}'"),
            SpaceError::InvalidDomain { param, reason } => {
                write!(f, "invalid domain for '{param}': {reason}")
            }
            SpaceError::InvalidValue { param, reason } => {
                write!(f, "invalid value for '{param}': {reason}")
            }
            SpaceError::EncodingLength { expected, actual } => {
                write!(
                    f,
                    "encoding length mismatch: expected {expected}, got {actual}"
                )
            }
            SpaceError::ConditionCycle(p) => {
                write!(f, "conditional dependency cycle involving '{p}'")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// Convenience alias for results from this crate.
pub type Result<T> = std::result::Result<T, SpaceError>;

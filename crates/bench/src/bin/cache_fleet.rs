//! Perf trajectory for the config cache: hit rate, regret-free serving
//! counters, and raw concurrent lookup throughput.
//!
//! Drives the E35 Zipf tenant fleet (12 families, 300 tenants; see
//! `experiments::e35_cache`) through a `TenantRouter`, then hammers
//! the warmed [`ShardedCache`] from several thread counts and records a
//! machine-readable trajectory:
//!
//! * `BENCH_cache.json` — the deterministic serving outcome (hit rate,
//!   families, backfills, evictions — reproducible on any host) plus
//!   real lookups/second per thread count, and a `trajectory` array that
//!   `tools/bench_record.sh` appends one `{commit, date, metrics}` row
//!   to on every CI run, arming the perf-regression tripwire.
//!
//! The release gate: single-process concurrent lookups must sustain
//! ≥ 1 M/s, the tentpole's "sub-microsecond read path" claim. The bin
//! exits nonzero when the gate fails (debug builds skip it).
//!
//! ```text
//! cargo run -p autotune-bench --release --bin cache_fleet
//! ```

use autotune_bench::experiments::e35_cache::{
    drive_stream, fleet_config, router_config, N_REQUESTS,
};
use autotune_cache::ShardedCache;
use autotune_wid::TenantFleet;
use std::sync::Arc;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const LOOKUPS_PER_THREAD: usize = 500_000;

fn throughput(cache: &Arc<ShardedCache>, hot: &[Vec<f64>], threads: usize) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|ti| {
            let cache = Arc::clone(cache);
            let hot = hot.to_vec();
            std::thread::spawn(move || {
                for i in 0..LOOKUPS_PER_THREAD {
                    let fp = &hot[(ti + i) % hot.len()];
                    std::hint::black_box(cache.lookup(fp));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("throughput thread");
    }
    (threads * LOOKUPS_PER_THREAD) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let fleet_cfg = fleet_config();
    let fleet = TenantFleet::generate(&fleet_cfg).expect("fleet");
    let dir = std::env::temp_dir().join(format!("autotune-cache-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!(
        "driving {} Zipf requests over {} tenants / {} families...",
        N_REQUESTS, fleet_cfg.n_tenants, fleet_cfg.n_families
    );
    let start = Instant::now();
    let (router, hits, misses) = drive_stream(&dir, &fleet, router_config(&fleet_cfg), N_REQUESTS);
    let drive_s = start.elapsed().as_secs_f64();
    let hit_rate = hits as f64 / (hits + misses) as f64;
    let stats = router.cache_stats();
    println!(
        "stream: {:.2}% hit rate ({hits} hits / {misses} misses), {} families, {} backfills, {} evictions, {:.2}s real",
        hit_rate * 100.0,
        stats.families,
        stats.backfills,
        stats.evictions,
        drive_s
    );

    let cache = Arc::clone(router.cache());
    let hot: Vec<Vec<f64>> = fleet
        .tenants()
        .iter()
        .take(32)
        .map(|t| t.fingerprint.features().to_vec())
        .collect();
    let mut points = Vec::new();
    for threads in THREAD_COUNTS {
        let rate = throughput(&cache, &hot, threads);
        println!(
            "lookup throughput: {threads} thread(s)  {:>8.2} M/s",
            rate / 1e6
        );
        points.push((threads, rate));
    }
    drop(router);
    let _ = std::fs::remove_dir_all(&dir);

    let best_rate = points.iter().map(|&(_, r)| r).fold(0.0, f64::max);
    let rows: Vec<String> = points
        .iter()
        .map(|(threads, rate)| {
            format!("    {{ \"threads\": {threads}, \"lookups_per_s\": {rate:.0} }}")
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"cache_fleet: E35 Zipf tenant fleet through TenantRouter + ShardedCache\",\n  \"note\": \"hit/miss/family counts are deterministic; lookups_per_s is host-dependent; trajectory rows are appended by tools/bench_record.sh\",\n  \"requests\": {N_REQUESTS},\n  \"tenants\": {},\n  \"families_ground_truth\": {},\n  \"hit_rate\": {hit_rate:.4},\n  \"hits\": {hits},\n  \"misses\": {misses},\n  \"families_spawned\": {},\n  \"backfills\": {},\n  \"evictions\": {},\n  \"lookup_points\": [\n{}\n  ],\n  \"trajectory\": []\n}}\n",
        fleet_cfg.n_tenants,
        fleet_cfg.n_families,
        stats.families,
        stats.backfills,
        stats.evictions,
        rows.join(",\n")
    );
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    println!("wrote BENCH_cache.json ({} thread counts)", points.len());

    if hit_rate < 0.95 {
        eprintln!("FAIL: hit rate {:.2}% below the 95% gate", hit_rate * 100.0);
        std::process::exit(1);
    }
    if cfg!(debug_assertions) {
        println!("debug build: skipping the 1 M lookups/s release gate");
    } else if best_rate < 1_000_000.0 {
        eprintln!(
            "FAIL: best lookup throughput {:.0}/s below the 1 M/s release gate",
            best_rate
        );
        std::process::exit(1);
    }
}

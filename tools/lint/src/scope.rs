//! Test-scope tracking over the token stream.
//!
//! Every diagnostic exempts test code: a `#[cfg(test)]` module, a
//! `#[test]` function, or anything nested inside either. Rather than
//! building a full item tree, this pass walks the tokens once, arms on a
//! test-gating attribute, and marks the brace-delimited body of the next
//! item as a test region (tracked by brace depth, so nested braces and
//! nested regions work out naturally).

use crate::lexer::{Tok, TokKind};

/// Returns, per token, whether that token sits inside test-gated code.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut depth: usize = 0;
    // Brace depths at which an active test region started; non-empty =>
    // currently inside test code.
    let mut regions: Vec<usize> = Vec::new();
    // Set after seeing a test-gating attribute, until the gated item's
    // opening `{` (or a `;` for a braceless item, which disarms).
    let mut armed = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_comment() {
            mask[i] = !regions.is_empty();
            i += 1;
            continue;
        }
        // Attribute: `#[...]` or `#![...]` — scan its bracketed tokens.
        if t.is_punct('#') {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_punct('!') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('[') {
                let (end, is_test) = scan_attribute(toks, j);
                if is_test {
                    armed = true;
                }
                let in_test = !regions.is_empty();
                for m in &mut mask[i..end.min(toks.len())] {
                    *m = in_test;
                }
                i = end;
                continue;
            }
        }
        mask[i] = !regions.is_empty();
        match t.kind {
            TokKind::Punct if t.is_punct('{') => {
                if armed {
                    regions.push(depth);
                    armed = false;
                    // The body of the gated item is test code even though
                    // the brace itself was marked with the outer scope.
                }
                depth += 1;
            }
            TokKind::Punct if t.is_punct('}') => {
                depth = depth.saturating_sub(1);
                if regions.last() == Some(&depth) {
                    regions.pop();
                }
            }
            TokKind::Punct if t.is_punct(';') => {
                // `#[cfg(test)] use ...;` — attribute on a braceless item.
                armed = false;
            }
            _ => {}
        }
        i += 1;
    }
    mask
}

/// Scans the attribute starting at the `[` token `open`; returns the index
/// just past the matching `]` and whether the attribute gates test code.
///
/// "Gates test code" means `#[test]`-like (`test` as the sole path
/// segment) or a `cfg`/`cfg_attr` whose predicate mentions `test` without
/// a `not(..)` (so `#[cfg(not(test))]` does not arm).
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut ident_count = 0usize;
    let mut first_ident_is_test = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            ident_count += 1;
            match t.text.as_str() {
                "cfg" | "cfg_attr" => saw_cfg = true,
                "not" => saw_not = true,
                "test" => {
                    saw_test = true;
                    if ident_count == 1 {
                        first_ident_is_test = true;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    let bare_test = first_ident_is_test && ident_count == 1;
    let cfg_test = saw_cfg && saw_test && !saw_not;
    (j, bare_test || cfg_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Returns the in-test flag for the first token matching `ident`.
    fn flag_of(src: &str, ident: &str) -> bool {
        let toks = lex(src);
        let mask = test_mask(&toks);
        let idx = toks
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        mask[idx]
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src =
            "fn lib() { a(); }\n#[cfg(test)]\nmod tests { fn t() { b(); } }\nfn lib2() { c(); }";
        assert!(!flag_of(src, "a"));
        assert!(flag_of(src, "b"));
        assert!(!flag_of(src, "c"));
    }

    #[test]
    fn test_fn_is_exempt() {
        let src = "#[test]\nfn check() { inner(); }\nfn lib() { outer(); }";
        assert!(flag_of(src, "inner"));
        assert!(!flag_of(src, "outer"));
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let src = "#[cfg(not(test))]\nfn lib() { a(); }";
        assert!(!flag_of(src, "a"));
    }

    #[test]
    fn braceless_gated_item_disarms() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { a(); }";
        assert!(!flag_of(src, "a"));
    }

    #[test]
    fn nested_braces_stay_inside_region() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { if x { y(); } }\n}\nfn lib() { z(); }";
        assert!(flag_of(src, "y"));
        assert!(!flag_of(src, "z"));
    }

    #[test]
    fn should_panic_attr_does_not_arm() {
        // `#[should_panic(expected = "boom")]` mentions neither cfg nor a
        // bare `test` path; it must not exempt following library code.
        let src = "#[should_panic(expected = \"x\")]\nfn lib() { a(); }";
        assert!(!flag_of(src, "a"));
    }
}

//! Noise-mitigation strategies (tutorial slides 70-71).
//!
//! Cloud measurements are noisy; the tutorial surveys four responses, all
//! implemented here as *measurement policies* that turn one logical trial
//! into one score:
//!
//! * [`NoiseStrategy::Single`] — take the raw measurement (the naïve
//!   baseline);
//! * [`NoiseStrategy::Repeat`] — run N times, report the aggregate
//!   ("costly" — the cost shows up in elapsed-time accounting);
//! * [`NoiseStrategy::Duet`] — run the candidate *and* the incumbent
//!   baseline side by side on the same machine at the same time and score
//!   the normalized relative difference, cancelling machine and temporal
//!   noise (Duet benchmarking, ICPE 2020);
//! * [`NoiseStrategy::Tuna`] — TUNA (EuroSys 2025): replicate across
//!   distinct machines, drop statistical outliers, report a trimmed mean —
//!   sampling noise across the fleet instead of being ambushed by it.

use crate::target::Target;
use autotune_space::Config;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// How a logical trial is measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoiseStrategy {
    /// One raw measurement.
    Single,
    /// `n` measurements aggregated by mean (or median).
    Repeat {
        /// Number of repetitions.
        n: usize,
        /// Use the median instead of the mean.
        median: bool,
    },
    /// Candidate and baseline measured on the same machine; score is
    /// `baseline_cost * candidate/paired_baseline` — i.e. the relative
    /// difference re-anchored to the baseline's nominal cost.
    Duet,
    /// Replicate across `replicas` distinct machines, drop measurements
    /// more than `outlier_sigmas` from the replica mean, average the rest.
    Tuna {
        /// Distinct machines to sample.
        replicas: usize,
        /// Outlier rejection threshold in standard deviations.
        outlier_sigmas: f64,
    },
}

impl NoiseStrategy {
    /// Number of benchmark executions one logical trial costs.
    pub fn runs_per_trial(&self) -> usize {
        match self {
            NoiseStrategy::Single => 1,
            NoiseStrategy::Repeat { n, .. } => (*n).max(1),
            NoiseStrategy::Duet => 2,
            NoiseStrategy::Tuna { replicas, .. } => (*replicas).max(1),
        }
    }

    /// Measures `config` on `target`, returning `(cost, total_elapsed_s)`.
    ///
    /// `baseline` is the incumbent configuration used by the duet
    /// strategy; other strategies ignore it.
    pub fn measure(
        &self,
        target: &Target,
        config: &Config,
        baseline: &Config,
        rng: &mut dyn RngCore,
    ) -> (f64, f64) {
        let mut rng = rng;
        match self {
            NoiseStrategy::Single => {
                let e = target.evaluate(config, &mut rng);
                (e.cost, e.result.elapsed_s)
            }
            NoiseStrategy::Repeat { n, median } => {
                let mut costs = Vec::with_capacity(*n);
                let mut elapsed = 0.0;
                for _ in 0..(*n).max(1) {
                    let e = target.evaluate(config, &mut rng);
                    elapsed += e.result.elapsed_s;
                    if e.cost.is_finite() {
                        costs.push(e.cost);
                    }
                }
                if costs.is_empty() {
                    return (f64::NAN, elapsed);
                }
                let agg = if *median {
                    autotune_linalg::stats::median(&costs)
                } else {
                    autotune_linalg::stats::mean(&costs)
                };
                (agg, elapsed)
            }
            NoiseStrategy::Duet => {
                // Same machine, same time slot: the shared noise factor
                // (machine speed, drift, spikes) hits both runs and
                // divides out of the ratio.
                let (cand, base) = target.evaluate_pair(config, baseline, &mut rng);
                let elapsed = cand.result.elapsed_s + base.result.elapsed_s;
                if !cand.cost.is_finite() || !base.cost.is_finite() || base.cost == 0.0 {
                    return (f64::NAN, elapsed);
                }
                (cand.cost / base.cost, elapsed)
            }
            NoiseStrategy::Tuna {
                replicas,
                outlier_sigmas,
            } => {
                let n = (*replicas).max(1);
                let mut costs = Vec::with_capacity(n);
                let mut elapsed = 0.0;
                let fleet_size = target.noise().map(|f| f.n_machines());
                for i in 0..n {
                    let e = match fleet_size {
                        // Stride over the fleet so replicas land on
                        // distinct machines.
                        Some(sz) => {
                            let m = (rng.gen_range(0..sz) + i * 7) % sz;
                            target.evaluate_on_machine(config, m, &mut rng)
                        }
                        None => target.evaluate(config, &mut rng),
                    };
                    elapsed += e.result.elapsed_s;
                    if e.cost.is_finite() {
                        costs.push(e.cost);
                    }
                }
                if costs.is_empty() {
                    return (f64::NAN, elapsed);
                }
                // Robust outlier rejection anchored at the median with a
                // MAD scale: a mean/stddev anchor is itself dragged by the
                // very spikes it is supposed to reject.
                let med = autotune_linalg::stats::median(&costs);
                let abs_dev: Vec<f64> = costs.iter().map(|c| (c - med).abs()).collect();
                let mad = autotune_linalg::stats::median(&abs_dev);
                let scale = 1.4826 * mad; // MAD -> sigma for Gaussians
                let kept: Vec<f64> = if scale > 0.0 {
                    costs
                        .iter()
                        .cloned()
                        .filter(|c| ((c - med) / scale).abs() <= *outlier_sigmas)
                        .collect()
                } else {
                    costs.clone()
                };
                if kept.is_empty() {
                    (med, elapsed)
                } else {
                    (autotune_linalg::stats::mean(&kept), elapsed)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use autotune_sim::{CloudNoise, Environment, NoiseConfig, RedisSim, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_target(machine_sigma: f64, seed: u64) -> Target {
        Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(10_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        )
        .with_noise(CloudNoise::new_fleet(
            16,
            NoiseConfig {
                machine_sigma,
                drift_amplitude: 0.05,
                spike_probability: 0.02,
                ..Default::default()
            },
            seed,
        ))
    }

    /// Standard deviation of repeated measurements of the same config.
    fn measurement_sd(strategy: &NoiseStrategy, target: &Target, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = target.space().default_config();
        let baseline = target.space().default_config();
        let scores: Vec<f64> = (0..20)
            .map(|_| strategy.measure(target, &cfg, &baseline, &mut rng).0)
            .filter(|c| c.is_finite())
            .collect();
        autotune_linalg::stats::std_dev(&scores) / autotune_linalg::stats::mean(&scores).abs()
    }

    #[test]
    fn repeat_reduces_variance_over_single() {
        let t = noisy_target(0.3, 1);
        let single = measurement_sd(&NoiseStrategy::Single, &t, 2);
        let repeat = measurement_sd(
            &NoiseStrategy::Repeat {
                n: 5,
                median: false,
            },
            &t,
            1,
        );
        assert!(
            repeat < single * 0.7,
            "repeat CV {repeat} should beat single CV {single}"
        );
    }

    #[test]
    fn duet_cancels_machine_noise() {
        let t = noisy_target(0.4, 4);
        let single = measurement_sd(&NoiseStrategy::Single, &t, 5);
        let duet = measurement_sd(&NoiseStrategy::Duet, &t, 6);
        assert!(
            duet < single * 0.5,
            "duet CV {duet} should cancel machine noise vs single CV {single}"
        );
    }

    #[test]
    fn tuna_is_robust_to_spikes() {
        // Heavy-tailed noise: frequent large spikes are exactly what the
        // trimmed TUNA aggregate defends against and a plain mean cannot.
        let t = Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(10_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        )
        .with_noise(CloudNoise::new_fleet(
            16,
            NoiseConfig {
                machine_sigma: 0.05,
                drift_amplitude: 0.02,
                spike_probability: 0.25,
                spike_scale: 2.0,
                ..Default::default()
            },
            7,
        ));
        let naive = measurement_sd(
            &NoiseStrategy::Repeat {
                n: 5,
                median: false,
            },
            &t,
            8,
        );
        let tuna = measurement_sd(
            &NoiseStrategy::Tuna {
                replicas: 5,
                outlier_sigmas: 1.5,
            },
            &t,
            9,
        );
        assert!(
            tuna < naive,
            "TUNA CV {tuna} should beat naive repeat CV {naive} under heavy spikes"
        );
    }

    #[test]
    fn runs_per_trial_accounting() {
        assert_eq!(NoiseStrategy::Single.runs_per_trial(), 1);
        assert_eq!(
            NoiseStrategy::Repeat { n: 7, median: true }.runs_per_trial(),
            7
        );
        assert_eq!(NoiseStrategy::Duet.runs_per_trial(), 2);
        assert_eq!(
            NoiseStrategy::Tuna {
                replicas: 3,
                outlier_sigmas: 2.0
            }
            .runs_per_trial(),
            3
        );
    }

    #[test]
    fn duet_score_is_relative() {
        // On a noise-free target, duet(config, config) == 1.0 up to
        // measurement jitter.
        let t = Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(10_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        );
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = t.space().default_config();
        let (score, elapsed) = NoiseStrategy::Duet.measure(&t, &cfg, &cfg, &mut rng);
        assert!((score - 1.0).abs() < 0.3, "self-duet score {score}");
        assert!(elapsed > 0.0);
    }

    #[test]
    fn crash_propagates_as_nan() {
        use autotune_space::{Param, Space};
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .build()
            .unwrap();
        let t = Target::black_box(space, Objective::MinimizeLatencyAvg, |_| f64::NAN);
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = t.space().default_config();
        for strat in [
            NoiseStrategy::Single,
            NoiseStrategy::Repeat {
                n: 3,
                median: false,
            },
            NoiseStrategy::Duet,
        ] {
            let (score, _) = strat.measure(&t, &cfg, &cfg, &mut rng);
            assert!(score.is_nan(), "{strat:?} should propagate crash");
        }
    }
}

//! E5 (slides 35-36): the GP "distribution over functions" figure —
//! prior samples have prior-scale spread everywhere; conditioning on
//! observations collapses the posterior at the observed points and keeps
//! uncertainty between them.

use crate::report::{f, Report};
use autotune_surrogate::{GaussianProcess, Rbf, Surrogate};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    let truth = |x: f64| (5.0 * x).sin();
    let train_x = [0.1, 0.35, 0.5, 0.8, 0.95];
    let xs: Vec<Vec<f64>> = train_x.iter().map(|&x| vec![x]).collect();
    let ys: Vec<f64> = train_x.iter().map(|&x| truth(x)).collect();

    let prior = GaussianProcess::new(Box::new(Rbf::isotropic(0.15, 1.0)), 1e-8);
    let mut posterior = GaussianProcess::new(Box::new(Rbf::isotropic(0.15, 1.0)), 1e-8);
    posterior.fit(&xs, &ys).expect("toy data fits");

    let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut rows = Vec::new();
    let mut at_data_sd = Vec::new();
    let mut between_sd = Vec::new();
    for &x in &grid {
        let prior_sd = prior.predict(&[x]).std_dev();
        let p = posterior.predict(&[x]);
        let is_data = train_x.iter().any(|&t| (t - x).abs() < 1e-9);
        if is_data {
            at_data_sd.push(p.std_dev());
        } else {
            between_sd.push(p.std_dev());
        }
        rows.push(vec![
            f(x, 2),
            f(truth(x), 3),
            f(prior_sd, 3),
            f(p.mean, 3),
            f(p.std_dev(), 3),
            if is_data { "yes".into() } else { "".into() },
        ]);
    }
    // Posterior samples pass near the observations.
    let mut rng = StdRng::seed_from_u64(1);
    let sample = posterior.sample_function(&xs, &mut rng);
    let max_dev = sample
        .iter()
        .zip(&ys)
        .map(|(s, y)| (s - y).abs())
        .fold(0.0_f64, f64::max);

    let max_at_data = at_data_sd.iter().cloned().fold(0.0_f64, f64::max);
    let max_between = between_sd.iter().cloned().fold(0.0_f64, f64::max);
    let shape_holds = max_at_data < 0.05 && max_between > 5.0 * max_at_data && max_dev < 0.1;
    Report {
        id: "E5",
        title: "GP prior vs posterior (slides 35-36)",
        headers: vec!["x", "truth", "prior_sd", "post_mean", "post_sd", "observed"],
        rows,
        paper_claim: "conditioning collapses the CI at observed points, keeps it between them",
        measured: format!(
            "max sd at data {}, max sd between {}, sample max deviation {}",
            f(max_at_data, 4),
            f(max_between, 3),
            f(max_dev, 3)
        ),
        shape_holds,
    }
}

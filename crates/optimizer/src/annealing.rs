//! Simulated annealing (tutorial slide 7, "Search Based").
//!
//! Random-walk local search with a cooling schedule: worse moves are
//! accepted with probability `exp(-Δ/T)`, so early iterations explore and
//! late iterations exploit. The neighbourhood kernel is
//! [`autotune_space::Space::neighbor`], which respects conditionals and
//! constraints.

use crate::{BestTracker, Observation, Optimizer};
use autotune_space::{Config, Space};
use rand::RngCore;

/// Simulated-annealing optimizer.
#[derive(Debug)]
pub struct SimulatedAnnealing {
    space: Space,
    /// Current accepted state and its value.
    current: Option<(Config, f64)>,
    /// The configuration most recently suggested (whose observation will
    /// drive the accept/reject decision).
    pending: Option<Config>,
    /// Initial temperature.
    t0: f64,
    /// Multiplicative cooling factor per observation.
    cooling: f64,
    /// Current temperature.
    temperature: f64,
    /// Neighbourhood scale in unit-cube space.
    step_scale: f64,
    /// Internal state for accept/reject draws, so `observe` stays
    /// deterministic without threading an RNG through the trait.
    accept_state: u64,
    tracker: BestTracker,
}

impl SimulatedAnnealing {
    /// Creates an annealer. `t0` should be on the order of typical
    /// objective differences; `cooling` in `(0, 1)` (e.g. 0.95).
    pub fn new(space: Space, t0: f64, cooling: f64) -> Self {
        assert!(t0 > 0.0, "initial temperature must be positive");
        assert!((0.0..1.0).contains(&cooling), "cooling must be in (0,1)");
        SimulatedAnnealing {
            space,
            current: None,
            pending: None,
            t0,
            cooling,
            temperature: t0,
            step_scale: 0.15,
            accept_state: 0x9E37_79B9_7F4A_7C15,
            tracker: BestTracker::default(),
        }
    }

    /// Overrides the neighbourhood step scale (unit-cube units).
    pub fn with_step_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "step scale must be positive");
        self.step_scale = scale;
        self
    }

    /// Current temperature (decays as observations arrive).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl Optimizer for SimulatedAnnealing {
    fn suggest(&mut self, mut rng: &mut dyn RngCore) -> Config {
        let cfg = match &self.current {
            None => self.space.sample(&mut rng),
            Some((cur, _)) => self.space.neighbor(cur, self.step_scale, &mut rng),
        };
        self.pending = Some(cfg.clone());
        cfg
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
        // Accept/reject only applies to the move we proposed; foreign
        // observations (e.g. warm-start imports) just update the tracker
        // and, if better, the current state.
        let is_pending = self.pending.as_ref() == Some(config);
        if is_pending {
            self.pending = None;
        }
        let accept = match &self.current {
            None => true,
            Some((_, cur_v)) => {
                if value.is_nan() {
                    false
                } else if value <= *cur_v {
                    true
                } else if is_pending {
                    let delta = value - cur_v;
                    let p = (-delta / self.temperature.max(1e-12)).exp();
                    // splitmix64 step for a deterministic uniform draw.
                    self.accept_state = self.accept_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = self.accept_state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                    u < p
                } else {
                    false
                }
            }
        };
        if accept && !value.is_nan() {
            self.current = Some((config.clone(), value));
        }
        self.temperature = (self.temperature * self.cooling).max(self.t0 * 1e-6);
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        "simulated_annealing"
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};

    #[test]
    fn converges_on_sphere() {
        let mut opt = SimulatedAnnealing::new(sphere_space(), 1.0, 0.93);
        let best = run_loop(&mut opt, sphere, 150, 5);
        assert!(best < 0.1, "annealing best {best} after 150 trials");
    }

    #[test]
    fn temperature_decays() {
        let space = sphere_space();
        let mut opt = SimulatedAnnealing::new(space.clone(), 2.0, 0.9);
        let t_start = opt.temperature();
        let mut rng = rand::rngs::mock::StepRng::new(3, 0x9E3779B97F4A7C15);
        for _ in 0..10 {
            let c = opt.suggest(&mut rng);
            opt.observe(&c, 1.0);
        }
        assert!(opt.temperature() < t_start * 0.5);
    }

    #[test]
    fn always_accepts_improvements() {
        let space = sphere_space();
        let mut opt = SimulatedAnnealing::new(space.clone(), 1e-9, 0.5); // ~zero temp
        let c1 = space.default_config();
        let c2 = space.default_config().with("x", 1.0);
        opt.observe(&c1, 10.0);
        opt.observe(&c2, 1.0);
        // current must be the better config: next suggestion is its neighbor
        let mut rng = rand::rngs::mock::StepRng::new(9, 0x9E3779B97F4A7C15);
        let n = opt.suggest(&mut rng);
        // Neighbor of c2 keeps y near default 0.0 more often than c1's; just
        // check the internal current state directly via best().
        assert_eq!(opt.best().unwrap().value, 1.0);
        assert!(space.validate_config(&n).is_ok());
    }

    #[test]
    fn nan_never_accepted() {
        let space = sphere_space();
        let mut opt = SimulatedAnnealing::new(space.clone(), 1.0, 0.9);
        let c = space.default_config();
        opt.observe(&c, f64::NAN);
        assert!(opt.best().is_none());
        assert!(opt.current.is_none());
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn invalid_cooling_rejected() {
        let _ = SimulatedAnnealing::new(sphere_space(), 1.0, 1.5);
    }
}

//! Offline stub of `serde` (see `third_party/README.md`).
//!
//! Instead of serde's visitor-based data model, this stub routes every
//! value through a JSON-like [`__private::Content`] tree: serializers
//! receive a fully built `Content`, deserializers hand one out. That is
//! a strictly smaller API, but it is source-compatible with everything
//! this workspace does with serde: `#[derive(Serialize, Deserialize)]`
//! on named-field structs and simple enums, `#[serde(default)]`,
//! `#[serde(with = "...")]` modules built on
//! `serialize_none`/`serialize_some`/`Option::deserialize`, and
//! `serde_json` round-trips.

mod content;
pub mod de;
mod impls;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The single concrete error type used by the stub's own serializers.
#[derive(Debug, Clone)]
pub struct Error(pub(crate) String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Internals shared with `serde_derive`-generated code and `serde_json`.
/// Not a stable API (mirrors real serde's `__private` convention).
pub mod __private {
    pub use crate::content::{
        take_field, to_content, Content, ContentDeserializer, ContentSerializer,
    };
}

//! The tuning session: the sequential experiment loop of slide 33,
//! hardened with the systems machinery of slides 55-71.
//!
//! Since the campaign refactor this is a thin single-campaign adapter:
//! `run` assembles a [`Campaign`] with a [`SchedulePolicy::Sequential`]
//! policy, the session's noise strategy, and an early-abort middleware
//! borrowing the session's long-lived policy, drives it to exhaustion,
//! and folds the campaign's history and telemetry back into the
//! session's long-lived storage and metrics.

use crate::executor::{Campaign, EarlyAbortMw, OptimizerSource, SchedulePolicy};
use crate::telemetry::{MetricsSnapshot, Subscriber};
use crate::{EarlyAbort, NoiseStrategy, Objective, Target, Trial, TrialStatus, TrialStorage};
use autotune_optimizer::Optimizer;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Session-level options.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Measurement policy per logical trial.
    pub noise_strategy: NoiseStrategy,
    /// Early-abort ratio for elapsed-time objectives (None disables).
    pub early_abort_ratio: Option<f64>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            noise_strategy: NoiseStrategy::Single,
            early_abort_ratio: None,
        }
    }
}

/// Outcome of a tuning campaign.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// Best configuration found.
    pub best_config: autotune_space::Config,
    /// Its cost (minimization convention; see
    /// [`Objective::display_value`] for the natural reading).
    pub best_cost: f64,
    /// Best-so-far cost after each logical trial.
    pub convergence: Vec<f64>,
    /// Total benchmark seconds consumed.
    pub total_elapsed_s: f64,
    /// Crashed trials.
    pub n_crashed: usize,
    /// Early-aborted trials.
    pub n_aborted: usize,
    /// Trials lost to infrastructure with retries exhausted.
    pub n_transient: usize,
    /// Retry attempts consumed across all trials.
    pub n_retried: usize,
    /// Distinct machines quarantined at least once.
    pub n_quarantined_machines: usize,
    /// Benchmark seconds saved by early abort.
    pub saved_s: f64,
    /// Rolled-up telemetry across everything this session ran — campaign
    /// runs and legacy [`TuningSession::step`] calls alike contribute
    /// uniformly.
    pub metrics: MetricsSnapshot,
}

/// A sequential tuning campaign binding a target and an optimizer.
pub struct TuningSession {
    target: Arc<Target>,
    optimizer: Box<dyn Optimizer>,
    storage: TrialStorage,
    config: SessionConfig,
    early_abort: Option<EarlyAbort>,
    n_quarantined_machines: usize,
    metrics: MetricsSnapshot,
}

impl TuningSession {
    /// Creates a session.
    pub fn new(target: Target, optimizer: Box<dyn Optimizer>, config: SessionConfig) -> Self {
        let early_abort = config.early_abort_ratio.map(EarlyAbort::new);
        TuningSession {
            target: Arc::new(target),
            optimizer,
            storage: TrialStorage::new(),
            config,
            early_abort,
            n_quarantined_machines: 0,
            metrics: MetricsSnapshot::default(),
        }
    }

    /// The trial history.
    pub fn storage(&self) -> &TrialStorage {
        &self.storage
    }

    /// The target under tuning.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The optimizer (e.g. to export its observation history for
    /// transfer).
    pub fn optimizer(&self) -> &dyn Optimizer {
        self.optimizer.as_ref()
    }

    /// Mutable optimizer access (warm starting).
    pub fn optimizer_mut(&mut self) -> &mut dyn Optimizer {
        self.optimizer.as_mut()
    }

    /// Runs one logical trial with a caller-owned RNG; returns the
    /// recorded [`Trial`] id.
    ///
    /// This is the legacy incremental path (interactive loops that thread
    /// their own RNG). Whole campaigns go through [`TuningSession::run`],
    /// which drives the shared executor and keeps suggestion and
    /// evaluation streams separate.
    pub fn step(&mut self, rng: &mut StdRng) -> u64 {
        let config = self.optimizer.suggest(rng);
        let baseline = self.target.space().default_config();
        let (raw_cost, elapsed) =
            self.config
                .noise_strategy
                .measure(&self.target, &config, &baseline, rng);

        let cost_is_elapsed = matches!(self.target.objective(), Objective::MinimizeElapsed);
        let (cost, charged_elapsed, aborted) = match &mut self.early_abort {
            Some(ea) => ea.process(raw_cost, elapsed, cost_is_elapsed),
            None => (raw_cost, elapsed, false),
        };

        self.optimizer.observe(&config, cost);

        // Roll the step into the session metrics exactly as a campaign
        // tick would, so step-driven and run-driven sessions report
        // through one uniform MetricsSnapshot.
        self.metrics.n_suggested += 1;
        self.metrics.n_started += 1;
        if aborted {
            self.metrics.n_aborted += 1;
        } else if cost.is_finite() {
            self.metrics.n_finished += 1;
        } else {
            self.metrics.n_crashed += 1;
        }
        self.metrics.trial_latency_s.record(charged_elapsed);
        self.metrics.queue_wait_s.record(0.0);
        self.metrics.wall_clock_s += charged_elapsed;

        if aborted {
            self.storage
                .record(Trial::aborted(config, cost, charged_elapsed))
        } else {
            self.storage
                .record_eval(config, cost, charged_elapsed, 1.0, None)
        }
    }

    /// Runs `budget` logical trials through the executor and summarizes.
    /// Returns `None` when every trial crashed.
    pub fn run(&mut self, budget: usize, seed: u64) -> Option<SessionSummary> {
        self.run_observed(budget, seed, &mut [])
    }

    /// [`TuningSession::run`] with telemetry subscribers attached to the
    /// underlying executor. Subscribers are pure observers (virtual-clock
    /// timestamps, driver-thread delivery): attaching any combination
    /// leaves the campaign byte-identical with a plain `run`.
    pub fn run_observed(
        &mut self,
        budget: usize,
        seed: u64,
        subscribers: &mut [&mut dyn Subscriber],
    ) -> Option<SessionSummary> {
        {
            let mut campaign = Campaign::new(
                Arc::clone(&self.target),
                Box::new(OptimizerSource::new(self.optimizer.as_mut(), budget)),
                SchedulePolicy::Sequential,
                seed,
            )
            .with_noise_strategy(self.config.noise_strategy.clone())
            .with_event_log(false); // one-shot campaign, never snapshotted
            if let Some(ea) = self.early_abort.as_mut() {
                campaign = campaign.with_middleware(Box::new(EarlyAbortMw::over(ea)));
            }
            for sub in subscribers.iter_mut() {
                campaign = campaign.with_subscriber(Box::new(&mut **sub));
            }
            let report = campaign.run();
            for trial in campaign.into_storage().into_trials() {
                self.storage.record(trial);
            }
            self.n_quarantined_machines += report.n_quarantined_machines;
            self.metrics.merge(&report.metrics);
        }
        self.summary()
    }

    /// Summary of everything run so far, or `None` when no trial has
    /// succeeded yet (e.g. every configuration crashed).
    pub fn summary(&self) -> Option<SessionSummary> {
        let best = self.storage.best()?;
        Some(SessionSummary {
            best_config: best.config.clone(),
            best_cost: best.cost,
            convergence: self.storage.convergence_curve(),
            total_elapsed_s: self.storage.total_elapsed_s(),
            n_crashed: self.storage.n_crashed(),
            n_aborted: self
                .storage
                .trials()
                .iter()
                .filter(|t| t.status == TrialStatus::Aborted)
                .count(),
            n_transient: self.storage.n_transient_failures(),
            n_retried: self.storage.n_retried(),
            n_quarantined_machines: self.n_quarantined_machines,
            saved_s: self
                .early_abort
                .as_ref()
                .map_or(0.0, |ea| ea.total_saved_s()),
            metrics: self.metrics.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_optimizer::{BayesianOptimizer, RandomSearch};
    use autotune_sim::{DbmsSim, Environment, RedisSim, Workload};
    use rand::SeedableRng;

    #[test]
    fn bo_session_tunes_redis_example() {
        // The tutorial's running example end to end: minimize Redis P95 by
        // tuning the scheduler knob.
        let target = Target::simulated(
            Box::new(RedisSim::new()),
            Workload::kv_cache(20_000.0),
            Environment::medium(),
            Objective::MinimizeLatencyP95,
        );
        let default_cfg = target.space().default_config();
        let mut probe_rng = StdRng::seed_from_u64(99);
        let default_cost: f64 = (0..5)
            .map(|_| target.evaluate(&default_cfg, &mut probe_rng).cost)
            .sum::<f64>()
            / 5.0;

        let opt = BayesianOptimizer::gp(target.space().clone());
        let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
        let summary = session.run(40, 7).expect("at least one successful trial");
        assert!(
            summary.best_cost < default_cost * 0.6,
            "tuned {} should cut >40% off default {default_cost}",
            summary.best_cost
        );
        // Convergence curve is monotone non-increasing once finite.
        let finite: Vec<f64> = summary
            .convergence
            .iter()
            .cloned()
            .filter(|c| c.is_finite())
            .collect();
        for w in finite.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn crashes_are_recorded_and_survived() {
        // DBMS with tight RAM: random search will hit the OOM region.
        let target = Target::simulated(
            Box::new(DbmsSim::new()),
            Workload::tpcc(2_000.0),
            Environment::small(),
            Objective::MinimizeLatencyAvg,
        );
        let opt = RandomSearch::new(target.space().clone());
        let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
        let summary = session.run(60, 11).expect("some trials survive");
        assert!(
            summary.n_crashed > 0,
            "expected some OOM crashes on a small VM"
        );
        assert!(summary.best_cost.is_finite());
    }

    #[test]
    fn all_crash_campaign_yields_none_not_panic() {
        // Regression: `summary()` used to panic when every trial crashed —
        // the Environment::small() OOM regime taken to its limit, modeled
        // here as a black-box target whose every configuration crashes.
        use autotune_space::{Param, Space};
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .build()
            .unwrap();
        let target = Target::black_box(space, Objective::MinimizeLatencyAvg, |_| f64::NAN);
        let opt = RandomSearch::new(target.space().clone());
        let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
        assert!(session.run(10, 3).is_none());
        assert!(session.summary().is_none());
        assert_eq!(session.storage().n_crashed(), 10);
    }

    #[test]
    fn early_abort_saves_time_without_changing_winner() {
        let run = |abort: Option<f64>, seed: u64| {
            let target = crate::test_fixtures::spark_target();
            let opt = RandomSearch::new(target.space().clone());
            let mut session = TuningSession::new(
                target,
                Box::new(opt),
                SessionConfig {
                    early_abort_ratio: abort,
                    ..Default::default()
                },
            );
            session.run(40, seed).expect("successful trials")
        };
        let plain = run(None, 13);
        let abort = run(Some(1.3), 13);
        assert!(
            abort.n_aborted > 5,
            "expected aborted trials, got {}",
            abort.n_aborted
        );
        assert!(
            abort.total_elapsed_s < plain.total_elapsed_s * 0.9,
            "abort should save >10% time: {} vs {}",
            abort.total_elapsed_s,
            plain.total_elapsed_s
        );
        // Same seeds, same suggestions: the winner is identical.
        assert!((abort.best_cost - plain.best_cost).abs() < 1e-9);
    }

    #[test]
    fn repeat_strategy_charges_more_time() {
        let make = |strategy: NoiseStrategy| {
            let target = Target::simulated(
                Box::new(RedisSim::new()),
                Workload::kv_cache(10_000.0),
                Environment::medium(),
                Objective::MinimizeLatencyP95,
            );
            let opt = RandomSearch::new(target.space().clone());
            TuningSession::new(
                target,
                Box::new(opt),
                SessionConfig {
                    noise_strategy: strategy,
                    ..Default::default()
                },
            )
        };
        let single = make(NoiseStrategy::Single).run(10, 17).expect("trials");
        let repeat = make(NoiseStrategy::Repeat {
            n: 3,
            median: false,
        })
        .run(10, 17)
        .expect("trials");
        assert!(
            repeat.total_elapsed_s > 2.5 * single.total_elapsed_s,
            "3x repeats should cost ~3x time: {} vs {}",
            repeat.total_elapsed_s,
            single.total_elapsed_s
        );
    }

    #[test]
    fn step_sessions_report_metrics_uniformly() {
        // Regression: `summary().metrics` used to stay empty for sessions
        // driven only through the legacy `step` path, splitting consumers
        // into legacy/observed cases. Steps now roll up like campaign
        // ticks do.
        let target = crate::test_fixtures::redis_target();
        let opt = RandomSearch::new(target.space().clone());
        let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..4 {
            session.step(&mut rng);
        }
        let summary = session.summary().expect("trials");
        assert_eq!(summary.metrics.n_suggested, 4);
        assert_eq!(summary.metrics.n_started, 4);
        assert_eq!(
            summary.metrics.n_finished + summary.metrics.n_crashed + summary.metrics.n_aborted,
            4
        );
        assert_eq!(summary.metrics.trial_latency_s.count(), 4);
        assert!(summary.metrics.wall_clock_s > 0.0);
        // A subsequent campaign run merges on top instead of replacing.
        session.run(5, 29).expect("trials");
        let summary = session.summary().expect("trials");
        assert_eq!(summary.metrics.n_suggested, 9);
        assert_eq!(summary.metrics.trial_latency_s.count(), 9);
    }

    #[test]
    fn step_and_run_share_storage_and_status_derivation() {
        let target = crate::test_fixtures::redis_target();
        let opt = RandomSearch::new(target.space().clone());
        let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
        let mut rng = StdRng::seed_from_u64(23);
        let id = session.step(&mut rng);
        assert_eq!(id, 0);
        session.run(5, 23).expect("trials");
        assert_eq!(session.storage().len(), 6);
        assert!(session
            .storage()
            .trials()
            .iter()
            .all(|t| t.status != TrialStatus::Aborted));
    }
}

//! Web-server simulator — the Nginx stand-in (slide 8 lists "Redis,
//! MySQL, Postgres, Nginx" as tuned systems).
//!
//! Models the classic reverse-proxy knob interactions:
//!
//! * `worker_processes`: parallelism up to the core count, then context
//!   switching; the famous default (`auto` = cores) is near-optimal, so
//!   this knob mostly *punishes* deviation;
//! * `worker_connections`: a per-worker admission limit — too low rejects
//!   (or queues) traffic under load, too high thrashes memory with idle
//!   connection state;
//! * `keepalive_timeout`: long keepalives save TCP/TLS handshakes for
//!   think-time traffic but pin connection slots;
//! * `gzip` + `gzip_level`: trades CPU per response for bytes on the wire
//!   — pays on slow client links, hurts on fast ones;
//! * `access_log_buffered`: unbuffered logging costs a write per request;
//! * `open_file_cache`: metadata-lookup savings for static content.

use crate::{Environment, SimSystem, TrialResult, Workload};
use autotune_space::{Condition, Config, Param, Space};
use rand::RngCore;

/// Simulated Nginx-like web server.
#[derive(Debug)]
pub struct NginxSim {
    space: Space,
}

impl NginxSim {
    /// Creates the simulator with an 8-knob Nginx-flavoured space.
    pub fn new() -> Self {
        let space = Space::builder()
            .add(
                Param::int("worker_processes", 1, 64)
                    .log_scale()
                    .default_value(1i64),
            )
            .add(
                Param::int("worker_connections", 64, 65_536)
                    .log_scale()
                    .default_value(512i64),
            )
            .add(
                Param::float("keepalive_timeout_s", 0.0, 300.0)
                    .default_value(75.0)
                    .with_special_values(&[0.0]),
            )
            .add(Param::bool("gzip").default_value(false))
            .add(Param::int("gzip_level", 1, 9).default_value(6i64))
            .add(Param::bool("access_log_buffered").default_value(false))
            .add(Param::bool("open_file_cache").default_value(false))
            .add(
                Param::int("client_body_buffer_kb", 8, 1024)
                    .log_scale()
                    .default_value(16i64),
            )
            .condition(Condition::equals("gzip_level", "gzip", true))
            .build()
            .expect("static space definition is valid"); // lint: allow(D5) static space definition is valid
        NginxSim { space }
    }
}

impl Default for NginxSim {
    fn default() -> Self {
        NginxSim::new()
    }
}

impl SimSystem for NginxSim {
    fn name(&self) -> &str {
        "nginx"
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn run_trial(
        &self,
        config: &Config,
        workload: &Workload,
        env: &Environment,
        rng: &mut dyn RngCore,
    ) -> TrialResult {
        let workers = config.get_i64("worker_processes").unwrap_or(1).max(1) as f64;
        let connections = config.get_i64("worker_connections").unwrap_or(512).max(1) as f64;
        let keepalive = config.get_f64("keepalive_timeout_s").unwrap_or(75.0);
        let gzip = config.get_bool("gzip").unwrap_or(false);
        let gzip_level = config.get_i64("gzip_level").unwrap_or(6).clamp(1, 9) as f64;
        let log_buffered = config.get_bool("access_log_buffered").unwrap_or(false);
        let file_cache = config.get_bool("open_file_cache").unwrap_or(false);
        let body_buffer_kb = config.get_f64("client_body_buffer_kb").unwrap_or(16.0);

        // Connection-state memory: too many slots on a small box = OOM.
        let conn_memory_gb = workers * connections * (16.0 + body_buffer_kb) / 1e6;
        if conn_memory_gb > 0.5 * env.ram_gb {
            return TrialResult::crash(3.0);
        }

        // --- per-request service time (ms) ---
        let mut cpu_ms = 0.12; // parse + route + respond
        if !log_buffered {
            cpu_ms += 0.05; // one write syscall per request
        }
        if !file_cache {
            cpu_ms += 0.04; // stat()/open() per static hit
        }
        // Response transfer: ~24 KB average page at client link speed.
        let mut transfer_ms = 0.8;
        if gzip {
            // Compression shrinks the body (diminishing past level ~6) and
            // charges CPU superlinearly with the level.
            let ratio = 0.32 + 0.30 / gzip_level;
            transfer_ms *= ratio;
            cpu_ms += 0.03 * gzip_level.powf(1.4);
        }
        // Keepalive: with think-time traffic, short timeouts force fresh
        // TCP/TLS handshakes on a fraction of requests.
        let handshake_ms = 1.1;
        let reuse_prob = (keepalive / (keepalive + 10.0)).clamp(0.0, 0.98);
        let connect_ms = handshake_ms * (1.0 - reuse_prob);

        // --- capacity ---
        let useful_workers = workers.min(env.cores as f64);
        let oversub = 1.0 + 0.03 * (workers - env.cores as f64).max(0.0);
        let per_worker_rps = 1000.0 / (cpu_ms * oversub);
        // Connection slots bound throughput via Little's law: each request
        // holds a slot for its service time, plus idle keepalive holds
        // (~1% of the timeout per request on average with think time).
        let hold_s = ((cpu_ms + transfer_ms) / 1000.0).max(keepalive * 0.01);
        let slot_limit = workers * connections / hold_s.max(1e-6);
        let capacity = (useful_workers * per_worker_rps).min(slot_limit.max(1.0));

        let raw_util = workload.offered_ops / capacity.max(1e-9);
        let utilization = raw_util.min(0.999);
        let queueing = 1.0 / (1.0 - utilization);
        let overload = raw_util.max(1.0);
        let mean_latency =
            (cpu_ms * oversub * (0.3 + 0.7 * queueing) + transfer_ms + connect_ms) * overload;
        let throughput = workload.offered_ops.min(capacity);
        let elapsed = workload.duration_s();

        crate::finish_trial(
            mean_latency,
            utilization,
            throughput,
            elapsed,
            env.cost_per_hour,
            workload,
            env,
            rng,
        )
        .with_profile(vec![
            ("cpu".to_string(), cpu_ms * oversub),
            ("transfer".to_string(), transfer_ms),
            ("handshake".to_string(), connect_ms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn web_workload(rps: f64) -> Workload {
        Workload::kv_cache(rps) // request/response shape is close enough
    }

    fn avg_latency(sim: &NginxSim, cfg: &Config, rps: f64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let env = Environment::medium();
        let runs: Vec<f64> = (0..8)
            .map(|_| {
                let r = sim.run_trial(cfg, &web_workload(rps), &env, &mut rng);
                assert!(!r.crashed, "unexpected crash for {cfg}");
                r.latency_avg_ms
            })
            .collect();
        autotune_linalg::stats::mean(&runs)
    }

    #[test]
    fn workers_help_up_to_core_count() {
        let sim = NginxSim::new();
        let lat = |w: i64, seed| {
            let cfg = sim.space().default_config().with("worker_processes", w);
            avg_latency(&sim, &cfg, 12_000.0, seed)
        };
        let one = lat(1, 1);
        let four = lat(4, 2); // medium env: 4 cores
        let many = lat(64, 3);
        assert!(four < one, "4 workers {four} should beat 1 {one}");
        assert!(
            many > four,
            "64 workers on 4 cores {many} should thrash vs {four}"
        );
    }

    #[test]
    fn keepalive_sweet_spot() {
        let sim = NginxSim::new();
        let lat = |ka: f64, seed| {
            let cfg = sim
                .space()
                .default_config()
                .with("worker_processes", 4i64)
                .with("keepalive_timeout_s", ka);
            avg_latency(&sim, &cfg, 1_500.0, seed)
        };
        let none = lat(0.0, 4);
        let moderate = lat(60.0, 5);
        let extreme = lat(300.0, 6);
        assert!(
            moderate < none,
            "keepalive 60s {moderate} should beat handshakes-every-time {none}"
        );
        assert!(
            extreme > moderate,
            "keepalive 300s {extreme} should pin slots and lose to 60s {moderate}"
        );
    }

    #[test]
    fn gzip_helps_transfer_but_high_levels_diminish() {
        let sim = NginxSim::new();
        let base = sim.space().default_config().with("worker_processes", 4i64);
        let lat_off = avg_latency(&sim, &base.clone().with("gzip", false), 800.0, 6);
        let cfg_on = |lvl: i64| base.clone().with("gzip", true).with("gzip_level", lvl);
        let lat_l4 = avg_latency(&sim, &cfg_on(4), 800.0, 7);
        let lat_l9 = avg_latency(&sim, &cfg_on(9), 800.0, 8);
        assert!(
            lat_l4 < lat_off,
            "gzip@4 {lat_l4} should beat no gzip {lat_off}"
        );
        assert!(
            lat_l9 > lat_l4,
            "gzip@9 {lat_l9} burns CPU past the payoff vs @4 {lat_l4}"
        );
    }

    #[test]
    fn buffered_logging_and_file_cache_shave_cpu() {
        let sim = NginxSim::new();
        let base = sim.space().default_config().with("worker_processes", 4i64);
        let plain = avg_latency(&sim, &base, 12_000.0, 9);
        let tuned = avg_latency(
            &sim,
            &base
                .clone()
                .with("access_log_buffered", true)
                .with("open_file_cache", true),
            12_000.0,
            10,
        );
        assert!(
            tuned < plain,
            "cpu shavings should show under load: {tuned} vs {plain}"
        );
    }

    #[test]
    fn connection_state_oom_crashes() {
        let sim = NginxSim::new();
        let cfg = sim
            .space()
            .default_config()
            .with("worker_processes", 64i64)
            .with("worker_connections", 65_536i64)
            .with("client_body_buffer_kb", 1024.0);
        let mut rng = StdRng::seed_from_u64(11);
        let r = sim.run_trial(
            &cfg,
            &web_workload(1_000.0),
            &Environment::small(),
            &mut rng,
        );
        assert!(r.crashed, "4M connection slots on 8 GB must OOM");
    }

    #[test]
    fn gzip_level_is_conditional() {
        let sim = NginxSim::new();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let c = sim.space().sample(&mut rng);
            assert_eq!(
                c.get_bool("gzip").unwrap(),
                c.get("gzip_level").is_some(),
                "gzip_level present iff gzip on: {c}"
            );
        }
    }

    #[test]
    fn tuning_wins_end_to_end() {
        // Sanity: the tuned config beats stock defaults, same shape as E1.
        let sim = NginxSim::new();
        let default = avg_latency(&sim, &sim.space().default_config(), 12_000.0, 13);
        let tuned = sim
            .space()
            .default_config()
            .with("worker_processes", 4i64)
            .with("worker_connections", 4096i64)
            .with("keepalive_timeout_s", 60.0)
            .with("gzip", true)
            .with("gzip_level", 4i64)
            .with("access_log_buffered", true)
            .with("open_file_cache", true);
        let tuned_lat = avg_latency(&sim, &tuned, 12_000.0, 14);
        assert!(
            tuned_lat < default * 0.5,
            "tuned {tuned_lat} should at least halve default {default}"
        );
    }
}

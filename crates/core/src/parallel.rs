//! Parallel trial execution (tutorial slide 57) — compat wrappers.
//!
//! Both entry points are thin shims over the shared
//! [`Executor`](crate::executor::Executor): `run_parallel` schedules with
//! [`SchedulePolicy::SyncBatch`] (the batch is as slow as its slowest
//! member), `run_async_parallel` with [`SchedulePolicy::AsyncSlots`]
//! (slots refill the moment a trial finishes). Suggestion flows through
//! the pending-aware [`OptimizerSource`], so model-based optimizers give
//! in-flight configurations constant-liar treatment in *both* modes —
//! the asynchronous runner no longer entangles the optimizer's RNG with
//! trial evaluation.

use crate::executor::{Executor, OptimizerSource, SchedulePolicy};
use crate::{Target, TrialStorage};
use autotune_optimizer::Optimizer;
use autotune_space::Config;

/// Outcome of a parallel campaign.
#[derive(Debug, Clone)]
pub struct ParallelSummary {
    /// Best configuration found.
    pub best_config: Config,
    /// Its cost.
    pub best_cost: f64,
    /// Wall-clock under perfect batch parallelism, seconds.
    pub wall_clock_s: f64,
    /// Total machine-seconds consumed (the bill).
    pub machine_seconds: f64,
    /// All trials.
    pub storage: TrialStorage,
}

fn run_with_policy(
    target: &Target,
    optimizer: &mut dyn Optimizer,
    total_trials: usize,
    policy: SchedulePolicy,
    seed: u64,
) -> ParallelSummary {
    let mut source = OptimizerSource::new(optimizer, total_trials);
    let mut storage = TrialStorage::new();
    let report = Executor::new(target, policy).run(&mut source, &mut storage, seed);
    let best = storage
        .best()
        .expect("at least one successful trial expected"); // lint: allow(D5) sim targets complete every trial, storage non-empty
    ParallelSummary {
        best_config: best.config.clone(),
        best_cost: best.cost,
        wall_clock_s: report.wall_clock_s,
        machine_seconds: report.machine_seconds,
        storage,
    }
}

/// Runs `n_batches` batches of `batch_size` parallel trials
/// (synchronous barrier between batches).
pub fn run_parallel(
    target: &Target,
    optimizer: &mut dyn Optimizer,
    n_batches: usize,
    batch_size: usize,
    seed: u64,
) -> ParallelSummary {
    assert!(batch_size >= 1, "need at least one trial per batch");
    run_with_policy(
        target,
        optimizer,
        n_batches * batch_size,
        SchedulePolicy::SyncBatch { k: batch_size },
        seed,
    )
}

/// Asynchronous parallel execution (slide 57's "asynchronous: suggest 1
/// point at a time, track up to k in-progress configurations"): up to
/// `max_in_flight` trials run concurrently; the moment one finishes, its
/// result is observed and a fresh suggestion is dispatched — no batch
/// barrier.
pub fn run_async_parallel(
    target: &Target,
    optimizer: &mut dyn Optimizer,
    total_trials: usize,
    max_in_flight: usize,
    seed: u64,
) -> ParallelSummary {
    assert!(max_in_flight >= 1, "need at least one execution slot");
    run_with_policy(
        target,
        optimizer,
        total_trials,
        SchedulePolicy::AsyncSlots { k: max_in_flight },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{redis_target, spark_target};
    use autotune_optimizer::BayesianOptimizer;

    #[test]
    fn parallel_campaign_finds_good_config() {
        let target = redis_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let summary = run_parallel(&target, &mut opt, 8, 4, 3);
        assert_eq!(summary.storage.len(), 32);
        assert!(summary.best_cost.is_finite());
        // Machine seconds = sum; wall clock = sum of per-batch maxima, so
        // parallelism must buy roughly batch_size x wall-clock reduction.
        assert!(
            summary.wall_clock_s < summary.machine_seconds / 3.0,
            "wall {} vs machine {}",
            summary.wall_clock_s,
            summary.machine_seconds
        );
    }

    #[test]
    fn batch_of_one_equals_sequential_accounting() {
        let target = redis_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let summary = run_parallel(&target, &mut opt, 6, 1, 5);
        assert!((summary.wall_clock_s - summary.machine_seconds).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let target = redis_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            run_parallel(&target, &mut opt, 4, 4, 9).best_cost
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn async_beats_sync_on_heterogeneous_durations() {
        // Spark runtimes vary wildly with the config, so a synchronous
        // batch idles on its slowest member while async refills slots.
        let total = 32;
        let k = 4;
        let sync = {
            let target = spark_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            run_parallel(&target, &mut opt, total / k, k, 11)
        };
        let asyn = {
            let target = spark_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            run_async_parallel(&target, &mut opt, total, k, 11)
        };
        assert_eq!(asyn.storage.len(), total);
        assert!(
            asyn.wall_clock_s < sync.wall_clock_s,
            "async wall clock {} should beat sync {}",
            asyn.wall_clock_s,
            sync.wall_clock_s
        );
        assert!(asyn.best_cost.is_finite());
    }

    #[test]
    fn async_single_slot_is_sequential() {
        let target = redis_target();
        let mut opt = BayesianOptimizer::gp(target.space().clone());
        let s = run_async_parallel(&target, &mut opt, 8, 1, 23);
        assert!((s.wall_clock_s - s.machine_seconds).abs() < 1e-9);
        assert_eq!(s.storage.len(), 8);
    }

    #[test]
    fn larger_batches_reach_quality_in_less_wall_clock() {
        // Same total trial count; batch=4 should use ~1/3 the wall clock
        // of batch=1 while finding a comparable optimum.
        let run = |batches: usize, k: usize| {
            let target = redis_target();
            let mut opt = BayesianOptimizer::gp(target.space().clone());
            run_parallel(&target, &mut opt, batches, k, 13)
        };
        let serial = run(24, 1);
        let par = run(6, 4);
        assert!(par.wall_clock_s < serial.wall_clock_s * 0.5);
        assert!(
            par.best_cost < serial.best_cost * 2.0,
            "parallel quality collapsed"
        );
    }
}

//! E24 (slide 84): avoiding performance regressions — guardrailed
//! exploration vs unconstrained exploration on a production-like stream.
//! The menu contains good, mediocre, regressing, and crashing configs;
//! safety should bound the user-visible damage at a small optimality cost.

use crate::report::{f, Report};
use autotune::{Objective, OnlineTuner, OnlineTunerConfig, Target};
use autotune_rl::SafeTunerConfig;
use autotune_sim::{DbmsSim, Environment, Workload, WorkloadSchedule};

/// Runs the experiment.
pub fn run() -> Report {
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::tpcc(2_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    );
    let schedule = WorkloadSchedule::new(vec![(200, Workload::tpcc(2_000.0))]);
    let steps = 200;
    let base = target.space().default_config().with("buffer_pool_gb", 8.0);
    let candidates = vec![
        base.clone(),                                  // good incumbent
        base.clone().with("log_file_size_mb", 2048.0), // better
        base.clone().with("worker_threads", 512i64),   // regressing
        base.clone().with("buffer_pool_gb", 15.5),     // crashes (OOM)
    ];

    let run = |safety: Option<SafeTunerConfig>, seed: u64| {
        // ε-greedy keeps exploring forever — exactly the behaviour that
        // needs a guardrail in production. The same policy runs on both
        // sides; only the guardrail differs.
        let mut tuner = OnlineTuner::new(
            candidates.clone(),
            OnlineTunerConfig {
                policy: autotune_optimizer::bandit::BanditPolicy::EpsilonGreedy { epsilon: 0.15 },
                safety,
                shift: None,
            },
        );
        tuner.run(&target, &schedule, steps, seed);
        let crashes = tuner.history().iter().filter(|s| s.cost.is_nan()).count();
        // "Regressions served": steps whose cost exceeded 1.5x the median.
        let finite: Vec<f64> = tuner
            .history()
            .iter()
            .filter(|s| s.cost.is_finite())
            .map(|s| s.cost)
            .collect();
        let med = autotune_linalg::stats::median(&finite);
        let regressions = finite.iter().filter(|&&c| c > 1.5 * med).count();
        (tuner.cumulative_cost(), crashes, regressions)
    };

    let (unsafe_cost, unsafe_crashes, unsafe_regr) = run(None, 3);
    let (safe_cost, safe_crashes, safe_regr) = run(Some(SafeTunerConfig::default()), 3);

    let rows = vec![
        vec![
            "unconstrained".into(),
            f(unsafe_cost, 2),
            unsafe_crashes.to_string(),
            unsafe_regr.to_string(),
        ],
        vec![
            "guardrailed".into(),
            f(safe_cost, 2),
            safe_crashes.to_string(),
            safe_regr.to_string(),
        ],
    ];
    let shape_holds = safe_crashes < unsafe_crashes
        && safe_crashes <= 4
        && safe_regr <= unsafe_regr
        && safe_cost <= unsafe_cost * 1.2;
    Report {
        id: "E24",
        title: "Safe exploration / regression guardrails (slide 84)",
        headers: vec![
            "policy",
            "cumulative cost",
            "crashes served",
            "regressions served",
        ],
        rows,
        paper_claim: "safety limits regressions/crashes to a handful at modest optimality cost",
        measured: format!(
            "guardrail: {safe_crashes} crashes vs {unsafe_crashes} unconstrained; cost {} vs {}",
            f(safe_cost, 2),
            f(unsafe_cost, 2)
        ),
        shape_holds,
    }
}

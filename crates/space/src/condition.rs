//! Conditional (structured) parameter dependencies.
//!
//! The tutorial's example: when PostgreSQL's `jit` knob is `off`, the
//! `jit_above_cost` / `jit_inline_above_cost` / … knobs are meaningless and
//! should not be explored. A [`Condition`] records "child is active only
//! when parent currently equals one of these values".

use crate::{Config, Value};
use serde::{Deserialize, Serialize};

/// Activation rule for a conditional parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// The dependent parameter.
    pub child: String,
    /// The controlling parameter.
    pub parent: String,
    /// Parent values that activate the child.
    pub active_when: Vec<Value>,
}

impl Condition {
    /// `child` is active only when `parent == value`.
    pub fn equals(
        child: impl Into<String>,
        parent: impl Into<String>,
        value: impl Into<Value>,
    ) -> Self {
        Condition {
            child: child.into(),
            parent: parent.into(),
            active_when: vec![value.into()],
        }
    }

    /// `child` is active when `parent` is any of `values`.
    pub fn any_of(
        child: impl Into<String>,
        parent: impl Into<String>,
        values: impl IntoIterator<Item = Value>,
    ) -> Self {
        Condition {
            child: child.into(),
            parent: parent.into(),
            active_when: values.into_iter().collect(),
        }
    }

    /// Whether this condition is satisfied under `config` (i.e. whether the
    /// child should be active). A missing parent counts as inactive: the
    /// parent itself may be a deactivated conditional.
    pub fn is_active(&self, config: &Config) -> bool {
        config
            .get(&self.parent)
            .is_some_and(|v| self.active_when.contains(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_activation() {
        let c = Condition::equals("jit_above_cost", "jit", true);
        let on = Config::new().with("jit", true);
        let off = Config::new().with("jit", false);
        assert!(c.is_active(&on));
        assert!(!c.is_active(&off));
    }

    #[test]
    fn missing_parent_is_inactive() {
        let c = Condition::equals("child", "parent", "x");
        assert!(!c.is_active(&Config::new()));
    }

    #[test]
    fn any_of_activation() {
        let c = Condition::any_of(
            "sync_knob",
            "flush",
            [Value::Cat("fsync".into()), Value::Cat("O_DSYNC".into())],
        );
        assert!(c.is_active(&Config::new().with("flush", "fsync")));
        assert!(c.is_active(&Config::new().with("flush", "O_DSYNC")));
        assert!(!c.is_active(&Config::new().with("flush", "O_DIRECT")));
    }
}

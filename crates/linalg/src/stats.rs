//! Scalar statistics shared across the workspace: means, variances,
//! quantiles, correlation, and the standard-normal CDF/PDF that the
//! acquisition functions need.

/// Arithmetic mean; 0.0 for an empty slice (callers treat empty histories
/// as "no information", and 0.0 composes with the additive estimators).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance; 0.0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (linear-interpolated); NaN for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile `q in [0, 1]`; NaN for an empty slice.
///
/// Uses the same convention as numpy's default (`linear`): the quantile of
/// the sorted values at fractional rank `q * (n - 1)`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    // total_cmp orders NaN above +inf, so NaN inputs land at the top
    // quantiles deterministically instead of panicking the sort.
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// 95th-percentile convenience wrapper (the tutorial's favourite tail
/// metric).
pub fn p95(xs: &[f64]) -> f64 {
    quantile(xs, 0.95)
}

/// Pearson correlation coefficient; 0.0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Standard normal probability density.
#[inline]
pub fn normal_pdf(z: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal cumulative distribution function.
///
/// Uses the complementary-error-function identity with the Abramowitz &
/// Stegun 7.1.26 polynomial (max abs error ~1.5e-7, plenty for acquisition
/// functions).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z * std::f64::consts::FRAC_1_SQRT_2)
}

/// Complementary error function (A&S 7.1.26 polynomial approximation).
fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * ax);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let y = poly * (-ax * ax).exp();
    if x >= 0.0 {
        y
    } else {
        2.0 - y
    }
}

/// Welford online mean/variance accumulator, used by the trial-history
/// aggregators so repeated measurements never need to be kept in memory.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_empty_is_nan() {
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn p95_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((p95(&xs) - 95.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0];
        let y_pos = [2.0, 4.0, 6.0];
        let y_neg = [6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn normal_cdf_symmetry_and_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        for z in [-2.0, -0.5, 0.3, 1.7] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!(normal_pdf(1.0) < normal_pdf(0.0));
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), 1.0);
        assert_eq!(rs.max(), 9.0);
        assert_eq!(rs.count(), 8);
    }

    #[test]
    fn running_stats_merge_matches_combined() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 20.0];
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        xs.iter().for_each(|&x| a.push(x));
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);
        let all = [1.0, 2.0, 3.0, 10.0, 20.0];
        assert!((a.mean() - mean(&all)).abs() < 1e-12);
        assert!((a.variance() - variance(&all)).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        a.push(1.0);
        let b = RunningStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = RunningStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }
}

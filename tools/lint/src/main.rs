//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! autotune-lint [--deny-all] [--quiet] [PATH ...]
//! ```
//!
//! With no paths, lints every `crates/*/src` file of the enclosing
//! workspace. Explicit paths are linted as library code (useful for
//! one-off checks). `--deny-all` exits nonzero when any violation
//! remains after allows — that is the CI gate.

use autotune_lint::{find_workspace_root, lint_source, lint_workspace, CrateKind, Report};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut quiet = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: autotune-lint [--deny-all] [--quiet] [PATH ...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("autotune-lint: unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => paths.push(other.to_string()),
        }
    }

    let report = if paths.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("autotune-lint: cannot read current dir: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("autotune-lint: no workspace root (Cargo.toml + crates/) above {cwd:?}");
            return ExitCode::FAILURE;
        };
        match lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("autotune-lint: walk failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut r = Report::default();
        for p in &paths {
            match std::fs::read_to_string(Path::new(p)) {
                Ok(src) => r.absorb(lint_source(p, CrateKind::Library, &src)),
                Err(e) => {
                    eprintln!("autotune-lint: {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        r
    };

    for v in &report.violations {
        println!("{v}");
    }
    if !quiet {
        eprintln!("{}", report.summary());
    }
    if deny_all && !report.violations.is_empty() {
        eprintln!(
            "autotune-lint: {} violation(s) — fix them or annotate with \
             `// lint: allow(Dx) <reason>`",
            report.violations.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Robustness integration tests for the serving layer: frame-codec
//! fuzzing (truncation, bit-flips, oversized prefixes must yield typed
//! errors, never panics or hangs), chaos-injected crash recovery
//! (recovered fleets finish byte-identical to straight runs), and
//! overload shedding (accepted campaigns stay deterministic while the
//! registry sheds).

use autotune::SchedulePolicy;
use autotune_serve::{
    read_frame, write_frame, CampaignSpec, ChaosPlan, DurableRegistry, Request, ServeError,
    SystemKind, WalConfig, MAX_FRAME_LEN,
};
use proptest::prelude::*;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn spec(i: u64) -> CampaignSpec {
    let mut s = CampaignSpec::minimal(format!("fuzz-{i}"), SystemKind::Redis, 5, 900 + i);
    s.policy = SchedulePolicy::AsyncSlots { k: 2 };
    s
}

fn valid_frame() -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(
        &mut buf,
        &Request::Register {
            spec: spec(0),
            request_id: Some(7),
        },
    )
    .unwrap();
    buf
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "autotune-robust-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drains a byte stream through the codec; must terminate without
/// panicking and return only `Ok` or typed errors.
fn drain(bytes: &[u8]) -> Result<usize, ServeError> {
    let mut cursor = Cursor::new(bytes);
    let mut n = 0;
    loop {
        match read_frame::<Request>(&mut cursor)? {
            Some(_) => n += 1,
            None => return Ok(n),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary garbage never panics or hangs the codec.
    #[test]
    fn codec_survives_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255, 0..512usize)) {
        let _ = drain(&bytes);
    }

    /// A frame truncated anywhere strictly before its end never decodes
    /// to a message: the reader reports EOF-at-boundary or a typed
    /// error, and never panics.
    #[test]
    fn truncated_frames_never_decode(cut_frac in 0.0..1.0f64) {
        let frame = valid_frame();
        let cut = ((frame.len() - 1) as f64 * cut_frac) as usize;
        match drain(&frame[..cut]) {
            Ok(n) => prop_assert_eq!(n, 0, "truncated frame decoded as a message"),
            Err(ServeError::Protocol(_)) | Err(ServeError::Decode(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// A single bit flip anywhere in the payload body is either caught
    /// as a typed decode error or yields a (different but well-formed)
    /// message; the codec itself never panics.
    #[test]
    fn bit_flips_are_typed_errors_or_clean_decodes(byte_frac in 0.0..1.0f64, bit in 0u8..8) {
        let mut frame = valid_frame();
        let body = frame.len() - 4;
        let at = 4 + ((body - 1) as f64 * byte_frac) as usize;
        frame[at] ^= 1 << bit;
        match drain(&frame) {
            Ok(_) => {}
            Err(ServeError::Decode(_))
            | Err(ServeError::Protocol(_))
            | Err(ServeError::FrameTooLarge { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Any length prefix over the cap is rejected up front as
    /// `FrameTooLarge` — no allocation, no read of the body.
    #[test]
    fn oversized_prefixes_are_rejected_up_front(extra in 1u64..u32::MAX as u64 - MAX_FRAME_LEN as u64) {
        let len = (MAX_FRAME_LEN as u64 + extra) as u32;
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"ignored");
        match drain(&bytes) {
            Err(ServeError::FrameTooLarge { len: l, max }) => {
                prop_assert_eq!(l, len as u64);
                prop_assert_eq!(max, MAX_FRAME_LEN as u64);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }
}

/// Crash the durable fleet at chaos-chosen append operations, recover
/// from the WAL, finish, and demand byte-identical final histories —
/// the integration-level version of E34.
#[test]
fn chaos_crash_recovery_is_byte_identical() {
    let specs: Vec<CampaignSpec> = (0..6).map(spec).collect();
    let want: Vec<String> = specs
        .iter()
        .map(|s| {
            let mut c = s.build();
            c.run();
            c.storage().to_json()
        })
        .collect();
    for seed in [11u64, 23, 47] {
        let dir = temp_dir(&format!("chaos-{seed}"));
        let mut durable = DurableRegistry::create(&dir, 3, WalConfig::default()).unwrap();
        durable.set_chaos(
            ChaosPlan::new(seed)
                .with_crashes(0.03)
                .with_worker_panics(0.05),
        );
        for s in &specs {
            if durable.register_spec(s).is_err() {
                break;
            }
        }
        let mut crashes = 0;
        loop {
            if durable.crashed().is_some() {
                crashes += 1;
                let (r, _) = DurableRegistry::open(&dir, 3, WalConfig::default()).unwrap();
                durable = r;
                // Chaos stays off after recovery: the process that
                // replaced the dead one runs clean.
                for s in &specs {
                    let missing = !durable.registry().ids().iter().any(|id| {
                        durable
                            .registry()
                            .stats(*id)
                            .map(|st| st.name == s.name)
                            .unwrap_or(false)
                    });
                    if missing {
                        durable.register_spec(s).unwrap();
                    }
                }
            }
            if !durable.registry().has_runnable() {
                break;
            }
            let _ = durable.step_round();
        }
        for (i, s) in specs.iter().enumerate() {
            let id = durable
                .registry()
                .ids()
                .into_iter()
                .find(|id| {
                    durable
                        .registry()
                        .stats(*id)
                        .map(|st| st.name == s.name)
                        .unwrap_or(false)
                })
                .expect("campaign survived recovery");
            let got = durable.registry().campaign(id).unwrap().storage().to_json();
            assert_eq!(
                got, want[i],
                "seed {seed}: campaign {i} diverged (crashes so far: {crashes})"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Execution environment (tutorial slide 8: the "context").
//!
//! Hardware configuration, VM size, and the per-machine performance factor
//! injected by [`crate::CloudNoise`]. Changing the environment shifts which
//! knob values are optimal (slide 67's VM-resize discussion), which the
//! simulators model by scaling service times and capacity limits from these
//! fields.

use serde::{Deserialize, Serialize};

/// The hardware/VM context a trial runs in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// VM memory, GiB.
    pub ram_gb: f64,
    /// vCPU count.
    pub cores: u32,
    /// Sequential disk bandwidth, MiB/s.
    pub disk_mbps: f64,
    /// Random-read IOPS capability of the storage.
    pub disk_iops: f64,
    /// Hourly price of this VM size, dollars.
    pub cost_per_hour: f64,
    /// Multiplicative performance factor of the specific machine the trial
    /// landed on (1.0 = nominal; cloud noise sets this).
    pub machine_factor: f64,
}

impl Environment {
    /// A small cloud VM: 2 vCPU / 8 GiB / modest SSD.
    pub fn small() -> Self {
        Environment {
            ram_gb: 8.0,
            cores: 2,
            disk_mbps: 250.0,
            disk_iops: 8_000.0,
            cost_per_hour: 0.10,
            machine_factor: 1.0,
        }
    }

    /// A medium cloud VM: 4 vCPU / 16 GiB.
    pub fn medium() -> Self {
        Environment {
            ram_gb: 16.0,
            cores: 4,
            disk_mbps: 500.0,
            disk_iops: 16_000.0,
            cost_per_hour: 0.20,
            machine_factor: 1.0,
        }
    }

    /// A large cloud VM: 16 vCPU / 64 GiB / fast NVMe.
    pub fn large() -> Self {
        Environment {
            ram_gb: 64.0,
            cores: 16,
            disk_mbps: 2_000.0,
            disk_iops: 64_000.0,
            cost_per_hour: 0.80,
            machine_factor: 1.0,
        }
    }

    /// Returns a copy pinned to a specific machine factor.
    pub fn on_machine(&self, factor: f64) -> Self {
        Environment {
            machine_factor: factor,
            ..self.clone()
        }
    }
}

impl Default for Environment {
    fn default() -> Self {
        Environment::medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let s = Environment::small();
        let m = Environment::medium();
        let l = Environment::large();
        assert!(s.ram_gb < m.ram_gb && m.ram_gb < l.ram_gb);
        assert!(s.cores < m.cores && m.cores < l.cores);
        assert!(s.cost_per_hour < m.cost_per_hour && m.cost_per_hour < l.cost_per_hour);
    }

    #[test]
    fn on_machine_only_changes_factor() {
        let base = Environment::medium();
        let noisy = base.on_machine(1.2);
        assert_eq!(noisy.machine_factor, 1.2);
        assert_eq!(noisy.ram_gb, base.ram_gb);
        assert_eq!(noisy.cores, base.cores);
    }

    #[test]
    fn serde_roundtrip() {
        let e = Environment::large();
        let json = serde_json::to_string(&e).unwrap();
        let back: Environment = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}

//! Sequential model-based (Bayesian) optimization (tutorial slides 32-50).
//!
//! The loop (slide 33):
//! 1. evaluate the expensive function,
//! 2. update the statistical model,
//! 3. maximize the acquisition function to pick the next configuration,
//! 4. repeat.
//!
//! Two surrogate choices are built in: a Gaussian process over the one-hot
//! encoding (the classic), and a SMAC-style random forest over the unit
//! encoding (better for conditional/categorical spaces, slide 50-51).
//! Acquisition maximization is random multi-start plus coordinate-wise
//! local refinement — derivative-free so it works identically for both
//! surrogates.

use crate::{AcquisitionFunction, BestTracker, Observation, Optimizer};
use autotune_space::{Config, Space};
use autotune_surrogate::{
    GaussianProcess, HyperFitConfig, Matern52, RandomForest, RandomForestConfig, Surrogate,
};
use rand::{RngCore, SeedableRng};

/// Which surrogate model drives the optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateChoice {
    /// Gaussian process with a Matérn-5/2 ARD kernel over the one-hot
    /// encoding.
    GaussianProcess,
    /// Random forest over the unit encoding (SMAC).
    RandomForest,
}

/// Tunables of the BO loop itself.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Random configurations evaluated before the model kicks in.
    pub n_init: usize,
    /// Acquisition function.
    pub acquisition: AcquisitionFunction,
    /// Random candidates scored per suggestion.
    pub n_candidates: usize,
    /// Local-refinement iterations around the best random candidate.
    pub n_local_steps: usize,
    /// Refit kernel hyperparameters every this many observations
    /// (0 disables refitting).
    pub refit_every: usize,
    /// Surrogate family.
    pub surrogate: SurrogateChoice,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            n_init: 8,
            acquisition: AcquisitionFunction::ExpectedImprovement,
            n_candidates: 256,
            n_local_steps: 20,
            refit_every: 5,
            surrogate: SurrogateChoice::GaussianProcess,
        }
    }
}

/// Bayesian optimizer over a configuration space.
pub struct BayesianOptimizer {
    space: Space,
    config: BoConfig,
    model: Box<dyn Surrogate>,
    /// All observations as (encoded point, value).
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    /// Raw observations for warm-start export.
    history: Vec<Observation>,
    /// Constant-liar values currently pinned for in-flight batch points.
    liars: Vec<Vec<f64>>,
    dirty: bool,
    observations_since_refit: usize,
    n_refits: usize,
    /// Finite-valued observations seen (crashes excluded): the random-init
    /// phase must collect this many *informative* points. A warm start
    /// consisting purely of crash penalties gives the surrogate no
    /// contrast, so it must not satisfy `n_init` by itself.
    n_finite: usize,
    tracker: BestTracker,
}

impl std::fmt::Debug for BayesianOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesianOptimizer")
            .field("surrogate", &self.config.surrogate)
            .field("acquisition", &self.config.acquisition)
            .field("n_observed", &self.ys.len())
            .finish()
    }
}

impl BayesianOptimizer {
    /// Creates a BO instance with explicit configuration.
    pub fn new(space: Space, config: BoConfig) -> Self {
        let model: Box<dyn Surrogate> = match config.surrogate {
            SurrogateChoice::GaussianProcess => {
                let d = space.onehot_dim().max(1);
                Box::new(GaussianProcess::new(
                    Box::new(Matern52::ard(vec![0.5; d], 1.0)),
                    1e-6,
                ))
            }
            SurrogateChoice::RandomForest => {
                Box::new(RandomForest::new(RandomForestConfig::default()))
            }
        };
        BayesianOptimizer {
            space,
            config,
            model,
            xs: Vec::new(),
            ys: Vec::new(),
            history: Vec::new(),
            liars: Vec::new(),
            dirty: false,
            observations_since_refit: 0,
            n_refits: 0,
            n_finite: 0,
            tracker: BestTracker::default(),
        }
    }

    /// GP-surrogate BO with default settings.
    pub fn gp(space: Space) -> Self {
        BayesianOptimizer::new(space, BoConfig::default())
    }

    /// SMAC: random-forest surrogate with EI.
    pub fn smac(space: Space) -> Self {
        BayesianOptimizer::new(
            space,
            BoConfig {
                surrogate: SurrogateChoice::RandomForest,
                ..Default::default()
            },
        )
    }

    /// Encodes a config per the surrogate's preferred layout.
    fn encode(&self, config: &Config) -> Vec<f64> {
        let r = match self.config.surrogate {
            SurrogateChoice::GaussianProcess => self.space.encode_onehot(config),
            SurrogateChoice::RandomForest => self.space.encode_unit(config),
        };
        r.expect("configs produced against this space must encode")
    }

    /// Imports prior observations (knowledge transfer / warm start,
    /// tutorial slide 67) without counting them against `n_init`.
    pub fn warm_start(&mut self, observations: &[Observation]) {
        for obs in observations {
            self.observe(&obs.config, obs.value);
        }
    }

    /// All raw observations so far (for exporting to another tuner).
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// Refits the surrogate if new data arrived since the last fit.
    fn ensure_fitted(&mut self) {
        if !self.dirty || self.ys.is_empty() {
            return;
        }
        // Include constant liars while a batch is in flight.
        let (xs, ys): (Vec<Vec<f64>>, Vec<f64>) = if self.liars.is_empty() {
            (self.xs.clone(), self.ys.clone())
        } else {
            let lie = autotune_linalg::stats::mean(&self.ys);
            let mut xs = self.xs.clone();
            let mut ys = self.ys.clone();
            for l in &self.liars {
                xs.push(l.clone());
                ys.push(lie);
            }
            (xs, ys)
        };
        if self.model.fit(&xs, &ys).is_err() {
            // A degenerate fit (e.g. all-identical points) falls back to
            // whatever the previous model state was; suggestions degrade to
            // prior-driven sampling rather than crashing the tuner.
        }
        self.dirty = false;
    }

    /// Maybe refit GP hyperparameters on the refit cadence.
    fn maybe_refit_hypers(&mut self, rng: &mut dyn RngCore) {
        if self.config.refit_every == 0
            || self.config.surrogate != SurrogateChoice::GaussianProcess
            || self.observations_since_refit < self.config.refit_every
            || self.n_finite < self.config.n_init
        {
            return;
        }
        self.observations_since_refit = 0;
        self.ensure_fitted();
        // Downcast-free: rebuild a GP, fit hypers on the raw data.
        let d = self.space.onehot_dim().max(1);
        let mut gp = GaussianProcess::new(Box::new(Matern52::ard(vec![0.5; d], 1.0)), 1e-6);
        if gp.fit(&self.xs, &self.ys).is_ok() {
            let mut r = rand::rngs::StdRng::from_seed({
                let mut seed = [0u8; 32];
                rng.fill_bytes(&mut seed);
                seed
            });
            let cfg = HyperFitConfig::default();
            if gp.fit_hyperparameters(&cfg, &mut r).is_ok() {
                self.model = Box::new(gp);
                self.dirty = false;
                self.n_refits += 1;
            }
        }
    }

    /// Proposes the next point by maximizing the acquisition function over
    /// random candidates plus local refinement.
    fn propose(&mut self, rng: &mut dyn RngCore) -> Config {
        self.ensure_fitted();
        let best_val = self.tracker.best().map_or(0.0, |b| b.value);
        let mut rng = rng;
        // Random candidates.
        let mut best_cfg: Option<(Config, Vec<f64>, f64)> = None;
        for _ in 0..self.config.n_candidates {
            let cfg = self.space.sample(&mut rng);
            let x = self.encode(&cfg);
            let score = {
                let pred = self.model.predict(&x);
                self.config.acquisition.score(&pred, best_val, &mut rng)
            };
            if best_cfg.as_ref().is_none_or(|(_, _, s)| score > *s) {
                best_cfg = Some((cfg, x, score));
            }
        }
        let (mut cfg, mut x, mut score) =
            best_cfg.expect("n_candidates >= 1 guarantees a candidate");
        // Local refinement: perturb the winner, keep improvements.
        for step in 0..self.config.n_local_steps {
            let scale = 0.1 * (1.0 - step as f64 / self.config.n_local_steps.max(1) as f64);
            let neighbor = self.space.neighbor(&cfg, scale.max(0.01), &mut rng);
            let nx = self.encode(&neighbor);
            let nscore = {
                let pred = self.model.predict(&nx);
                self.config.acquisition.score(&pred, best_val, &mut rng)
            };
            if nscore > score {
                cfg = neighbor;
                x = nx;
                score = nscore;
            }
        }
        let _ = (x, score);
        cfg
    }
}

impl Optimizer for BayesianOptimizer {
    fn suggest(&mut self, rng: &mut dyn RngCore) -> Config {
        let mut r = rng;
        if self.n_finite < self.config.n_init {
            return self.space.sample(&mut r);
        }
        self.maybe_refit_hypers(r);
        self.propose(r)
    }

    fn observe(&mut self, config: &Config, value: f64) {
        self.tracker.observe(config, value);
        let x = self.encode(config);
        // Resolve any constant liar pinned at this point.
        if let Some(pos) = self
            .liars
            .iter()
            .position(|l| autotune_linalg::squared_distance(l, &x) < 1e-18)
        {
            self.liars.swap_remove(pos);
        }
        // Crashed trials (NaN) are recorded at a pessimistic value so the
        // model learns to avoid the region (slide 67: "bad samples: make it
        // up — N * worst_score_measured").
        if value.is_finite() {
            self.n_finite += 1;
        }
        let recorded = if value.is_nan() {
            let worst = self.ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if worst.is_finite() {
                worst + (worst.abs() + 1.0)
            } else {
                1e9
            }
        } else {
            value
        };
        self.xs.push(x);
        self.ys.push(recorded);
        self.history.push(Observation {
            config: config.clone(),
            value: recorded,
        });
        self.observations_since_refit += 1;
        self.dirty = true;
    }

    fn best(&self) -> Option<&Observation> {
        self.tracker.best()
    }

    fn space(&self) -> &Space {
        &self.space
    }

    fn name(&self) -> &str {
        match self.config.surrogate {
            SurrogateChoice::GaussianProcess => "bo_gp",
            SurrogateChoice::RandomForest => "smac",
        }
    }

    /// Constant-liar pending mark (slide 57): pin a pessimistic pseudo-
    /// observation at the proposed point so proposals made while this one
    /// is in flight spread out instead of piling onto one optimum. The
    /// liar stays pinned until the real observation arrives. During the
    /// random-init phase there is no model to mislead, so nothing is
    /// pinned.
    fn mark_pending(&mut self, config: &Config) {
        if self.n_finite >= self.config.n_init {
            let x = self.encode(config);
            self.liars.push(x);
            self.dirty = true;
        }
    }

    fn unmark_pending(&mut self, config: &Config) {
        let x = self.encode(config);
        if let Some(pos) = self
            .liars
            .iter()
            .position(|l| autotune_linalg::squared_distance(l, &x) < 1e-18)
        {
            self.liars.swap_remove(pos);
            self.dirty = true;
        }
    }

    fn n_observed(&self) -> usize {
        self.tracker.n()
    }

    fn n_refits(&self) -> usize {
        self.n_refits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{run_loop, sphere, sphere_space};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gp_bo_beats_budget_on_sphere() {
        let mut opt = BayesianOptimizer::gp(sphere_space());
        let best = run_loop(&mut opt, sphere, 40, 11);
        assert!(best < 0.05, "GP-BO best {best} after 40 trials");
    }

    #[test]
    fn smac_solves_sphere() {
        let mut opt = BayesianOptimizer::smac(sphere_space());
        let best = run_loop(&mut opt, sphere, 60, 12);
        assert!(best < 0.15, "SMAC best {best} after 60 trials");
    }

    #[test]
    fn first_suggestions_are_random_init() {
        let mut opt = BayesianOptimizer::gp(sphere_space());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..opt.config.n_init {
            let c = opt.suggest(&mut rng);
            opt.observe(&c, 1.0);
        }
        assert_eq!(opt.n_observed(), opt.config.n_init);
    }

    #[test]
    fn batch_suggestions_are_diverse() {
        let space = sphere_space();
        let mut opt = BayesianOptimizer::gp(space.clone());
        let mut rng = StdRng::seed_from_u64(4);
        // Seed the model.
        for _ in 0..10 {
            let c = opt.suggest(&mut rng);
            let v = sphere(&c);
            opt.observe(&c, v);
        }
        let batch = opt.suggest_batch(4, &mut rng);
        assert_eq!(batch.len(), 4);
        // Pairwise distances in encoded space must be nonzero: the constant
        // liar must prevent duplicate proposals.
        for i in 0..batch.len() {
            for j in (i + 1)..batch.len() {
                let a = space.encode_unit(&batch[i]).unwrap();
                let b = space.encode_unit(&batch[j]).unwrap();
                let d = autotune_linalg::squared_distance(&a, &b);
                assert!(d > 1e-12, "batch points {i} and {j} identical");
            }
        }
        // Observing the real values releases the liars.
        for c in &batch {
            let v = sphere(c);
            opt.observe(c, v);
        }
        assert!(opt.liars.is_empty());
    }

    #[test]
    fn nan_recorded_as_pessimistic() {
        let space = sphere_space();
        let mut opt = BayesianOptimizer::gp(space.clone());
        opt.observe(&space.default_config(), 2.0);
        opt.observe(&space.default_config().with("x", 1.0), f64::NAN);
        // The NaN trial must not be best, and must be stored worse than 2.0.
        assert_eq!(opt.best().unwrap().value, 2.0);
        assert!(opt.ys[1] > 2.0);
    }

    #[test]
    fn warm_start_counts_as_observations() {
        let space = sphere_space();
        let mut donor = BayesianOptimizer::gp(space.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..12 {
            let c = donor.suggest(&mut rng);
            let v = sphere(&c);
            donor.observe(&c, v);
        }
        let mut recipient = BayesianOptimizer::gp(space);
        recipient.warm_start(donor.history());
        assert_eq!(recipient.n_observed(), 12);
        // Next suggestion is model-driven (past n_init) and valid.
        let c = recipient.suggest(&mut rng);
        assert!(recipient.space().validate_config(&c).is_ok());
    }

    #[test]
    fn handles_categorical_space() {
        use autotune_space::{Param, Space};
        let space = Space::builder()
            .add(Param::float("x", 0.0, 1.0))
            .add(Param::categorical("mode", &["slow", "fast", "turbo"]))
            .build()
            .unwrap();
        let objective = |c: &Config| {
            let x = c.get_f64("x").unwrap();
            let penalty = match c.get_str("mode").unwrap() {
                "turbo" => 0.0,
                "fast" => 0.5,
                _ => 1.0,
            };
            (x - 0.3).powi(2) + penalty
        };
        for mut opt in [
            BayesianOptimizer::gp(space.clone()),
            BayesianOptimizer::smac(space.clone()),
        ] {
            let best = run_loop(&mut opt, objective, 50, 21);
            assert!(best < 0.3, "{} best {best}", opt.name());
        }
    }
}

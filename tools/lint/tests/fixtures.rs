//! Snapshot tests over the fixture corpus: every violating fixture must
//! reproduce its `.expected` output byte-for-byte, every clean fixture
//! must be silent, and the allow hatch must suppress exactly its own
//! line. A final pair of tests drives the installed binary to pin the
//! `--deny-all` exit-code contract CI relies on.

use autotune_lint::{lint_source, CrateKind};
use std::path::PathBuf;
use std::process::Command;

const DIAGNOSTICS: [&str; 6] = ["d1", "d2", "d3", "d4", "d5", "d6"];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Lints a fixture as library code and renders violations one per line.
fn render(name: &str) -> String {
    let report = lint_source(name, CrateKind::Library, &read(name));
    report.violations.iter().map(|v| format!("{v}\n")).collect()
}

#[test]
fn violating_fixtures_match_snapshots() {
    for d in DIAGNOSTICS {
        let name = format!("{d}_violating.rs");
        let expected = read(&format!("{d}_violating.expected"));
        let got = render(&name);
        assert!(!got.is_empty(), "{name} must produce violations");
        assert_eq!(got, expected, "snapshot mismatch for {name}");
    }
}

#[test]
fn clean_fixtures_are_silent() {
    for d in DIAGNOSTICS {
        let name = format!("{d}_clean.rs");
        assert_eq!(render(&name), "", "{name} should lint clean");
    }
}

#[test]
fn allow_suppresses_exactly_its_own_line() {
    let name = "allow_lines.rs";
    let report = lint_source(name, CrateKind::Library, &read(name));
    // Line 5 carries the allow; the identical unwrap on line 6 still
    // fires, and nothing else does.
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].line, 6);
    assert_eq!(report.violations[0].code, "D5");
    assert_eq!(report.allowed.get("D5"), Some(&1));
}

#[test]
fn deny_all_binary_fails_on_violating_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg("--deny-all")
        .arg(fixture_dir().join("d5_violating.rs"))
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "deny-all must fail on violations");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("D5"), "violations printed: {stdout}");
}

#[test]
fn deny_all_binary_passes_on_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg("--deny-all")
        .arg(fixture_dir().join("d5_clean.rs"))
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "deny-all must pass on clean input");
}

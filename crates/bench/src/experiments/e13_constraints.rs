//! E13 (slide 60): constrained optimization — MySQL's
//! `chunk_size * instances <= buffer_pool_size` as a black-box constraint.
//! The sampler must never propose infeasible configurations, and BO must
//! still find the feasible optimum.

use crate::experiments::dbms_target;
use crate::report::{f, Report};
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    let target = dbms_target();
    let space = target.space().clone();

    // 1. Feasibility of suggestions across the whole campaign.
    let mut opt = BayesianOptimizer::gp(space.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let budget = 40;
    let mut infeasible = 0;
    let mut best = f64::INFINITY;
    for _ in 0..budget {
        let cfg = opt.suggest(&mut rng);
        if !space.is_feasible(&cfg) {
            infeasible += 1;
        }
        let e = target.evaluate(&cfg, &mut rng);
        opt.observe(&cfg, e.cost);
        if e.cost.is_finite() {
            best = best.min(e.cost);
        }
    }

    // 2. The best config respects the constraint with margin data shown.
    let best_cfg = opt.best().expect("campaign ran").config.clone();
    let chunk = best_cfg.get_f64("buffer_pool_chunk_gb").unwrap_or(0.0);
    let inst = best_cfg.get_i64("buffer_pool_instances").unwrap_or(1) as f64;
    let pool = best_cfg.get_f64("buffer_pool_gb").unwrap_or(0.0);

    // 3. Random sampling feasibility (the rejection sampler at work).
    let mut sample_violations = 0;
    for _ in 0..500 {
        if !space.is_feasible(&space.sample(&mut rng)) {
            sample_violations += 1;
        }
    }

    let rows = vec![
        vec!["suggestions".into(), budget.to_string()],
        vec!["infeasible suggestions".into(), infeasible.to_string()],
        vec![
            "sampler violations /500".into(),
            sample_violations.to_string(),
        ],
        vec!["best latency".into(), format!("{} ms", f(best, 4))],
        vec![
            "best config constraint".into(),
            format!(
                "{chunk:.2} x {inst:.0} = {:.2} <= {pool:.2} GB",
                chunk * inst
            ),
        ],
    ];
    let shape_holds = infeasible == 0
        && sample_violations == 0
        && chunk * inst <= pool + 1e-9
        && best.is_finite();
    Report {
        id: "E13",
        title: "Constrained search: chunk*instances <= pool (slide 60)",
        headers: vec!["quantity", "value"],
        rows,
        paper_claim: "constraint-aware search never proposes infeasible configs and still optimizes",
        measured: format!(
            "0 expected violations, got {infeasible} (BO) / {sample_violations} (sampler); best {} ms",
            f(best, 4)
        ),
        shape_holds,
    }
}

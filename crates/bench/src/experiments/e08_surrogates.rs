//! E8 (slide 50): other models for black-box optimization — GP-BO vs
//! SMAC's random forest vs CMA-ES vs PSO vs random, on the 12-knob DBMS
//! target (categoricals + conditionals, where forests are expected to be
//! competitive).

use crate::experiments::{dbms_target, mean_curve};
use crate::report::{f, Report};
use autotune_optimizer::{
    BayesianOptimizer, CmaEs, CmaEsConfig, Optimizer, ParticleSwarm, PsoConfig, RandomSearch,
};

/// Runs the experiment.
pub fn run() -> Report {
    let budget = 50;
    let seeds = 0..8u64;
    let space = || dbms_target().space().clone();
    type MethodFactory = Box<dyn Fn() -> Box<dyn Optimizer>>;
    let methods: Vec<(&str, MethodFactory)> = vec![
        (
            "random",
            Box::new(move || Box::new(RandomSearch::new(dbms_target().space().clone()))),
        ),
        (
            "bo_gp",
            Box::new(move || Box::new(BayesianOptimizer::gp(space()))),
        ),
        (
            "smac_rf",
            Box::new(move || Box::new(BayesianOptimizer::smac(dbms_target().space().clone()))),
        ),
        (
            "cma_es",
            Box::new(move || {
                Box::new(CmaEs::new(
                    dbms_target().space().clone(),
                    CmaEsConfig::default(),
                ))
            }),
        ),
        (
            "pso",
            Box::new(move || {
                Box::new(ParticleSwarm::new(
                    dbms_target().space().clone(),
                    PsoConfig::default(),
                ))
            }),
        ),
    ];
    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for (name, make) in &methods {
        let curve = mean_curve(|| make(), dbms_target, budget, seeds.clone());
        rows.push(vec![
            name.to_string(),
            format!("{} ms", f(curve[24], 4)),
            format!("{} ms", f(curve[budget - 1], 4)),
        ]);
        finals.push((name.to_string(), curve[budget - 1]));
    }
    let get = |n: &str| finals.iter().find(|(m, _)| m == n).expect("method ran").1;
    let random = get("random");
    let model_best = get("bo_gp").min(get("smac_rf"));
    let shape_holds = model_best < random && get("smac_rf") < random * 1.02;
    Report {
        id: "E8",
        title: "Surrogate families on the DBMS target (slide 50)",
        headers: vec!["method", "best@25", "best@50"],
        rows,
        paper_claim: "model-guided methods beat random; RF (SMAC) handles hybrid spaces well",
        measured: format!(
            "best model-guided {} ms vs random {} ms",
            f(model_best, 4),
            f(random, 4)
        ),
        shape_holds,
    }
}

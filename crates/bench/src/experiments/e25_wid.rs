//! E25 (slides 88-92): workload identification — fingerprint, embed,
//! cluster, reuse configs on similar workloads, detect shift. Reported:
//! clustering purity, reuse quality (vs per-workload tuning and vs
//! defaults), and shift-detection lag.

use crate::report::{f, Report};
use autotune::{Objective, SessionConfig, Target, TuningSession};
use autotune_optimizer::BayesianOptimizer;
use autotune_sim::{DbmsSim, Environment, SimSystem, Workload};
use autotune_wid::{
    purity, ConfigStore, Embedder, EmbedderKind, Fingerprint, KMeans, ShiftDetector,
    ShiftDetectorConfig, StoredConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families() -> Vec<(&'static str, Workload)> {
    vec![
        ("ycsb-c", Workload::ycsb_c(2_000.0)),
        ("ycsb-a", Workload::ycsb_a(2_000.0)),
        ("tpc-c", Workload::tpcc(2_000.0)),
        ("tpc-h", Workload::tpch(2.0)),
    ]
}

/// Runs the experiment.
pub fn run() -> Report {
    let env = Environment::medium();
    let sim = DbmsSim::new();
    let mut rng = StdRng::seed_from_u64(1);
    let fams = families();

    // 1. Fingerprint 15 noisy instances per family; cluster.
    let mut prints = Vec::new();
    let mut labels = Vec::new();
    for (idx, (_, w)) in fams.iter().enumerate() {
        for _ in 0..15 {
            let r = sim.run_trial(&sim.space().default_config(), w, &env, &mut rng);
            prints.push(Fingerprint::from_telemetry(&r.telemetry));
            labels.push(idx);
        }
    }
    let embedder = Embedder::fit(&prints, 4, EmbedderKind::Pca).expect("corpus large enough");
    let points = embedder.embed_all(&prints).expect("all embed");
    let km = KMeans::fit(&points, fams.len(), 11).expect("enough points");
    let pur = purity(km.assignments(), &labels);

    // 2. Tune one representative per family; store by centroid.
    let mut store = ConfigStore::new();
    let mut tuned_costs = Vec::new();
    for (idx, (name, w)) in fams.iter().enumerate() {
        let target = Target::simulated(
            Box::new(DbmsSim::new()),
            w.clone(),
            env.clone(),
            Objective::MinimizeLatencyAvg,
        );
        let opt = BayesianOptimizer::gp(target.space().clone());
        let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
        let summary = session
            .run(25, 50 + idx as u64)
            .expect("tuning campaign succeeds");
        tuned_costs.push(summary.best_cost);
        let members: Vec<&Vec<f64>> = points
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == idx)
            .map(|(p, _)| p)
            .collect();
        let mut centroid = vec![0.0; 4];
        for m in &members {
            autotune_linalg::axpy(1.0, m, &mut centroid);
        }
        centroid.iter_mut().for_each(|c| *c /= members.len() as f64);
        store.insert(StoredConfig {
            label: name.to_string(),
            embedding: centroid,
            config: summary.best_config,
            score: summary.best_cost,
        });
    }

    // 3. Reuse on fresh instances: match accuracy + cost vs tuned/default.
    let mut matches = 0;
    let mut reuse_ratio = Vec::new();
    let n_fresh = 20;
    for i in 0..n_fresh {
        let fam = i % fams.len();
        let w = &fams[fam].1;
        let r = sim.run_trial(&sim.space().default_config(), w, &env, &mut rng);
        let emb = embedder
            .embed(&Fingerprint::from_telemetry(&r.telemetry))
            .expect("fingerprint embeds");
        let rec = store.nearest(&emb).expect("store non-empty").0;
        if rec.label == fams[fam].0 {
            matches += 1;
        }
        let reused = sim.run_trial(&rec.config, w, &env, &mut rng).latency_avg_ms;
        reuse_ratio.push(reused / tuned_costs[fam]);
    }
    let reuse_mean = autotune_linalg::stats::mean(&reuse_ratio);

    // 4. Shift detection lag on a fingerprint stream.
    let mut det = ShiftDetector::new(ShiftDetectorConfig::default());
    let mut lag = None;
    for t in 0..80 {
        let w = if t < 40 { &fams[0].1 } else { &fams[3].1 };
        let r = sim.run_trial(&sim.space().default_config(), w, &env, &mut rng);
        let fp = Fingerprint::from_telemetry(&r.telemetry);
        if det.observe(fp.features()) && t >= 40 && lag.is_none() {
            lag = Some(t - 40);
        }
    }

    let rows = vec![
        vec!["clustering purity".into(), f(pur, 2)],
        vec![
            "reuse match accuracy".into(),
            format!("{matches}/{n_fresh}"),
        ],
        vec![
            "reused / per-workload-tuned cost".into(),
            format!("{}x", f(reuse_mean, 2)),
        ],
        vec![
            "shift detection lag".into(),
            lag.map_or("not detected".into(), |l| format!("{l} windows")),
        ],
    ];
    let shape_holds = pur >= 0.9
        && matches >= (n_fresh * 9) / 10
        && reuse_mean <= 1.2
        && lag.is_some_and(|l| l <= 5);
    Report {
        id: "E25",
        title: "Workload identification: cluster, reuse, detect (slides 88-92)",
        headers: vec!["metric", "value"],
        rows,
        paper_claim:
            "similar workloads cluster cleanly; their configs transfer; shifts surface fast",
        measured: format!(
            "purity {}, accuracy {matches}/{n_fresh}, reuse ratio {}x, lag {:?}",
            f(pur, 2),
            f(reuse_mean, 2),
            lag
        ),
        shape_holds,
    }
}

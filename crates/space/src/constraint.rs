//! Cross-parameter constraints.
//!
//! Two flavours, matching the tutorial's taxonomy:
//!
//! * *algebraic* constraints with a known closed form (linear combinations
//!   and ratios of numeric knobs) — these are serializable, cheap, and the
//!   sampler can reject against them before a trial is ever scheduled;
//! * *black-box* constraints evaluated by arbitrary user code (SCBO-style),
//!   carried as an `Arc<dyn Fn>` — not serializable, but clonable.

use crate::Config;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An algebraic constraint over numeric parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlgebraicConstraint {
    /// `sum_i coeff_i * value(param_i) <= bound`.
    LinearLe {
        /// `(parameter name, coefficient)` pairs.
        terms: Vec<(String, f64)>,
        /// Right-hand side.
        bound: f64,
    },
    /// `value(numerator) <= bound * value(denominator)`.
    ///
    /// Expresses MySQL's `chunk_size <= buffer_pool_size / instances` family
    /// without dividing (robust when the denominator can be zero).
    RatioLe {
        /// Numerator parameter.
        numerator: String,
        /// Denominator parameter.
        denominator: String,
        /// Allowed ratio.
        bound: f64,
    },
}

impl AlgebraicConstraint {
    /// Evaluates the constraint under `config`. Parameters that are missing
    /// or non-numeric make the constraint pass vacuously: an inactive
    /// conditional knob cannot violate a constraint about it.
    pub fn is_satisfied(&self, config: &Config) -> bool {
        match self {
            AlgebraicConstraint::LinearLe { terms, bound } => {
                let mut total = 0.0;
                for (name, coeff) in terms {
                    match config.get_f64(name) {
                        Some(v) => total += coeff * v,
                        None => return true,
                    }
                }
                total <= *bound + 1e-12
            }
            AlgebraicConstraint::RatioLe {
                numerator,
                denominator,
                bound,
            } => match (config.get_f64(numerator), config.get_f64(denominator)) {
                (Some(n), Some(d)) => n <= bound * d + 1e-12,
                _ => true,
            },
        }
    }
}

/// A constraint attached to a [`crate::Space`].
#[derive(Clone)]
pub enum Constraint {
    /// Closed-form constraint (serializable, sampler-visible).
    Algebraic(AlgebraicConstraint),
    /// Arbitrary predicate; `true` means feasible. The label is used in
    /// diagnostics.
    BlackBox {
        /// Diagnostic name.
        label: String,
        /// Feasibility predicate.
        predicate: Arc<dyn Fn(&Config) -> bool + Send + Sync>,
    },
}

impl Constraint {
    /// `sum_i coeff_i * param_i <= bound`.
    pub fn linear_le(terms: &[(&str, f64)], bound: f64) -> Self {
        Constraint::Algebraic(AlgebraicConstraint::LinearLe {
            terms: terms.iter().map(|(n, c)| (n.to_string(), *c)).collect(),
            bound,
        })
    }

    /// `numerator <= bound * denominator`.
    pub fn ratio_le(numerator: &str, denominator: &str, bound: f64) -> Self {
        Constraint::Algebraic(AlgebraicConstraint::RatioLe {
            numerator: numerator.to_string(),
            denominator: denominator.to_string(),
            bound,
        })
    }

    /// A black-box feasibility predicate.
    pub fn black_box(
        label: impl Into<String>,
        predicate: impl Fn(&Config) -> bool + Send + Sync + 'static,
    ) -> Self {
        Constraint::BlackBox {
            label: label.into(),
            predicate: Arc::new(predicate),
        }
    }

    /// Evaluates the constraint under `config`.
    pub fn is_satisfied(&self, config: &Config) -> bool {
        match self {
            Constraint::Algebraic(a) => a.is_satisfied(config),
            Constraint::BlackBox { predicate, .. } => predicate(config),
        }
    }

    /// Diagnostic label.
    pub fn label(&self) -> String {
        match self {
            Constraint::Algebraic(AlgebraicConstraint::LinearLe { terms, bound }) => {
                let lhs: Vec<String> = terms.iter().map(|(n, c)| format!("{c}*{n}")).collect();
                format!("{} <= {bound}", lhs.join(" + "))
            }
            Constraint::Algebraic(AlgebraicConstraint::RatioLe {
                numerator,
                denominator,
                bound,
            }) => format!("{numerator} <= {bound}*{denominator}"),
            Constraint::BlackBox { label, .. } => label.clone(),
        }
    }
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Constraint({})", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_le_enforced() {
        // bp_chunk + 2 * wal_size <= 10
        let c = Constraint::linear_le(&[("bp_chunk", 1.0), ("wal_size", 2.0)], 10.0);
        let ok = Config::new().with("bp_chunk", 4.0).with("wal_size", 3.0);
        let bad = Config::new().with("bp_chunk", 5.0).with("wal_size", 3.0);
        assert!(c.is_satisfied(&ok));
        assert!(!c.is_satisfied(&bad));
    }

    #[test]
    fn ratio_le_mysql_style() {
        // chunk_size <= bp_size / instances, with instances folded into bound
        let c = Constraint::ratio_le("chunk_size", "bp_size", 1.0 / 4.0);
        let ok = Config::new().with("chunk_size", 1.0).with("bp_size", 8.0);
        let bad = Config::new().with("chunk_size", 3.0).with("bp_size", 8.0);
        assert!(c.is_satisfied(&ok));
        assert!(!c.is_satisfied(&bad));
    }

    #[test]
    fn missing_param_passes_vacuously() {
        let c = Constraint::linear_le(&[("ghost", 1.0)], 0.0);
        assert!(c.is_satisfied(&Config::new()));
    }

    #[test]
    fn black_box_predicate() {
        let c = Constraint::black_box("even threads", |cfg| {
            cfg.get_i64("threads").is_none_or(|t| t % 2 == 0)
        });
        assert!(c.is_satisfied(&Config::new().with("threads", 4i64)));
        assert!(!c.is_satisfied(&Config::new().with("threads", 3i64)));
        assert_eq!(c.label(), "even threads");
    }

    #[test]
    fn labels_render() {
        let c = Constraint::linear_le(&[("a", 1.0), ("b", -2.0)], 5.0);
        assert_eq!(c.label(), "1*a + -2*b <= 5");
        let r = Constraint::ratio_le("n", "d", 0.5);
        assert_eq!(r.label(), "n <= 0.5*d");
    }
}

//! Cross-crate integration-test package. All tests live in `tests/tests/`
//! and exercise the public APIs of multiple workspace crates together.

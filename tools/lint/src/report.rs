//! Violation records and rendering.

use std::collections::BTreeMap;
use std::fmt;

/// One diagnostic finding at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path as given to the analyzer (workspace-relative in CI).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Diagnostic code (`D1`..`D12`, or `A1`/`A2` for allow hygiene).
    pub code: &'static str,
    /// Human message, including the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.code, self.message
        )
    }
}

/// Aggregated results of a run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, in file/line order.
    pub violations: Vec<Violation>,
    /// Suppression count per diagnostic code (well-formed, *used* allows).
    pub allowed: BTreeMap<&'static str, usize>,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    /// Merges another file's findings into this run.
    pub fn absorb(&mut self, mut other: Report) {
        self.violations.append(&mut other.violations);
        for (code, n) in other.allowed {
            *self.allowed.entry(code).or_insert(0) += n;
        }
        self.files += other.files;
    }

    /// Violation count per code.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.code).or_insert(0) += 1;
        }
        m
    }

    /// One-line summary: `D5: 3 denied, 12 allowed` per active code.
    pub fn summary(&self) -> String {
        let counts = self.counts();
        let mut codes: Vec<&'static str> =
            counts.keys().chain(self.allowed.keys()).copied().collect();
        codes.sort_unstable();
        codes.dedup();
        let mut out = format!("{} files scanned", self.files);
        for code in codes {
            let denied = counts.get(code).copied().unwrap_or(0);
            let allowed = self.allowed.get(code).copied().unwrap_or(0);
            out.push_str(&format!("\n  {code}: {denied} denied, {allowed} allowed"));
        }
        out
    }
}

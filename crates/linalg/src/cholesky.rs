//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! This is the workhorse of Gaussian-process regression: the posterior mean
//! and variance are both triangular solves against the factor of
//! `K + sigma^2 I`, and the log marginal likelihood needs the
//! log-determinant, which falls out of the factor's diagonal for free.

#![allow(clippy::needless_range_loop)] // offset-indexed triangular loops
use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L * L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that had to be added to the diagonal for the factorization to
    /// succeed (0.0 when the input was well-conditioned).
    jitter: f64,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Kernel matrices are often *numerically* semi-definite (duplicated
    /// trial configurations produce identical rows), so on failure the
    /// factorization retries with exponentially growing diagonal jitter up
    /// to `1e-4 * mean(diag)`. The jitter actually used is reported by
    /// [`Cholesky::jitter`].
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky: matrix must be square",
            });
        }
        let n = a.rows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            a.diag().iter().map(|d| d.abs()).sum::<f64>() / n as f64
        };
        let mut jitter = 0.0;
        // 1e-12 .. 1e-4 of the mean diagonal, one decade per retry.
        for attempt in 0..=9 {
            if attempt > 0 {
                jitter = mean_diag.max(1e-300) * 1e-12 * 10f64.powi(attempt - 1);
            }
            if let Some(l) = Self::try_factor(a, jitter) {
                return Ok(Cholesky { l, jitter });
            }
        }
        Err(LinalgError::NotPositiveDefinite)
    }

    /// Single factorization attempt with the given diagonal jitter;
    /// returns `None` when a pivot is non-positive.
    fn try_factor(a: &Matrix, jitter: f64) -> Option<Matrix> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // sum_{k<j} L[i,k] * L[j,k]
                let s = crate::vector::dot(&l.row(i)[..j], &l.row(j)[..j]);
                if i == j {
                    let d = a[(i, i)] + jitter - s;
                    if d <= 0.0 || !d.is_finite() {
                        return None;
                    }
                    l[(i, j)] = d.sqrt();
                } else {
                    l[(i, j)] = (a[(i, j)] - s) / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter that was added to make the factorization succeed.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower: rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let s = crate::vector::dot(&self.l.row(i)[..i], &y[..i]);
            y[i] = (b[i] - s) / self.l[(i, i)];
        }
        y
    }

    /// Solves `L^T x = y` (back substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper: rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = 0.0;
            for k in (i + 1)..n {
                s += self.l[(k, i)] * x[k];
            }
            x[i] = (y[i] - s) / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` via the two triangular solves.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky solve: rhs rows must match dimension",
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col);
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// `log det(A) = 2 * sum_i log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse of `A`. Prefer the `solve_*` methods; the explicit
    /// inverse is only needed by multi-task kernels.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        self.solve_matrix(&Matrix::identity(n))
            .expect("identity always matches dimension")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn known_factor() {
        // Classic textbook example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let c = Cholesky::new(&spd3()).unwrap();
        let l = c.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve_vec(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
    }

    #[test]
    fn log_det_matches_direct() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse();
        let eye = a.matmul(&inv).unwrap();
        assert!(eye.approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn semidefinite_rescued_by_jitter() {
        // Rank-1 matrix: vv^T with v = [1, 1] — singular but PSD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let c = Cholesky::new(&a).unwrap();
        assert!(c.jitter() > 0.0);
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-4));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let x = c.solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-8));
    }
}

//! D5 clean fixture: fallible paths return Option/Result; tests may
//! unwrap freely.

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(first(&[7]).unwrap(), 7);
    }
}

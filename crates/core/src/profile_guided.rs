//! Profile-guided knob prioritization — the tutorial's explicitly-flagged
//! open opportunity (slide 68):
//!
//! > "PGO or FDO: use stack profiles captured from real runs to focus
//! > compiler optimizations in the right places. Could do similar for
//! > other systems tuning: run workload, capture stack traces, identify
//! > hotspots, search surrounding code for tunables, prioritize tuning
//! > those. Opportunity: to our knowledge no system currently does this."
//!
//! The implementation here: a system declares which knobs influence which
//! runtime *components* (the "search surrounding code for tunables" step,
//! done once per system); a profiled run reports where the time goes (the
//! simulated analogue of a stack profile, see
//! [`autotune_sim::TrialResult::profile`]); knobs are then ranked by the
//! profile mass of the components they touch. Unlike OtterTune-style
//! importance analysis (slide 68's Lasso/SHAP route, [`crate::lasso_path`])
//! this needs **zero tuning history** — one profiled run of the current
//! configuration suffices.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which runtime components each knob influences. The per-system analogue
/// of "search surrounding code for tunables".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnobComponentMap {
    /// knob name → components it influences.
    map: BTreeMap<String, Vec<String>>,
}

impl KnobComponentMap {
    /// Empty map.
    pub fn new() -> Self {
        KnobComponentMap::default()
    }

    /// Declares that `knob` influences `components` (builder style).
    pub fn with(mut self, knob: &str, components: &[&str]) -> Self {
        self.map.insert(
            knob.to_string(),
            components.iter().map(|s| s.to_string()).collect(),
        );
        self
    }

    /// Knobs declared in the map.
    pub fn knobs(&self) -> impl Iterator<Item = &String> {
        self.map.keys()
    }

    /// The component map for [`autotune_sim::DbmsSim`]'s knob space,
    /// matching the components its trial profiles report.
    pub fn dbms() -> Self {
        KnobComponentMap::new()
            .with("buffer_pool_gb", &["io_point", "io_scan"])
            .with("buffer_pool_instances", &["contention"])
            .with("buffer_pool_chunk_gb", &["io_point"])
            .with("io_threads", &["io_point", "io_scan"])
            .with("flush_method", &["wal_flush"])
            .with("wal_buffer_mb", &["wal_flush"])
            .with("sync_commit", &["wal_flush"])
            .with("log_file_size_mb", &["checkpoint"])
            .with("worker_threads", &["contention"])
            .with("query_cache", &["cpu"])
            .with("jit", &["cpu"])
            .with("jit_above_cost", &["cpu"])
    }

    /// Ranks knobs by the total profile share of the components they
    /// influence, descending. Knobs whose components do not appear in the
    /// profile score 0 (they still appear in the ranking, last).
    pub fn rank_knobs(&self, profile: &[(String, f64)]) -> Vec<(String, f64)> {
        let shares: BTreeMap<&str, f64> = profile
            .iter()
            .map(|(name, share)| (name.as_str(), *share))
            .collect();
        let mut ranking: Vec<(String, f64)> = self
            .map
            .iter()
            .map(|(knob, components)| {
                let score: f64 = components
                    .iter()
                    .map(|c| shares.get(c.as_str()).copied().unwrap_or(0.0))
                    .sum();
                (knob.clone(), score)
            })
            .collect();
        ranking.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranking
    }

    /// The `k` highest-scoring knobs for a profile.
    pub fn top_knobs(&self, profile: &[(String, f64)], k: usize) -> Vec<String> {
        self.rank_knobs(profile)
            .into_iter()
            .take(k)
            .map(|(n, _)| n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Objective, Target};
    use autotune_sim::{DbmsSim, Environment, SimSystem, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile_of(config: &autotune_space::Config, w: &Workload) -> Vec<(String, f64)> {
        let sim = DbmsSim::new();
        let mut rng = StdRng::seed_from_u64(1);
        let r = sim.run_trial(config, w, &Environment::medium(), &mut rng);
        assert!(!r.crashed);
        r.profile
    }

    #[test]
    fn dbms_profile_sums_to_one_and_reacts_to_knobs() {
        let sim = DbmsSim::new();
        let w = Workload::tpcc(500.0);
        let p = profile_of(&sim.space().default_config(), &w);
        let total: f64 = p.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "profile sums to {total}");
        // Default config has a tiny buffer pool: I/O should dominate.
        let io: f64 = p
            .iter()
            .filter(|(n, _)| n.starts_with("io"))
            .map(|(_, v)| v)
            .sum();
        assert!(io > 0.3, "tiny pool should be I/O bound, io share {io}");
        // A big pool shifts the profile away from I/O.
        let tuned = sim.space().default_config().with("buffer_pool_gb", 12.0);
        let p2 = profile_of(&tuned, &w);
        let io2: f64 = p2
            .iter()
            .filter(|(n, _)| n.starts_with("io"))
            .map(|(_, v)| v)
            .sum();
        assert!(io2 < io, "bigger pool should cut I/O share: {io2} vs {io}");
    }

    #[test]
    fn ranking_tracks_the_bottleneck() {
        let sim = DbmsSim::new();
        let map = KnobComponentMap::dbms();
        // I/O-starved config: buffer knobs must rank on top.
        let io_bound = sim.space().default_config(); // 0.125 GB pool
        let top = map.top_knobs(&profile_of(&io_bound, &Workload::tpcc(500.0)), 3);
        assert!(
            top.contains(&"buffer_pool_gb".to_string()),
            "I/O-bound profile must prioritize the buffer pool: {top:?}"
        );
        // WAL-bound config: big pool, fsync, write-heavy workload.
        let wal_bound = sim
            .space()
            .default_config()
            .with("buffer_pool_gb", 12.0)
            .with("flush_method", "fsync");
        let top = map.top_knobs(&profile_of(&wal_bound, &Workload::ycsb_a(2_000.0)), 3);
        assert!(
            top.contains(&"flush_method".to_string()) || top.contains(&"wal_buffer_mb".to_string()),
            "WAL-bound profile must prioritize flush knobs: {top:?}"
        );
    }

    #[test]
    fn unknown_components_score_zero() {
        let map = KnobComponentMap::new().with("ghost_knob", &["nonexistent"]);
        let ranking = map.rank_knobs(&[("cpu".into(), 1.0)]);
        assert_eq!(ranking, vec![("ghost_knob".to_string(), 0.0)]);
    }

    #[test]
    fn zero_history_prioritization_beats_random_knob_choice() {
        // The headline claim: one profiled run picks better knobs to tune
        // than a random subset — with zero tuning history.
        use autotune_optimizer::{BayesianOptimizer, Optimizer};
        let target = Target::simulated(
            Box::new(DbmsSim::new()),
            Workload::tpcc(500.0),
            Environment::medium(),
            Objective::MinimizeLatencyAvg,
        );
        let space = target.space().clone();
        let map = KnobComponentMap::dbms();
        let profile = profile_of(&space.default_config(), &Workload::tpcc(500.0));
        let pgo_knobs = map.top_knobs(&profile, 3);
        // A deliberately unhelpful subset for contrast.
        let bad_knobs: Vec<String> = vec![
            "query_cache".into(),
            "buffer_pool_instances".into(),
            "wal_buffer_mb".into(),
        ];
        let tune_subset = |knobs: &[String], seed: u64| -> f64 {
            let mut b = autotune_space::Space::builder();
            for p in space.params() {
                if knobs.contains(&p.name) {
                    b = b.add(p.clone());
                }
            }
            let sub = b.build().expect("subset valid");
            let mut opt = BayesianOptimizer::gp(sub);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut best = f64::INFINITY;
            for _ in 0..20 {
                let c = opt.suggest(&mut rng);
                let mut full = space.default_config();
                for (name, value) in c.iter() {
                    full.set(name.clone(), value.clone());
                }
                let e = target.evaluate(&full, &mut rng);
                opt.observe(&c, e.cost);
                if e.cost.is_finite() {
                    best = best.min(e.cost);
                }
            }
            best
        };
        let pgo: f64 = (0..3).map(|s| tune_subset(&pgo_knobs, 70 + s)).sum::<f64>() / 3.0;
        let bad: f64 = (0..3).map(|s| tune_subset(&bad_knobs, 70 + s)).sum::<f64>() / 3.0;
        assert!(
            pgo < bad * 0.8,
            "profile-guided knobs ({pgo}) should clearly beat an unrelated subset ({bad})"
        );
    }
}

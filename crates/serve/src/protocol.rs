//! Typed request/response control protocol for a campaign server.
//!
//! The serving layer exposes the registry over a byte stream: requests
//! and responses are JSON documents framed by a little-endian `u32`
//! length prefix, so any ordered transport works. This module provides
//! the message types, the framing ([`write_frame`] / [`read_frame`]),
//! an in-process duplex [`pipe`] built on a pair of blocking byte
//! queues, and a [`Server`] loop plus [`Client`] handle.
//!
//! [`Campaign`](autotune::Campaign) is deliberately not `Send` (it may
//! borrow thread-local subscribers), so the registry is constructed
//! *inside* the server thread by a `Send` builder closure; only spec
//! descriptions, snapshots and stats — plain serializable data — cross
//! the pipe.

use crate::registry::{CampaignRegistry, CampaignStats, FleetStats, ServeError};
use crate::spec::CampaignSpec;
use autotune::sync::{pwait, PoisonFreeMutex};
use autotune::CampaignSnapshot;
use autotune_space::Config;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// A control request to the campaign server.
// Register dominates the enum size by carrying a whole CampaignSpec, but
// requests are transient (framed, handled, dropped) and never stored in
// bulk, so the usual boxing remedy buys nothing here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Build and register a campaign from a spec; answers
    /// [`Response::Registered`] (or [`Response::Overloaded`] when
    /// admission control sheds the request).
    Register {
        /// The campaign description.
        spec: CampaignSpec,
        /// Client-chosen idempotency key. A retried `Register` carrying
        /// the same id returns the originally assigned campaign id
        /// instead of creating a duplicate.
        #[serde(default)]
        request_id: Option<u64>,
    },
    /// Execute scheduling rounds; answers [`Response::Stepped`].
    Step {
        /// How many rounds (each round services every eligible campaign).
        rounds: u32,
    },
    /// Run rounds until the whole fleet is done or stopped; answers
    /// [`Response::Stepped`].
    RunAll,
    /// Snapshot one campaign; answers [`Response::Snapshot`].
    Snapshot {
        /// Registry id.
        id: u64,
    },
    /// Per-campaign stats; answers [`Response::Stats`].
    Stats {
        /// Registry id.
        id: u64,
    },
    /// Aggregate stats; answers [`Response::Fleet`].
    FleetStats,
    /// Stop serving one campaign; answers [`Response::Stopped`].
    Stop {
        /// Registry id.
        id: u64,
    },
    /// Cache-first tenant lookup (served by router backends): answers
    /// [`Response::CacheHit`] with a tuned config, or
    /// [`Response::CacheMiss`] after enqueuing `spec` to tune the
    /// workload's family. A plain registry backend answers
    /// [`Response::Error`].
    Lookup {
        /// The tenant's workload fingerprint features.
        features: Vec<f64>,
        /// Campaign to run if the fingerprint's family is untuned.
        spec: CampaignSpec,
    },
    /// Shut the server down; answers [`Response::Bye`].
    Shutdown,
}

/// A server reply. Every request gets exactly one response, in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Campaign registered under this id.
    Registered {
        /// Registry-assigned id.
        id: u64,
    },
    /// Rounds executed.
    Stepped {
        /// Rounds actually run.
        rounds: u64,
        /// Campaigns still active afterwards.
        n_active: u64,
    },
    /// A campaign snapshot (seed + policy + event log + drift clock).
    Snapshot {
        /// The snapshot.
        snapshot: CampaignSnapshot,
    },
    /// Per-campaign stats.
    Stats {
        /// The stats.
        stats: CampaignStats,
    },
    /// Aggregate fleet stats.
    Fleet {
        /// The stats.
        stats: FleetStats,
    },
    /// Campaign stopped.
    Stopped {
        /// Whether it was active before the stop.
        was_active: bool,
    },
    /// Lookup served from the config cache.
    CacheHit {
        /// Workload family that answered.
        family: u64,
        /// The cached configuration.
        config: Config,
        /// Cost observed when the config was tuned.
        cost: f64,
        /// True when a sibling tenant's incumbent answered (no entry for
        /// this exact fingerprint).
        borrowed: bool,
    },
    /// Lookup missed the cache; a tuning campaign covers the family and
    /// will backfill it.
    CacheMiss {
        /// The covering campaign's id.
        campaign: u64,
        /// True when this request admitted the campaign; false when it
        /// joined one already in flight.
        enqueued: bool,
    },
    /// Server is shutting down.
    Bye,
    /// The request was shed by admission control; the connection stays
    /// usable and the client should back off.
    Overloaded {
        /// Suggested backoff before retrying, in scheduling rounds.
        retry_after_rounds: u64,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// Hard cap on a frame body. A corrupt length prefix yields a typed
/// [`ServeError::FrameTooLarge`] instead of an attempt to allocate up to
/// 4 GiB; honest frames (specs, snapshots, stats) sit far below this.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Writes one length-prefixed JSON frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), ServeError> {
    let body = serde_json::to_string(msg).map_err(|e| ServeError::Protocol(e.to_string()))?;
    let bytes = body.as_bytes();
    let len =
        u32::try_from(bytes.len()).map_err(|_| ServeError::Protocol("frame over 4 GiB".into()))?;
    w.write_all(&len.to_le_bytes())
        .and_then(|()| w.write_all(bytes))
        .and_then(|()| w.flush())
        .map_err(|e| ServeError::Protocol(e.to_string()))
}

/// Reads one length-prefixed JSON frame; `Ok(None)` on clean EOF at a
/// frame boundary.
///
/// Error taxonomy matters for connection reuse: a prefix over
/// [`MAX_FRAME_LEN`] or a short read is [`ServeError::FrameTooLarge`] /
/// [`ServeError::Protocol`] — the stream position is lost and the
/// connection is dead. A fully read body that fails UTF-8 or JSON
/// decoding is [`ServeError::Decode`] — the stream is still at a frame
/// boundary and the next frame can be read normally.
pub fn read_frame<T: for<'de> Deserialize<'de>>(
    r: &mut impl Read,
) -> Result<Option<T>, ServeError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ServeError::Protocol(e.to_string())),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ServeError::FrameTooLarge {
            len: len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| ServeError::Protocol(e.to_string()))?;
    let text = std::str::from_utf8(&body).map_err(|e| ServeError::Decode(e.to_string()))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| ServeError::Decode(e.to_string()))
}

/// One direction of the in-process pipe: a blocking bounded-by-nothing
/// byte queue. `Read` blocks until bytes arrive or the write side hangs
/// up.
#[derive(Default)]
struct ByteQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl ByteQueue {
    // Poisoning only happens after a panic in a peer thread; at that
    // point the pipe is dead anyway, so `plock`/`pwait` recover the
    // guard and let the closed/EOF paths surface the failure.
    fn push(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut st = self.state.plock();
        if st.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe closed",
            ));
        }
        st.buf.extend(bytes);
        self.ready.notify_all();
        Ok(())
    }

    fn pop(&self, out: &mut [u8]) -> std::io::Result<usize> {
        let mut st = self.state.plock();
        while st.buf.is_empty() {
            if st.closed {
                return Ok(0);
            }
            st = pwait(&self.ready, st);
        }
        let n = out.len().min(st.buf.len());
        for slot in out.iter_mut().take(n) {
            // The loop guard guarantees the queue is non-empty here.
            *slot = st.buf.pop_front().unwrap_or(0);
        }
        Ok(n)
    }

    fn close(&self) {
        self.state.plock().closed = true;
        self.ready.notify_all();
    }
}

/// One end of an in-process duplex byte pipe. `Send`, so either end can
/// move into a thread. Dropping an end closes both directions it owns.
pub struct PipeEnd {
    rx: Arc<ByteQueue>,
    tx: Arc<ByteQueue>,
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.rx.pop(buf)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx.push(buf).map(|()| buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

/// Creates a connected duplex pipe: bytes written to one end are read
/// from the other.
pub fn pipe() -> (PipeEnd, PipeEnd) {
    let a = Arc::new(ByteQueue::default());
    let b = Arc::new(ByteQueue::default());
    (
        PipeEnd {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        PipeEnd { rx: b, tx: a },
    )
}

/// Per-request resource limits for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Deadline on a single `Step`/`RunAll` request, in scheduling
    /// rounds. A `RunAll` over a fleet that needs more rounds returns
    /// `Stepped { n_active > 0 }` and the client re-issues, so one
    /// request can never pin the server indefinitely.
    pub max_rounds_per_request: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_rounds_per_request: 100_000,
        }
    }
}

/// What a [`Server`] drives: anything that can answer protocol
/// requests. [`CampaignRegistry`] is the plain fleet backend;
/// [`TenantRouter`](crate::TenantRouter) layers the config cache on
/// top. Implementations return `Err` for request-level failures — the
/// server loop maps [`ServeError::Overloaded`] to
/// [`Response::Overloaded`] and everything else to [`Response::Error`],
/// keeping the connection usable.
pub trait ServeBackend {
    /// Answers one request under the server's per-request limits.
    fn handle_request(
        &mut self,
        req: Request,
        config: &ServerConfig,
    ) -> Result<Response, ServeError>;
}

impl ServeBackend for CampaignRegistry {
    fn handle_request(
        &mut self,
        req: Request,
        config: &ServerConfig,
    ) -> Result<Response, ServeError> {
        let run_rounds =
            |reg: &mut CampaignRegistry, budget: u64| -> Result<Response, ServeError> {
                let mut run = 0;
                while run < budget && reg.has_runnable() {
                    reg.step_round()?;
                    run += 1;
                }
                Ok(Response::Stepped {
                    rounds: run,
                    n_active: reg.n_active() as u64,
                })
            };
        Ok(match req {
            Request::Register { spec, request_id } => Response::Registered {
                id: self.admit_spec(&spec, request_id)?,
            },
            Request::Lookup { .. } => {
                return Err(ServeError::Protocol(
                    "this server has no config cache; serve a TenantRouter to answer lookups"
                        .into(),
                ))
            }
            Request::Step { rounds } => {
                let budget = u64::from(rounds).min(config.max_rounds_per_request);
                run_rounds(self, budget)?
            }
            Request::RunAll => run_rounds(self, config.max_rounds_per_request)?,
            Request::Snapshot { id } => Response::Snapshot {
                snapshot: self.snapshot(id)?,
            },
            Request::Stats { id } => Response::Stats {
                stats: self.stats(id)?,
            },
            Request::FleetStats => Response::Fleet {
                stats: self.fleet_stats(),
            },
            Request::Stop { id } => Response::Stopped {
                was_active: self.stop(id)?,
            },
            Request::Shutdown => Response::Bye,
        })
    }
}

/// Serves a backend over a framed byte stream until `Shutdown`, clean
/// EOF, or a transport error. Request-level failures (unknown id,
/// campaign errors, undecodable-but-well-framed payloads) are answered
/// with [`Response::Error`] and the loop continues.
pub struct Server<S: Read + Write, B: ServeBackend = CampaignRegistry> {
    stream: S,
    backend: B,
    config: ServerConfig,
}

impl<S: Read + Write, B: ServeBackend> Server<S, B> {
    /// A server over `stream` driving `backend` with default limits.
    pub fn new(stream: S, backend: B) -> Self {
        Server::with_config(stream, backend, ServerConfig::default())
    }

    /// A server with explicit per-request limits.
    pub fn with_config(stream: S, backend: B, config: ServerConfig) -> Self {
        Server {
            stream,
            backend,
            config,
        }
    }

    /// Runs the request loop to completion, returning the backend (for
    /// post-mortem inspection in tests and tools).
    pub fn serve(mut self) -> Result<B, ServeError> {
        loop {
            let req = match read_frame::<Request>(&mut self.stream) {
                Ok(Some(req)) => req,
                Ok(None) => break,
                Err(ServeError::Decode(msg)) => {
                    // The frame was complete — only its payload was
                    // garbage — so the stream is still at a boundary:
                    // answer with a typed error and keep serving.
                    let resp = Response::Error {
                        message: format!("undecodable request: {msg}"),
                    };
                    write_frame(&mut self.stream, &resp)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let shutdown = matches!(req, Request::Shutdown);
            let resp = self.handle(req);
            write_frame(&mut self.stream, &resp)?;
            if shutdown {
                break;
            }
        }
        Ok(self.backend)
    }

    fn handle(&mut self, req: Request) -> Response {
        match self.backend.handle_request(req, &self.config) {
            Ok(resp) => resp,
            Err(ServeError::Overloaded { retry_after_rounds }) => {
                Response::Overloaded { retry_after_rounds }
            }
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }
}

/// Typed outcome of [`Client::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum LookupReply {
    /// Served from the server's config cache.
    Hit {
        /// Workload family that answered.
        family: u64,
        /// The cached configuration.
        config: Config,
        /// Cost observed when the config was tuned.
        cost: f64,
        /// True when a sibling tenant's incumbent answered.
        borrowed: bool,
    },
    /// Missed; a tuning campaign covers the family.
    Miss {
        /// The covering campaign's id.
        campaign: u64,
        /// True when this request admitted the campaign.
        enqueued: bool,
    },
}

/// Client handle over a framed byte stream. One in-flight request at a
/// time; responses arrive in request order.
pub struct Client<S: Read + Write> {
    stream: S,
}

impl<S: Read + Write> Client<S> {
    /// A client over `stream`.
    pub fn new(stream: S) -> Self {
        Client { stream }
    }

    /// Sends `req` and blocks for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, req)?;
        read_frame(&mut self.stream)?.ok_or_else(|| ServeError::Protocol("server hung up".into()))
    }

    /// Registers a spec, returning the assigned id.
    pub fn register(&mut self, spec: &CampaignSpec) -> Result<u64, ServeError> {
        self.register_idempotent(spec, None)
    }

    /// Registers a spec under an idempotency key: resending the same
    /// `request_id` (after a timeout or reconnect) returns the
    /// originally assigned id instead of creating a second campaign.
    pub fn register_idempotent(
        &mut self,
        spec: &CampaignSpec,
        request_id: Option<u64>,
    ) -> Result<u64, ServeError> {
        match self.request(&Request::Register {
            spec: spec.clone(),
            request_id,
        })? {
            Response::Registered { id } => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    /// Cache-first tenant lookup against a router server: a hit carries
    /// the tuned config, a miss the campaign id that will backfill it.
    /// Requires the server to drive a
    /// [`TenantRouter`](crate::TenantRouter) backend.
    pub fn lookup(
        &mut self,
        features: &[f64],
        spec: &CampaignSpec,
    ) -> Result<LookupReply, ServeError> {
        match self.request(&Request::Lookup {
            features: features.to_vec(),
            spec: spec.clone(),
        })? {
            Response::CacheHit {
                family,
                config,
                cost,
                borrowed,
            } => Ok(LookupReply::Hit {
                family,
                config,
                cost,
                borrowed,
            }),
            Response::CacheMiss { campaign, enqueued } => {
                Ok(LookupReply::Miss { campaign, enqueued })
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Runs `rounds` scheduling rounds; returns (rounds run, active
    /// campaigns remaining).
    pub fn step(&mut self, rounds: u32) -> Result<(u64, u64), ServeError> {
        match self.request(&Request::Step { rounds })? {
            Response::Stepped { rounds, n_active } => Ok((rounds, n_active)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs the fleet to completion; returns rounds run.
    pub fn run_all(&mut self) -> Result<u64, ServeError> {
        match self.request(&Request::RunAll)? {
            Response::Stepped { rounds, .. } => Ok(rounds),
            other => Err(unexpected(&other)),
        }
    }

    /// Snapshots a campaign.
    pub fn snapshot(&mut self, id: u64) -> Result<CampaignSnapshot, ServeError> {
        match self.request(&Request::Snapshot { id })? {
            Response::Snapshot { snapshot } => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches per-campaign stats.
    pub fn stats(&mut self, id: u64) -> Result<CampaignStats, ServeError> {
        match self.request(&Request::Stats { id })? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches aggregate fleet stats.
    pub fn fleet_stats(&mut self) -> Result<FleetStats, ServeError> {
        match self.request(&Request::FleetStats)? {
            Response::Fleet { stats } => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Stops serving a campaign.
    pub fn stop(&mut self, id: u64) -> Result<bool, ServeError> {
        match self.request(&Request::Stop { id })? {
            Response::Stopped { was_active } => Ok(was_active),
            other => Err(unexpected(&other)),
        }
    }

    /// Shuts the server down.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    match resp {
        Response::Error { message } => ServeError::Protocol(message.clone()),
        Response::Overloaded { retry_after_rounds } => ServeError::Overloaded {
            retry_after_rounds: *retry_after_rounds,
        },
        other => ServeError::Protocol(format!("unexpected response: {other:?}")),
    }
}

/// Deterministic exponential backoff schedule. Delays are *virtual*
/// seconds — this crate never touches the wall clock; a real transport
/// binding decides whether a delay becomes an actual sleep.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_s: f64,
    factor: f64,
    cap_s: f64,
    attempt: u32,
}

impl Backoff {
    /// A schedule starting at `base_s`, multiplying by `factor` per
    /// attempt, clamped at `cap_s`.
    pub fn new(base_s: f64, factor: f64, cap_s: f64) -> Self {
        Backoff {
            base_s,
            factor,
            cap_s,
            attempt: 0,
        }
    }

    /// The delay before the next attempt; advances the schedule. The
    /// sequence is a pure function of the constructor arguments, so
    /// every rebuilt client backs off identically.
    pub fn next_delay_s(&mut self) -> f64 {
        let d = (self.base_s * self.factor.powi(self.attempt.min(62) as i32)).min(self.cap_s);
        self.attempt += 1;
        d
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Starts the schedule over (after a successful request).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new(0.5, 2.0, 30.0)
    }
}

/// A [`Client`] that survives transport failures: on a broken stream it
/// redials via the supplied connector and re-sends the request after a
/// deterministic exponential [`Backoff`]. Pair re-sent `Register`s with
/// [`Client::register_idempotent`]-style request ids so a retry never
/// double-creates a campaign.
pub struct ReconnectClient<S: Read + Write, F: FnMut() -> Option<S>> {
    connect: F,
    session: Option<Client<S>>,
    backoff: Backoff,
    max_attempts: u32,
    backoff_total_s: f64,
    retried_requests: u64,
}

impl<S: Read + Write, F: FnMut() -> Option<S>> ReconnectClient<S, F> {
    /// A reconnecting client redialing through `connect`, giving up on a
    /// single request after `max_attempts` transport failures.
    pub fn new(connect: F, backoff: Backoff, max_attempts: u32) -> Self {
        ReconnectClient {
            connect,
            session: None,
            backoff,
            max_attempts: max_attempts.max(1),
            backoff_total_s: 0.0,
            retried_requests: 0,
        }
    }

    /// Virtual seconds spent backing off across all reconnects.
    pub fn backoff_total_s(&self) -> f64 {
        self.backoff_total_s
    }

    /// Requests that were re-sent after a transport failure.
    pub fn retried_requests(&self) -> u64 {
        self.retried_requests
    }

    /// Sends `req`, redialing and re-sending on transport failure.
    /// Request-level outcomes ([`Response::Error`],
    /// [`Response::Overloaded`], decode failures) are returned to the
    /// caller, not retried — only a broken stream triggers the loop.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        let mut last_err = ServeError::Protocol("no connection attempts made".into());
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                self.backoff_total_s += self.backoff.next_delay_s();
                self.retried_requests += 1;
            }
            if self.session.is_none() {
                self.session = (self.connect)().map(Client::new);
            }
            let Some(client) = self.session.as_mut() else {
                last_err = ServeError::Protocol("reconnect failed".into());
                continue;
            };
            match client.request(req) {
                Ok(resp) => {
                    self.backoff.reset();
                    return Ok(resp);
                }
                Err(e @ (ServeError::Decode(_) | ServeError::Overloaded { .. })) => {
                    // The connection is fine; the outcome is the
                    // caller's to handle.
                    return Err(e);
                }
                Err(e) => {
                    self.session = None;
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Registers a spec under an idempotency key, retrying across
    /// reconnects without ever double-creating the campaign.
    pub fn register(&mut self, spec: &CampaignSpec, request_id: u64) -> Result<u64, ServeError> {
        match self.request(&Request::Register {
            spec: spec.clone(),
            request_id: Some(request_id),
        })? {
            Response::Registered { id } => Ok(id),
            other => Err(unexpected(&other)),
        }
    }
}

/// Spawns a server thread over an in-process pipe and returns the
/// connected client plus the server's join handle, which yields the
/// final fleet stats (campaigns themselves are not `Send`, so the
/// registry cannot cross back; `builder` runs inside the server thread
/// for the same reason).
pub fn spawn_server(
    builder: impl FnOnce() -> CampaignRegistry + Send + 'static,
) -> (
    Client<PipeEnd>,
    std::thread::JoinHandle<Result<FleetStats, ServeError>>,
) {
    let (client_end, server_end) = pipe();
    let handle = std::thread::spawn(move || {
        Server::new(server_end, builder())
            .serve()
            .map(|registry| registry.fleet_stats())
    });
    (Client::new(client_end), handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, SystemKind};
    use autotune::SchedulePolicy;

    fn spec(i: u64) -> CampaignSpec {
        let mut s = CampaignSpec::minimal(format!("p{i}"), SystemKind::Redis, 5, 100 + i);
        s.policy = SchedulePolicy::AsyncSlots { k: 2 };
        s
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        let req = Request::Step { rounds: 3 };
        write_frame(&mut buf, &req).unwrap();
        let mut r = &buf[..];
        let back: Request = read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(back, Request::Step { rounds: 3 }));
        let eof: Option<Request> = read_frame(&mut r).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn oversized_prefix_is_a_typed_error_not_an_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"junk");
        let mut r = &buf[..];
        let got: Result<Option<Request>, _> = read_frame(&mut r);
        assert!(matches!(got, Err(ServeError::FrameTooLarge { .. })));
    }

    #[test]
    fn garbage_payload_is_a_decode_error() {
        let mut buf = Vec::new();
        let body = b"{\"NotARequest\":true}";
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(body);
        let mut r = &buf[..];
        let got: Result<Option<Request>, _> = read_frame(&mut r);
        assert!(matches!(got, Err(ServeError::Decode(_))));
    }

    #[test]
    fn server_survives_garbage_frames() {
        let (mut end, handle) = {
            let (client_end, server_end) = pipe();
            let handle = std::thread::spawn(move || {
                Server::new(server_end, CampaignRegistry::new(1))
                    .serve()
                    .map(|r| r.fleet_stats())
            });
            (client_end, handle)
        };
        // A well-framed but undecodable payload: the server answers
        // with a typed error frame and keeps serving.
        let body = b"\"garbage\"";
        end.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        end.write_all(body).unwrap();
        let resp: Response = read_frame(&mut end).unwrap().unwrap();
        assert!(matches!(resp, Response::Error { .. }));
        // The connection still works for real requests afterwards.
        let mut client = Client::new(end);
        let id = client.register(&spec(0)).unwrap();
        client.run_all().unwrap();
        assert!(client.stats(id).unwrap().done);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn deadline_bounds_rounds_per_request() {
        let (client_end, server_end) = pipe();
        let handle = std::thread::spawn(move || {
            let config = ServerConfig {
                max_rounds_per_request: 2,
            };
            Server::with_config(server_end, CampaignRegistry::new(1), config)
                .serve()
                .map(|r| r.fleet_stats())
        });
        let mut client = Client::new(client_end);
        client.register(&spec(0)).unwrap();
        // RunAll is clipped to the per-request deadline; the client
        // re-issues until the fleet drains.
        let mut total = 0;
        loop {
            match client.request(&Request::RunAll).unwrap() {
                Response::Stepped { rounds, n_active } => {
                    assert!(rounds <= 2);
                    total += rounds;
                    if n_active == 0 {
                        break;
                    }
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        assert!(total > 2, "fleet needed more than one deadline window");
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn reconnect_client_retries_idempotently_across_broken_streams() {
        use crate::registry::AdmissionConfig;
        use std::sync::mpsc;
        // A "flaky dialer": the first connection is already closed, the
        // second works. Registers with a fixed request id must land
        // exactly one campaign.
        let (tx, rx) = mpsc::channel::<PipeEnd>();
        let handle = std::thread::spawn(move || {
            let registry = CampaignRegistry::new(1).with_admission(AdmissionConfig::default());
            let end = rx.recv().expect("a live connection");
            Server::new(end, registry).serve().map(|r| r.fleet_stats())
        });
        let mut dials = 0;
        let mut client = ReconnectClient::new(
            move || {
                dials += 1;
                let (a, b) = pipe();
                if dials == 1 {
                    // Dead on arrival: the peer end drops immediately.
                    drop(b);
                } else {
                    tx.send(b).expect("server accepts");
                }
                Some(a)
            },
            Backoff::new(0.5, 2.0, 8.0),
            4,
        );
        let id = client.register(&spec(0), 42).unwrap();
        let id_again = client.register(&spec(0), 42).unwrap();
        assert_eq!(id, id_again);
        assert!(client.retried_requests() >= 1);
        assert!(client.backoff_total_s() > 0.0);
        match client.request(&Request::FleetStats).unwrap() {
            Response::Fleet { stats } => {
                assert_eq!(stats.n_campaigns, 1, "retry double-created a campaign");
                assert_eq!(stats.retried_requests, 1);
            }
            other => panic!("unexpected response: {other:?}"),
        }
        client.request(&Request::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn overloaded_registry_sheds_through_the_protocol() {
        use crate::registry::AdmissionConfig;
        let (client_end, server_end) = pipe();
        let handle = std::thread::spawn(move || {
            let registry = CampaignRegistry::new(1).with_admission(AdmissionConfig {
                max_active: 1,
                max_pending: 0,
            });
            Server::new(server_end, registry)
                .serve()
                .map(|r| r.fleet_stats())
        });
        let mut client = Client::new(client_end);
        client.register(&spec(0)).unwrap();
        match client.register(&spec(1)) {
            Err(ServeError::Overloaded { retry_after_rounds }) => {
                assert!(retry_after_rounds >= 1)
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // The connection survives the shed; the accepted campaign runs.
        client.run_all().unwrap();
        client.shutdown().unwrap();
        let fleet = handle.join().unwrap().unwrap();
        assert_eq!(fleet.shed_requests, 1);
        assert_eq!(fleet.n_done, 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let mut a = Backoff::new(0.5, 2.0, 4.0);
        let got: Vec<f64> = (0..6).map(|_| a.next_delay_s()).collect();
        assert_eq!(got, vec![0.5, 1.0, 2.0, 4.0, 4.0, 4.0]);
        let mut b = Backoff::new(0.5, 2.0, 4.0);
        assert_eq!(b.next_delay_s().to_bits(), 0.5f64.to_bits());
        a.reset();
        assert_eq!(a.next_delay_s().to_bits(), 0.5f64.to_bits());
    }

    #[test]
    fn pipe_moves_bytes_across_threads() {
        let (mut a, mut b) = pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        a.write_all(b"hello").unwrap();
        assert_eq!(&t.join().unwrap(), b"hello");
    }

    #[test]
    fn server_round_trip_determinism_matches_direct_registry() {
        // Drive the same fleet through the protocol and directly; the
        // served histories must be byte-identical to direct serving.
        let mut direct = CampaignRegistry::new(2);
        let direct_ids: Vec<u64> = (0..3).map(|i| direct.register_spec(&spec(i))).collect();
        direct.run_all().unwrap();

        let (mut client, handle) = spawn_server(|| CampaignRegistry::new(2));
        let ids: Vec<u64> = (0..3).map(|i| client.register(&spec(i)).unwrap()).collect();
        client.run_all().unwrap();
        for (id, direct_id) in ids.iter().zip(&direct_ids) {
            let st = client.stats(*id).unwrap();
            let want = direct.stats(*direct_id).unwrap();
            assert!(st.done);
            assert_eq!(st.n_trials, want.n_trials);
            assert_eq!(st.best_cost.to_bits(), want.best_cost.to_bits());
            assert_eq!(st.virtual_busy_s.to_bits(), want.virtual_busy_s.to_bits());
        }
        let snap = client.snapshot(ids[1]).unwrap();
        assert_eq!(
            serde_json::to_string(&snap).unwrap(),
            serde_json::to_string(&direct.snapshot(direct_ids[1]).unwrap()).unwrap()
        );
        client.shutdown().unwrap();
        let fleet = handle.join().unwrap().unwrap();
        assert_eq!(fleet.n_active, 0);
        assert_eq!(fleet.n_done, 3);
    }

    #[test]
    fn request_errors_keep_connection_usable() {
        let (mut client, handle) = spawn_server(|| CampaignRegistry::new(1));
        assert!(client.stats(99).is_err());
        let id = client.register(&spec(0)).unwrap();
        client.run_all().unwrap();
        assert!(client.stats(id).unwrap().done);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn dropping_client_ends_server_cleanly() {
        let (client, handle) = spawn_server(|| CampaignRegistry::new(1));
        drop(client);
        assert!(handle.join().unwrap().is_ok());
    }
}

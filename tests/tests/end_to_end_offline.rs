//! Cross-crate integration: the full offline tuning pipeline
//! (space -> optimizer -> simulated target -> session -> storage).

use autotune::{Objective, SessionConfig, Target, TrialStorage, TuningSession};
use autotune_optimizer::{
    BayesianOptimizer, CmaEs, CmaEsConfig, GaConfig, GeneticAlgorithm, GridSearch, Optimizer,
    ParticleSwarm, PsoConfig, RandomSearch, SimulatedAnnealing,
};
use autotune_sim::{DbmsSim, Environment, SparkSim, Workload};
use autotune_tests::redis_target;

/// Every optimizer family completes a session against every simulator
/// without panicking, always improves on the first trial, and leaves a
/// consistent trial history.
#[test]
fn every_optimizer_tunes_every_simulator() {
    let targets: Vec<Target> = vec![
        redis_target(),
        Target::simulated(
            Box::new(DbmsSim::new()),
            Workload::tpcc(500.0),
            Environment::medium(),
            Objective::MinimizeLatencyAvg,
        ),
        Target::simulated(
            Box::new(SparkSim::new()),
            Workload::tpch(10.0),
            Environment::large(),
            Objective::MinimizeElapsed,
        ),
    ];
    for target in targets {
        let space = target.space().clone();
        let optimizers: Vec<Box<dyn Optimizer>> = vec![
            Box::new(RandomSearch::new(space.clone())),
            Box::new(GridSearch::with_budget(space.clone(), 30)),
            Box::new(SimulatedAnnealing::new(space.clone(), 1.0, 0.95)),
            Box::new(BayesianOptimizer::gp(space.clone())),
            Box::new(BayesianOptimizer::smac(space.clone())),
            Box::new(CmaEs::new(space.clone(), CmaEsConfig::default())),
            Box::new(ParticleSwarm::new(space.clone(), PsoConfig::default())),
            Box::new(GeneticAlgorithm::new(space.clone(), GaConfig::default())),
        ];
        let name = target.name().to_string();
        for opt in optimizers {
            let opt_name = opt.name().to_string();
            let target = match name.split('/').next().expect("name has system") {
                "redis" => redis_target(),
                "dbms" => Target::simulated(
                    Box::new(DbmsSim::new()),
                    Workload::tpcc(500.0),
                    Environment::medium(),
                    Objective::MinimizeLatencyAvg,
                ),
                _ => Target::simulated(
                    Box::new(SparkSim::new()),
                    Workload::tpch(10.0),
                    Environment::large(),
                    Objective::MinimizeElapsed,
                ),
            };
            let mut session = TuningSession::new(target, opt, SessionConfig::default());
            let summary = session.run(30, 7).expect("at least one successful trial");
            assert!(
                summary.best_cost.is_finite(),
                "{name}/{opt_name}: no finite best"
            );
            // The incumbent curve never worsens.
            let finite: Vec<f64> = summary
                .convergence
                .iter()
                .cloned()
                .filter(|c| c.is_finite())
                .collect();
            assert!(!finite.is_empty(), "{name}/{opt_name}: empty curve");
            for w in finite.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{name}/{opt_name}: curve regressed");
            }
            assert_eq!(session.storage().len(), 30);
            assert!(summary.total_elapsed_s > 0.0);
        }
    }
}

/// Storage survives a JSON round trip with the best trial intact.
#[test]
fn storage_roundtrip_preserves_campaign() {
    let target = redis_target();
    let opt = BayesianOptimizer::gp(target.space().clone());
    let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
    session.run(15, 3).expect("at least one successful trial");
    let json = session.storage().to_json();
    let restored = TrialStorage::from_json(&json).expect("valid JSON");
    assert_eq!(restored.len(), session.storage().len());
    assert_eq!(
        restored.best().expect("has best").cost,
        session.storage().best().expect("has best").cost
    );
    assert_eq!(
        restored.convergence_curve(),
        session.storage().convergence_curve()
    );
}

/// Tuned configurations validate against their space and actually deploy:
/// re-evaluating the best config yields a cost near the recorded one.
#[test]
fn best_config_is_deployable() {
    use rand::SeedableRng;
    let target = redis_target();
    let opt = BayesianOptimizer::gp(target.space().clone());
    let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
    let summary = session.run(30, 9).expect("at least one successful trial");
    assert!(session
        .target()
        .space()
        .validate_config(&summary.best_config)
        .is_ok());
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let redeploy: f64 = (0..10)
        .map(|_| {
            session
                .target()
                .evaluate(&summary.best_config, &mut rng)
                .cost
        })
        .sum::<f64>()
        / 10.0;
    assert!(
        (redeploy - summary.best_cost).abs() / summary.best_cost < 0.5,
        "redeployed cost {redeploy} far from recorded {}",
        summary.best_cost
    );
}

/// Sessions are deterministic given (seed, optimizer, target).
#[test]
fn sessions_are_reproducible() {
    let run = || {
        let target = redis_target();
        let opt = BayesianOptimizer::gp(target.space().clone());
        let mut session = TuningSession::new(target, Box::new(opt), SessionConfig::default());
        session
            .run(20, 12)
            .expect("at least one successful trial")
            .best_cost
    };
    assert_eq!(run(), run());
}

//! Knob-importance analysis (tutorial slide 68: "Focus on the Important
//! Knobs!").
//!
//! Two estimators over a trial history:
//!
//! * **Lasso** (OtterTune's approach): L1-regularized linear regression of
//!   cost on the unit-encoded knobs; sweeping λ produces a *path* — the
//!   order in which knobs enter the model is an importance ranking.
//!   Solved by cyclic coordinate descent with soft thresholding.
//! * **Permutation importance** (the SHAP-era model-agnostic stand-in):
//!   fit a random forest, then measure how much shuffling each knob's
//!   column degrades its predictions.

use autotune_space::Space;
use autotune_surrogate::{RandomForest, Surrogate};
use rand::{seq::SliceRandom, Rng};
use serde::{Deserialize, Serialize};

/// Importance scores per knob, descending.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnobImportance {
    /// `(knob name, score)` pairs, most important first.
    pub ranking: Vec<(String, f64)>,
}

impl KnobImportance {
    /// Names of the top `k` knobs.
    pub fn top(&self, k: usize) -> Vec<&str> {
        self.ranking
            .iter()
            .take(k)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Standardizes columns in place; returns per-column (mean, std).
fn standardize(xs: &mut [Vec<f64>]) -> Vec<(f64, f64)> {
    let n = xs.len() as f64;
    let d = xs[0].len();
    let mut stats = Vec::with_capacity(d);
    for j in 0..d {
        let col: Vec<f64> = xs.iter().map(|r| r[j]).collect();
        let mean = autotune_linalg::stats::mean(&col);
        let sd = autotune_linalg::stats::std_dev(&col).max(1e-12);
        for row in xs.iter_mut() {
            row[j] = (row[j] - mean) / sd;
        }
        stats.push((mean, sd));
        let _ = n;
    }
    stats
}

/// Lasso via cyclic coordinate descent. Returns standardized coefficients.
///
/// `lambda` is the L1 penalty in standardized units.
pub fn lasso(xs: &[Vec<f64>], ys: &[f64], lambda: f64, iters: usize) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "lasso: row count mismatch");
    assert!(!xs.is_empty(), "lasso: empty data");
    let mut x = xs.to_vec();
    standardize(&mut x);
    let y_mean = autotune_linalg::stats::mean(ys);
    let y: Vec<f64> = ys.iter().map(|&v| v - y_mean).collect();
    let n = x.len();
    let d = x[0].len();
    let mut beta = vec![0.0; d];
    // Precompute column norms (all ~n after standardization).
    let col_sq: Vec<f64> = (0..d)
        .map(|j| x.iter().map(|r| r[j] * r[j]).sum::<f64>().max(1e-12))
        .collect();
    let mut residual: Vec<f64> = y.clone();
    for _ in 0..iters {
        for j in 0..d {
            // rho = x_j . (residual + beta_j * x_j)
            let mut rho = 0.0;
            for (r, row) in residual.iter().zip(&x) {
                rho += row[j] * r;
            }
            rho += beta[j] * col_sq[j];
            let new_beta = soft_threshold(rho, lambda * n as f64) / col_sq[j];
            let delta = new_beta - beta[j];
            if delta != 0.0 {
                for (r, row) in residual.iter_mut().zip(&x) {
                    *r -= delta * row[j];
                }
                beta[j] = new_beta;
            }
        }
    }
    beta
}

#[inline]
fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Lasso-path knob ranking: sweep λ from large to small and rank knobs by
/// the λ at which their coefficient first becomes nonzero (earlier =
/// more important), breaking ties by final |coefficient|.
pub fn lasso_path(space: &Space, xs: &[Vec<f64>], ys: &[f64]) -> KnobImportance {
    let d = xs[0].len();
    let lambdas: Vec<f64> = (0..12).map(|i| 2.0_f64.powi(3 - i)).collect();
    let mut entry_lambda = vec![f64::NEG_INFINITY; d];
    let mut final_beta = vec![0.0; d];
    for &lambda in &lambdas {
        let beta = lasso(xs, ys, lambda, 200);
        for j in 0..d {
            if beta[j].abs() > 1e-9 && entry_lambda[j] == f64::NEG_INFINITY {
                entry_lambda[j] = lambda;
            }
        }
        final_beta = beta;
    }
    let names: Vec<String> = space.params().iter().map(|p| p.name.clone()).collect();
    let mut ranking: Vec<(String, f64)> = (0..d)
        .map(|j| {
            // Score: entry lambda dominates, final coefficient breaks ties.
            let entry = if entry_lambda[j] == f64::NEG_INFINITY {
                0.0
            } else {
                entry_lambda[j]
            };
            (names[j].clone(), entry * 1e6 + final_beta[j].abs())
        })
        .collect();
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1));
    KnobImportance { ranking }
}

/// Permutation importance under a random-forest surrogate: the increase in
/// mean squared prediction error when column `j` is shuffled.
pub fn permutation_importance(
    space: &Space,
    xs: &[Vec<f64>],
    ys: &[f64],
    rng: &mut impl Rng,
) -> KnobImportance {
    let mut rf = RandomForest::default_forest();
    rf.fit(xs, ys).expect("training data validated by caller"); // lint: allow(D5) inputs validated by the public entry point
    let base_mse = mse(&rf, xs, ys);
    let d = xs[0].len();
    let names: Vec<String> = space.params().iter().map(|p| p.name.clone()).collect();
    let mut ranking: Vec<(String, f64)> = (0..d)
        .map(|j| {
            // Average over a few shuffles to steady the estimate.
            let mut deltas = Vec::with_capacity(3);
            for _ in 0..3 {
                let mut shuffled = xs.to_vec();
                let mut col: Vec<f64> = xs.iter().map(|r| r[j]).collect();
                col.shuffle(rng);
                for (row, v) in shuffled.iter_mut().zip(col) {
                    row[j] = v;
                }
                deltas.push(mse(&rf, &shuffled, ys) - base_mse);
            }
            (
                names[j].clone(),
                autotune_linalg::stats::mean(&deltas).max(0.0),
            )
        })
        .collect();
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1));
    KnobImportance { ranking }
}

fn mse(rf: &RandomForest, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
    let errs: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(x, &y)| {
            let p = rf.predict(x).mean;
            (p - y) * (p - y)
        })
        .collect();
    autotune_linalg::stats::mean(&errs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 8 knobs; cost depends strongly on k1, weakly on k4, not at all on
    /// the rest.
    fn synthetic_history(n: usize, seed: u64) -> (Space, Vec<Vec<f64>>, Vec<f64>) {
        let mut b = Space::builder();
        for i in 0..8 {
            b = b.add(Param::float(format!("k{i}"), 0.0, 1.0));
        }
        let space = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let cfg = space.sample(&mut rng);
            let x = space.encode_unit(&cfg).unwrap();
            let y = 10.0 * x[1] + 2.0 * x[4] + 0.1 * rng.gen::<f64>();
            xs.push(x);
            ys.push(y);
        }
        (space, xs, ys)
    }

    #[test]
    fn lasso_shrinks_irrelevant_coefficients() {
        let (_, xs, ys) = synthetic_history(200, 1);
        let beta = lasso(&xs, &ys, 0.05, 300);
        assert!(beta[1].abs() > 1.0, "strong knob coefficient {}", beta[1]);
        for j in [0, 2, 3, 5, 6, 7] {
            assert!(
                beta[j].abs() < 0.1,
                "irrelevant knob {j} kept coefficient {}",
                beta[j]
            );
        }
    }

    #[test]
    fn lasso_heavy_penalty_kills_everything() {
        let (_, xs, ys) = synthetic_history(100, 2);
        let beta = lasso(&xs, &ys, 100.0, 100);
        assert!(beta.iter().all(|b| b.abs() < 1e-9));
    }

    #[test]
    fn lasso_path_ranks_true_knobs_first() {
        let (space, xs, ys) = synthetic_history(200, 3);
        let imp = lasso_path(&space, &xs, &ys);
        let top2 = imp.top(2);
        assert!(top2.contains(&"k1"), "ranking {:?}", imp.ranking);
        assert!(top2.contains(&"k4"), "ranking {:?}", imp.ranking);
        assert_eq!(imp.top(1)[0], "k1");
    }

    #[test]
    fn permutation_importance_agrees() {
        let (space, xs, ys) = synthetic_history(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let imp = permutation_importance(&space, &xs, &ys, &mut rng);
        assert_eq!(imp.top(1)[0], "k1", "ranking {:?}", imp.ranking);
        assert!(imp.top(2).contains(&"k4"), "ranking {:?}", imp.ranking);
        // Irrelevant knobs score near zero.
        let k7 = imp.ranking.iter().find(|(n, _)| n == "k7").unwrap().1;
        let k1 = imp.ranking.iter().find(|(n, _)| n == "k1").unwrap().1;
        assert!(k7 < 0.1 * k1, "k7 {k7} should be tiny vs k1 {k1}");
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.0, 2.0), 0.0);
        assert_eq!(soft_threshold(-1.5, 2.0), 0.0);
    }
}

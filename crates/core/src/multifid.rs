//! Multi-fidelity optimization via successive halving (tutorial slides
//! 65-66; also the inner loop of TUNA's config screening).
//!
//! Cheap low-fidelity trials (TPC-H SF-1, 1-minute TPC-C) screen many
//! configurations; only the promising fraction graduates to the expensive
//! full-fidelity benchmark. Knowledge transfers imperfectly — a config
//! that wins in-memory may not win I/O-bound — which is exactly why the
//! *final* ranking always comes from the top fidelity.

use crate::executor::{Executor, RungSource, SchedulePolicy};
use crate::{Target, TrialStorage};
use autotune_sim::Workload;
use autotune_space::Config;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One rung of the fidelity ladder.
#[derive(Debug, Clone)]
pub struct FidelityLevel {
    /// Label for reports (e.g. "SF-1").
    pub label: String,
    /// The workload evaluated at this rung.
    pub workload: Workload,
}

/// Successive-halving configuration.
#[derive(Debug, Clone)]
pub struct SuccessiveHalvingConfig {
    /// Configurations entering the bottom rung.
    pub initial_configs: usize,
    /// Fraction retained per rung (e.g. 3 keeps the top third).
    pub eta: usize,
}

impl Default for SuccessiveHalvingConfig {
    fn default() -> Self {
        SuccessiveHalvingConfig {
            initial_configs: 27,
            eta: 3,
        }
    }
}

/// Result of a successive-halving run.
#[derive(Debug, Clone)]
pub struct HalvingOutcome {
    /// The winner at the top fidelity.
    pub best_config: Config,
    /// Its top-fidelity cost.
    pub best_cost: f64,
    /// Total benchmark seconds consumed.
    pub total_elapsed_s: f64,
    /// Survivors per rung (diagnostics).
    pub rung_sizes: Vec<usize>,
}

/// Successive-halving multi-fidelity search.
#[derive(Debug)]
pub struct SuccessiveHalving {
    config: SuccessiveHalvingConfig,
    levels: Vec<FidelityLevel>,
}

impl SuccessiveHalving {
    /// Creates a search over a fidelity ladder (cheapest first).
    pub fn new(levels: Vec<FidelityLevel>, config: SuccessiveHalvingConfig) -> Self {
        assert!(!levels.is_empty(), "need at least one fidelity level");
        assert!(config.eta >= 2, "eta must be at least 2");
        // A bracket entering with a single config (Hyperband's most
        // conservative bracket) is legitimate: it just evaluates straight
        // through the ladder.
        assert!(config.initial_configs >= 1, "need at least one config");
        SuccessiveHalving { config, levels }
    }

    /// Runs the bracket against `target` (whose own workload is ignored in
    /// favour of each rung's) on a single execution slot.
    pub fn run(&self, target: &Target, seed: u64) -> HalvingOutcome {
        self.run_on_slots(target, 1, seed)
    }

    /// Runs the bracket with `slots` trials in flight at once. Rungs are
    /// barriers — the ranking needs every score — so parallelism only
    /// compresses wall clock within a rung, never across one.
    pub fn run_on_slots(&self, target: &Target, slots: usize, seed: u64) -> HalvingOutcome {
        assert!(slots >= 1, "need at least one execution slot");
        let mut rng = StdRng::seed_from_u64(seed);
        let pool: Vec<Config> = (0..self.config.initial_configs)
            .map(|_| target.space().sample(&mut rng))
            .collect();
        let mut source = RungSource::new(&self.levels, self.config.eta, pool);
        let mut storage = TrialStorage::new();
        let report = Executor::new(target, SchedulePolicy::Rungs { k: slots }).run(
            &mut source,
            &mut storage,
            seed,
        );
        let (best_config, best_cost) = source
            .final_scores()
            .first()
            .cloned()
            .expect("top rung evaluated at least one config"); // lint: allow(D5) top rung retains at least one config
        HalvingOutcome {
            best_config,
            best_cost,
            total_elapsed_s: report.machine_seconds,
            rung_sizes: source.rung_sizes().to_vec(),
        }
    }

    /// Total trials the bracket will execute (for budget comparisons).
    pub fn total_trials(&self) -> usize {
        let mut n = self.config.initial_configs;
        let mut total = 0;
        for rung in 0..self.levels.len() {
            total += n;
            if rung + 1 < self.levels.len() {
                n = (n / self.config.eta).max(1);
            }
        }
        total
    }
}

/// Hyperband (Li et al. 2018): several successive-halving brackets with
/// different aggressiveness, hedging the unknown fidelity-transfer quality.
///
/// An aggressive bracket (many configs, heavy pruning at low fidelity)
/// wins when low-fidelity scores rank configurations faithfully; a
/// conservative bracket (few configs, mostly high fidelity) wins when they
/// do not (slide 66's "is the knowledge gained transferable?"). Hyperband
/// runs both and keeps the best.
#[derive(Debug)]
pub struct Hyperband {
    levels: Vec<FidelityLevel>,
    eta: usize,
}

impl Hyperband {
    /// Creates a Hyperband search over a fidelity ladder (cheapest first).
    pub fn new(levels: Vec<FidelityLevel>, eta: usize) -> Self {
        assert!(!levels.is_empty(), "need at least one fidelity level");
        assert!(eta >= 2, "eta must be at least 2");
        Hyperband { levels, eta }
    }

    /// The brackets this ladder supports: bracket `s` starts with
    /// `eta^s` configs at rung `len-1-s` of the ladder (so the most
    /// aggressive bracket enters at the cheapest fidelity).
    pub fn brackets(&self) -> Vec<SuccessiveHalving> {
        let max_s = self.levels.len() - 1;
        (0..=max_s)
            .rev()
            .map(|s| {
                let entry_level = max_s - s;
                SuccessiveHalving::new(
                    self.levels[entry_level..].to_vec(),
                    SuccessiveHalvingConfig {
                        initial_configs: self.eta.pow(s as u32).max(1),
                        eta: self.eta,
                    },
                )
            })
            .collect()
    }

    /// Runs every bracket and returns the best outcome overall plus the
    /// total benchmark time across brackets.
    pub fn run(&self, target: &Target, seed: u64) -> HalvingOutcome {
        let mut best: Option<HalvingOutcome> = None;
        let mut total_elapsed = 0.0;
        let mut rung_sizes = Vec::new();
        for (i, bracket) in self.brackets().into_iter().enumerate() {
            let outcome = bracket.run(target, seed.wrapping_add(i as u64));
            total_elapsed += outcome.total_elapsed_s;
            rung_sizes.extend(outcome.rung_sizes.iter().copied());
            if best
                .as_ref()
                .is_none_or(|b| outcome.best_cost < b.best_cost)
            {
                best = Some(outcome);
            }
        }
        let mut best = best.expect("at least one bracket ran"); // lint: allow(D5) brackets() yields at least one bracket
        best.total_elapsed_s = total_elapsed;
        best.rung_sizes = rung_sizes;
        best
    }

    /// Total trials across all brackets.
    pub fn total_trials(&self) -> usize {
        self.brackets().iter().map(|b| b.total_trials()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use autotune_sim::{DbmsSim, Environment};

    fn tpch_ladder() -> Vec<FidelityLevel> {
        vec![
            FidelityLevel {
                label: "SF-1".into(),
                workload: Workload::tpch(1.0),
            },
            FidelityLevel {
                label: "SF-4".into(),
                workload: Workload::tpch(4.0),
            },
            FidelityLevel {
                label: "SF-10".into(),
                workload: Workload::tpch(10.0),
            },
        ]
    }

    fn dbms_target() -> Target {
        Target::simulated(
            Box::new(DbmsSim::new()),
            Workload::tpch(10.0),
            Environment::medium(),
            Objective::MinimizeElapsed,
        )
    }

    #[test]
    fn bracket_shrinks_by_eta() {
        let sh = SuccessiveHalving::new(tpch_ladder(), SuccessiveHalvingConfig::default());
        let outcome = sh.run(&dbms_target(), 1);
        assert_eq!(outcome.rung_sizes, vec![27, 9, 3]);
        assert!(outcome.best_cost.is_finite());
        assert_eq!(sh.total_trials(), 39);
    }

    #[test]
    fn cheaper_than_full_fidelity_everywhere() {
        // 39 multi-fidelity trials must cost far less than 39 SF-10 trials.
        let target = dbms_target();
        let sh = SuccessiveHalving::new(tpch_ladder(), SuccessiveHalvingConfig::default());
        let outcome = sh.run(&target, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let full_cost: f64 = (0..sh.total_trials())
            .map(|_| {
                let cfg = target.space().sample(&mut rng);
                target.evaluate(&cfg, &mut rng).result.elapsed_s
            })
            .sum();
        assert!(
            outcome.total_elapsed_s < 0.5 * full_cost,
            "halving {} vs flat {} seconds",
            outcome.total_elapsed_s,
            full_cost
        );
    }

    #[test]
    fn finds_config_close_to_exhaustive_winner() {
        let target = dbms_target();
        let sh = SuccessiveHalving::new(tpch_ladder(), SuccessiveHalvingConfig::default());
        let outcome = sh.run(&target, 4);
        // Exhaustive at full fidelity with the same trial *count*.
        let mut rng = StdRng::seed_from_u64(4);
        let mut best_flat = f64::INFINITY;
        for _ in 0..sh.total_trials() {
            let cfg = target.space().sample(&mut rng);
            let c = target.evaluate(&cfg, &mut rng).cost;
            if c.is_finite() {
                best_flat = best_flat.min(c);
            }
        }
        assert!(
            outcome.best_cost < best_flat * 1.5,
            "halving {} vs flat {}; transfer should roughly hold",
            outcome.best_cost,
            best_flat
        );
    }

    #[test]
    fn crashed_configs_never_promoted() {
        // Small VM: big buffer pools crash. Survivors at the top rung must
        // all be finite.
        let target = Target::simulated(
            Box::new(DbmsSim::new()),
            Workload::tpch(10.0),
            Environment::small(),
            Objective::MinimizeElapsed,
        );
        let sh = SuccessiveHalving::new(tpch_ladder(), SuccessiveHalvingConfig::default());
        let outcome = sh.run(&target, 5);
        assert!(outcome.best_cost.is_finite());
    }

    #[test]
    fn hyperband_brackets_span_aggressiveness() {
        let hb = Hyperband::new(tpch_ladder(), 3);
        let brackets = hb.brackets();
        assert_eq!(brackets.len(), 3);
        // Bracket 0: 9 configs entering at SF-1 (3 rungs).
        // Bracket 1: 3 configs entering at SF-4 (2 rungs).
        // Bracket 2: 1 config straight at SF-10.
        assert_eq!(brackets[0].total_trials(), 9 + 3 + 1);
        assert_eq!(brackets[1].total_trials(), 3 + 1);
        assert_eq!(brackets[2].total_trials(), 1);
        assert_eq!(hb.total_trials(), 13 + 4 + 1);
    }

    #[test]
    fn hyperband_finds_finite_best_and_accounts_time() {
        let hb = Hyperband::new(tpch_ladder(), 3);
        let target = dbms_target();
        let outcome = hb.run(&target, 7);
        assert!(outcome.best_cost.is_finite());
        assert!(outcome.total_elapsed_s > 0.0);
        assert!(target.space().validate_config(&outcome.best_config).is_ok());
        // All brackets' rungs are reported.
        assert_eq!(outcome.rung_sizes.len(), 3 + 2 + 1);
    }

    #[test]
    fn hyperband_never_loses_to_its_worst_bracket() {
        let hb = Hyperband::new(tpch_ladder(), 3);
        let target = dbms_target();
        let outcome = hb.run(&target, 9);
        for (i, bracket) in hb.brackets().into_iter().enumerate() {
            let b = bracket.run(&target, 9u64.wrapping_add(i as u64));
            assert!(
                outcome.best_cost <= b.best_cost + 1e-9,
                "hyperband {} must be <= bracket {i}'s {}",
                outcome.best_cost,
                b.best_cost
            );
        }
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn eta_must_be_at_least_two() {
        let _ = SuccessiveHalving::new(
            tpch_ladder(),
            SuccessiveHalvingConfig {
                initial_configs: 9,
                eta: 1,
            },
        );
    }
}

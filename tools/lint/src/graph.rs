//! The cross-crate lock-order graph (D7's global half).
//!
//! Every nested acquisition `a` → `b` the flow pass sees (guard on `a`
//! still live when `b` is taken) becomes a directed edge keyed by the
//! unified lock names. A cycle in that graph is a potential deadlock:
//! two threads can each hold one lock of the cycle and wait on the next.
//! The per-file pass collects edges (dropping ones suppressed by
//! `// lint: allow(D7)`); [`cycle_violations`] runs Tarjan's SCC over
//! the union and reports **every edge inside a non-trivial SCC**, so the
//! finding points at each acquisition site participating in the cycle.

use crate::report::Violation;
use std::collections::BTreeMap;

/// One nested-acquisition edge in the lock-order graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held first.
    pub from: String,
    /// Lock acquired while `from` is held.
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
    /// Function the nesting occurs in.
    pub func: String,
}

/// Tarjan's strongly-connected components over the edge union.
///
/// Returns, per node index, its component id. Components are numbered in
/// reverse topological order; the numbering itself is unused — only
/// same-component membership matters.
fn scc(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    struct State<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next_index: usize,
        comp: Vec<usize>,
        next_comp: usize,
    }
    fn strongconnect(s: &mut State, v: usize) {
        s.index[v] = Some(s.next_index);
        s.low[v] = s.next_index;
        s.next_index += 1;
        s.stack.push(v);
        s.on_stack[v] = true;
        let neighbors = s.adj[v].clone();
        for &w in &neighbors {
            if s.index[w].is_none() {
                strongconnect(s, w);
                s.low[v] = s.low[v].min(s.low[w]);
            } else if s.on_stack[w] {
                s.low[v] = s.low[v].min(s.index[w].unwrap_or(0));
            }
        }
        if Some(s.low[v]) == s.index[v] {
            loop {
                let w = s.stack.pop().unwrap_or(v);
                s.on_stack[w] = false;
                s.comp[w] = s.next_comp;
                if w == v {
                    break;
                }
            }
            s.next_comp += 1;
        }
    }
    let mut s = State {
        adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        comp: vec![0; n],
        next_comp: 0,
    };
    for v in 0..n {
        if s.index[v].is_none() {
            strongconnect(&mut s, v);
        }
    }
    s.comp
}

/// Reports every edge participating in a lock-order cycle, sorted and
/// deduplicated by site.
pub fn cycle_violations(edges: &[LockEdge]) -> Vec<Violation> {
    let mut ids: BTreeMap<&str, usize> = BTreeMap::new();
    for e in edges {
        let n = ids.len();
        ids.entry(e.from.as_str()).or_insert(n);
        let n = ids.len();
        ids.entry(e.to.as_str()).or_insert(n);
    }
    let n = ids.len();
    let mut adj = vec![Vec::new(); n];
    for e in edges {
        let (f, t) = (ids[e.from.as_str()], ids[e.to.as_str()]);
        if !adj[f].contains(&t) {
            adj[f].push(t);
        }
    }
    let comp = scc(n, &adj);
    // A component is cyclic when it has >1 node, or a self-edge.
    let mut comp_size = vec![0usize; n];
    for &c in &comp {
        comp_size[c] += 1;
    }
    let mut out: Vec<Violation> = Vec::new();
    let mut seen: Vec<(String, u32, String, String)> = Vec::new();
    for e in edges {
        let (f, t) = (ids[e.from.as_str()], ids[e.to.as_str()]);
        let cyclic = (comp[f] == comp[t] && comp_size[comp[f]] > 1) || e.from == e.to;
        if !cyclic {
            continue;
        }
        let key = (e.file.clone(), e.line, e.from.clone(), e.to.clone());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let members: Vec<&str> = ids
            .iter()
            .filter(|(_, &id)| comp[id] == comp[f])
            .map(|(&name, _)| name)
            .collect();
        out.push(Violation {
            file: e.file.clone(),
            line: e.line,
            code: "D7",
            message: format!(
                "lock-order inversion: `{}` taken while `{}` is held (in `{}`) closes a cycle \
                 among locks {{{}}} — pick one global order",
                e.to,
                e.from,
                e.func,
                members.join(", ")
            ),
        });
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out
}

/// Renders the edge union as a deterministic DOT digraph, one edge per
/// distinct (from, to) pair labelled with its first site.
pub fn to_dot(edges: &[LockEdge]) -> String {
    let mut uniq: BTreeMap<(String, String), String> = BTreeMap::new();
    for e in edges {
        uniq.entry((e.from.clone(), e.to.clone()))
            .or_insert_with(|| format!("{}:{} ({})", e.file, e.line, e.func));
    }
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
    for ((from, to), label) in &uniq {
        out.push_str(&format!("  \"{from}\" -> \"{to}\" [label=\"{label}\"];\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: &str, to: &str, line: u32) -> LockEdge {
        LockEdge {
            from: from.into(),
            to: to.into(),
            file: "f.rs".into(),
            line,
            func: "f".into(),
        }
    }

    #[test]
    fn acyclic_graph_is_clean() {
        let edges = vec![edge("a", "b", 1), edge("b", "c", 2), edge("a", "c", 3)];
        assert!(cycle_violations(&edges).is_empty());
    }

    #[test]
    fn two_cycle_reports_both_edges() {
        let edges = vec![edge("a", "b", 1), edge("b", "a", 2), edge("b", "c", 3)];
        let v = cycle_violations(&edges);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.code == "D7"));
        assert!(v[0].message.contains("a, b"), "{}", v[0].message);
    }

    #[test]
    fn three_cycle_across_files() {
        let mut edges = vec![edge("a", "b", 1), edge("b", "c", 2)];
        edges.push(LockEdge {
            from: "c".into(),
            to: "a".into(),
            file: "g.rs".into(),
            line: 9,
            func: "g".into(),
        });
        let v = cycle_violations(&edges);
        assert_eq!(v.len(), 3);
        assert!(v.iter().any(|v| v.file == "g.rs" && v.line == 9));
    }

    #[test]
    fn duplicate_sites_dedup() {
        let edges = vec![edge("a", "b", 1), edge("a", "b", 1), edge("b", "a", 2)];
        assert_eq!(cycle_violations(&edges).len(), 2);
    }

    #[test]
    fn dot_is_deterministic() {
        let edges = vec![edge("b", "c", 2), edge("a", "b", 1)];
        let dot = to_dot(&edges);
        let a = dot.find("\"a\" -> \"b\"").unwrap();
        let b = dot.find("\"b\" -> \"c\"").unwrap();
        assert!(a < b);
    }
}

//! Dense linear-algebra substrate for the `autotune` framework.
//!
//! The autotuning stack needs a small but trustworthy set of numerical
//! kernels — Gaussian-process regression needs Cholesky factorizations and
//! triangular solves, CMA-ES needs symmetric eigendecompositions, workload
//! embeddings need PCA, and knob-importance analysis needs least squares.
//! None of the sanctioned dependency set provides these, so this crate
//! implements them from scratch on a simple row-major [`Matrix`] type.
//!
//! Everything here is sized for the autotuning regime: matrices of a few
//! hundred rows (one per trial), not BLAS-scale workloads. Algorithms are
//! chosen for numerical robustness first (partial pivoting, jittered
//! Cholesky, cyclic Jacobi) and asymptotic cleverness second.
//!
//! # Example
//!
//! ```
//! use autotune_linalg::{Matrix, Cholesky};
//!
//! // Solve the SPD system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
//! let chol = Cholesky::new(&a).unwrap();
//! let x = chol.solve_vec(&[8.0, 7.0]);
//! assert!((x[0] - 1.25).abs() < 1e-12);
//! assert!((x[1] - 1.5).abs() < 1e-12);
//! ```

mod blocked;
mod cholesky;
mod eigen;
mod lu;
mod matrix;
mod par;
mod pca;
mod qr;
pub mod stats;
mod vector;

pub use blocked::DEFAULT_BLOCK;
pub use cholesky::Cholesky;
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use lu::Lu;
pub use matrix::Matrix;
pub use par::{ordered_mean, ordered_sum, par_map, par_map_threads};
pub use pca::Pca;
pub use qr::{least_squares, Qr};
pub use vector::{axpy, dot, norm2, normalize, scaled_add, squared_distance};

/// Errors produced by the numerical kernels in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix is not positive-definite (Cholesky failed even with jitter).
    NotPositiveDefinite,
    /// Matrix is singular to working precision.
    Singular,
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected/actual shapes.
        context: &'static str,
    },
    /// An iterative routine did not converge within its iteration budget.
    NoConvergence,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            LinalgError::NoConvergence => write!(f, "iterative routine failed to converge"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results from this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

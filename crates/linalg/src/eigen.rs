//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! CMA-ES updates its sampling ellipsoid from the eigendecomposition of the
//! covariance matrix, and PCA embeddings need the top eigenvectors of a
//! feature covariance. Jacobi is slow in the large-n limit but bulletproof
//! and exactly the right tool for the <100-dimensional matrices both
//! consumers produce.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V diag(lambda) V^T` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method. Eigenvalues are returned sorted descending, eigenvectors
/// as columns in matching order.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(LinalgError::ShapeMismatch {
            context: "eigen: matrix must be square",
        });
    }
    if !a.is_symmetric(1e-8 * a.max_abs().max(1.0)) {
        return Err(LinalgError::ShapeMismatch {
            context: "eigen: matrix must be symmetric",
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-14 * a.frobenius_norm().max(1e-300);

    // Cyclic sweeps over all off-diagonal pairs.
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            return Ok(sorted(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                // Compute the Jacobi rotation that zeroes m[p][q].
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation: A <- J^T A J.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence)
}

/// Sorts eigenpairs descending by eigenvalue.
fn sorted(m: Matrix, v: Matrix) -> SymmetricEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag = m.diag();
    order.sort_by(|&a, &b| diag[b].total_cmp(&diag[a]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.5], &[0.5, -0.5, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let lambda = Matrix::from_diag(&e.values);
        let back = e
            .vectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_rows(&[&[5.0, 2.0], &[2.0, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(2), 1e-8));
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[&[1.0, 0.3, 0.1], &[0.3, 2.0, 0.2], &[0.1, 0.2, 3.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(symmetric_eigen(&a).is_err());
    }
}

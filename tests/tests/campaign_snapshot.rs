//! Snapshot round-trip coverage for the resumable [`Campaign`] state
//! machine: a golden serde fixture of a mid-campaign event log, plus a
//! property test that `resume(snapshot(k))` equals running straight
//! through, for arbitrary k across every schedule policy (Sequential,
//! SyncBatch, AsyncSlots, Rungs).

use autotune::{
    Campaign, CampaignSnapshot, FidelityLevel, Objective, OwnedOptimizerSource, RetryMw,
    RungSource, SchedulePolicy, Target,
};
use autotune_optimizer::RandomSearch;
use autotune_sim::{CloudNoise, Environment, FaultPlan, NoiseConfig, RedisSim, Workload};
use autotune_space::Config;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn redis_target(hostile: bool) -> Target {
    let mut t = Target::simulated(
        Box::new(RedisSim::new()),
        Workload::kv_cache(20_000.0),
        Environment::small(),
        Objective::MinimizeLatencyP95,
    );
    if hostile {
        t = t
            .with_noise(CloudNoise::new_fleet(3, NoiseConfig::default(), 77))
            .with_faults(FaultPlan::aggressive(5));
    }
    t
}

/// An owned campaign over random search; hostile targets get a retry
/// middleware so transient faults exercise the attempt>0 log records.
fn opt_campaign(
    policy: SchedulePolicy,
    seed: u64,
    budget: usize,
    hostile: bool,
) -> Campaign<'static> {
    let target = redis_target(hostile);
    let opt = RandomSearch::new(target.space().clone());
    let source = OwnedOptimizerSource::new(Box::new(opt), budget);
    let mut c = Campaign::new(target, Box::new(source), policy, seed);
    if hostile {
        c = c.with_middleware(Box::new(RetryMw::new(2, 5.0)));
    }
    c
}

fn tpch_levels() -> Vec<FidelityLevel> {
    vec![
        FidelityLevel {
            label: "SF-2".into(),
            workload: Workload::tpch(2.0),
        },
        FidelityLevel {
            label: "SF-8".into(),
            workload: Workload::tpch(8.0),
        },
    ]
}

fn rung_pool(target: &Target, n: usize, seed: u64) -> Vec<Config> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| target.space().sample(&mut rng)).collect()
}

/// A campaign over a successive-halving rung ladder (borrowed source).
fn rung_campaign<'a>(levels: &'a [FidelityLevel], seed: u64, slots: usize) -> Campaign<'a> {
    let target = redis_target(false);
    let pool = rung_pool(&target, 6, seed ^ 0x5eed);
    let source = RungSource::new(levels, 2, pool);
    Campaign::new(
        target,
        Box::new(source),
        SchedulePolicy::Rungs { k: slots },
        seed,
    )
}

/// Drives to completion; returns (storage JSON, event-log JSON).
fn finish(c: &mut Campaign<'_>) -> (String, String) {
    c.run();
    let log = serde_json::to_string(c.log().expect("log enabled")).unwrap();
    (c.storage().to_json(), log)
}

/// Ticks `k` times (stopping early if done), snapshots, resumes the
/// snapshot into `fresh`, finishes both, and asserts byte-identity.
fn assert_resume_matches(mut half: Campaign<'_>, fresh: Campaign<'_>, k: usize) {
    for _ in 0..k {
        if half.tick() {
            break;
        }
    }
    let snap = half.snapshot().expect("snapshot at tick boundary");
    // JSON round-trip the snapshot itself: resume must work from the
    // parsed form, exactly as a service restoring persisted state would.
    let parsed = CampaignSnapshot::from_json(&snap.to_json()).expect("snapshot parses");
    let mut resumed = Campaign::resume(&parsed, fresh).expect("resume accepts fresh twin");
    let (resumed_storage, resumed_log) = finish(&mut resumed);
    let (straight_storage, straight_log) = finish(&mut half);
    assert_eq!(
        resumed_storage, straight_storage,
        "trial histories diverged"
    );
    assert_eq!(resumed_log, straight_log, "event logs diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `resume(snapshot(k))` == straight run, for arbitrary k, every
    /// schedule policy, benign and hostile (noise + faults + retries)
    /// targets.
    #[test]
    fn resume_equals_straight_run(seed in 0u64..300, k in 0usize..14, scenario in 0usize..7) {
        let (policy, hostile) = match scenario {
            0 => (SchedulePolicy::Sequential, false),
            1 => (SchedulePolicy::Sequential, true),
            2 => (SchedulePolicy::SyncBatch { k: 3 }, false),
            3 => (SchedulePolicy::SyncBatch { k: 2 }, true),
            4 => (SchedulePolicy::AsyncSlots { k: 3 }, false),
            _ => (SchedulePolicy::AsyncSlots { k: 2 }, true),
        };
        if scenario < 6 {
            let half = opt_campaign(policy, seed, 10, hostile);
            let fresh = opt_campaign(policy, seed, 10, hostile);
            assert_resume_matches(half, fresh, k);
        } else {
            let levels = tpch_levels();
            let half = rung_campaign(&levels, seed, 2);
            let fresh = rung_campaign(&levels, seed, 2);
            assert_resume_matches(half, fresh, k);
        }
    }
}

/// Golden fixture: the serialized snapshot of a fixed mid-campaign state
/// (hostile AsyncSlots campaign, 4 ticks in) is byte-stable across
/// releases. Regenerate deliberately with
/// `UPDATE_GOLDEN=1 cargo test -p autotune-tests --test campaign_snapshot`.
#[test]
fn snapshot_serde_matches_golden_fixture() {
    let mut c = opt_campaign(SchedulePolicy::AsyncSlots { k: 2 }, 7, 10, true);
    for _ in 0..4 {
        if c.tick() {
            break;
        }
    }
    let json = c.snapshot().expect("snapshot at tick boundary").to_json();

    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/campaign_snapshot.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        json, golden,
        "snapshot serialization drifted from the golden fixture; if the \
         change is intentional (and SNAPSHOT_VERSION was bumped for any \
         incompatible change), regenerate with UPDATE_GOLDEN=1"
    );

    // The committed fixture must remain loadable and resumable.
    let parsed = CampaignSnapshot::from_json(&golden).expect("golden snapshot parses");
    let fresh = opt_campaign(SchedulePolicy::AsyncSlots { k: 2 }, 7, 10, true);
    let mut resumed = Campaign::resume(&parsed, fresh).expect("golden snapshot resumes");
    let (resumed_storage, _) = finish(&mut resumed);
    let (straight_storage, _) = finish(&mut c);
    assert_eq!(resumed_storage, straight_storage);
}

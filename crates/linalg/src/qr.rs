//! Householder QR factorization and least-squares solves.
//!
//! Knob-importance analysis (OtterTune-style Lasso pre-screening and linear
//! probes) fits overdetermined linear models `X beta ~ y`; QR solves these
//! without squaring the condition number the way normal equations would.

#![allow(clippy::needless_range_loop)] // offset-indexed triangular loops
use crate::{LinalgError, Matrix, Result};

/// Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// `Q` is stored implicitly as the sequence of Householder reflectors; `R`
/// is the upper triangle left in place. This is all that is needed to solve
/// least squares, which is the only consumer.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed reflectors (below diagonal) and R (upper triangle).
    qr: Matrix,
    /// Scalar `beta_k` of each reflector `H_k = I - beta v v^T`.
    betas: Vec<f64>,
    rank_deficient: bool,
}

impl Qr {
    /// Factorizes `a`. Requires `a.rows() >= a.cols()`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                context: "qr: requires rows >= cols",
            });
        }
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);
        let mut rank_deficient = false;
        let scale = a.max_abs().max(1.0);
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-13 * scale {
                rank_deficient = true;
                betas.push(0.0);
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, stored in place with v[k] implicit.
            let v0 = qr[(k, k)] - alpha;
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            let beta = -v0 / alpha;
            qr[(k, k)] = alpha;
            // Apply H to the trailing columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta;
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            betas.push(beta);
        }
        Ok(Qr {
            qr,
            betas,
            rank_deficient,
        })
    }

    /// Whether any pivot column was numerically zero. Least-squares solves
    /// on a rank-deficient factorization return
    /// [`LinalgError::Singular`].
    pub fn is_rank_deficient(&self) -> bool {
        self.rank_deficient
    }

    /// Solves the least-squares problem `min ||a x - b||_2`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                context: "qr solve: rhs length must match rows",
            });
        }
        if self.rank_deficient {
            return Err(LinalgError::Singular);
        }
        // Apply Q^T to b.
        let mut y = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= beta;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = 0.0;
            for j in (i + 1)..n {
                s += self.qr[(i, j)] * x[j];
            }
            let r = self.qr[(i, i)];
            if r.abs() < 1e-300 {
                return Err(LinalgError::Singular);
            }
            x[i] = (y[i] - s) / r;
        }
        Ok(x)
    }
}

/// Ordinary least squares `min ||x beta - y||` via QR. Convenience wrapper
/// for one-shot fits.
pub fn least_squares(x: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    Qr::new(x)?.solve_least_squares(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = vec![1.0, 2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = least_squares(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn overdetermined_regression_line() {
        // Fit y = 2x + 1 through noiseless points.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let y: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let beta = least_squares(&a, &y).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: best fit is the mean.
        let a = Matrix::from_fn(3, 1, |_, _| 1.0);
        let y = vec![1.0, 2.0, 6.0];
        let beta = least_squares(&a, &y).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn rank_deficient_reported() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        assert!(qr.is_rank_deficient());
        assert_eq!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(matches!(
            Qr::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}

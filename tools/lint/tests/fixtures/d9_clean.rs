//! D9 clean fixture: Release/Acquire pairing for decision-feeding
//! atomics, counter `fetch_add` exempt by construction, and a justified
//! Relaxed load carrying its happens-before argument in an allow.

pub fn record_hit(heat: &AtomicU64, hits: &AtomicU64, tick: u64) {
    hits.fetch_add(1, Ordering::Relaxed);
    heat.store(tick, Ordering::Release);
}

pub fn is_hot(heat: &AtomicU64, floor: u64) -> bool {
    heat.load(Ordering::Acquire) >= floor
}

pub fn report(hits: &AtomicU64) -> u64 {
    hits.load(Ordering::Relaxed) // lint: allow(D9) monotone counter; reporting only, no decision reads it
}

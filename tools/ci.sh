#!/usr/bin/env bash
# The tier-1 gate, runnable locally; CI runs the same steps split across
# the build-test / lint / determinism / perf-trajectory matrix jobs in
# .github/workflows/ci.yml. Everything must pass before a change lands.
#
#   tools/ci.sh          # the full gate, release determinism + perf included
#   tools/ci.sh --fast   # inner-loop subset: skips the release-build gates
#                        # (release tests, chaos/E34, perf trajectory)
#
# Every step runs even after a failure, so one invocation reports the
# whole picture; the trailing summary table shows pass/fail per step and
# the script exits nonzero when anything failed.
set -uo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *)
      echo "usage: tools/ci.sh [--fast]" >&2
      exit 2
      ;;
  esac
done

STEP_NAMES=()
STEP_RESULTS=()
FAILED=0

run_step() {
  local name="$1"
  shift
  echo
  echo "== $name =="
  if "$@"; then
    STEP_RESULTS+=("pass")
  else
    STEP_RESULTS+=("FAIL")
    FAILED=1
  fi
  STEP_NAMES+=("$name")
}

skip_step() {
  STEP_NAMES+=("$1")
  STEP_RESULTS+=("skip")
}

if [ "$FAST" -eq 1 ]; then
  run_step "build (debug)" cargo build
else
  run_step "build (release)" cargo build --release
fi

run_step "tests" cargo test -q

run_step "rustfmt" cargo fmt --check

# unwrap_used stays a warning in editors (per-crate [lints] tables); the
# enforcing gate for panic sites is autotune-lint's D5 below, so keep
# -D warnings from tripping on the documented allow-listed survivors.
run_step "clippy" cargo clippy --workspace --all-targets -- -D warnings -A clippy::unwrap_used

rustdoc_step() {
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}
run_step "rustdoc (warnings are errors)" rustdoc_step

# Machine-checks the determinism, panic-safety, and concurrency
# contracts across every crates/*/src file: no wall-clock reads, no
# hash-ordered containers, no unseeded randomness, no NaN-panicking
# comparisons, no panics or stdout in library paths (D1-D6), plus the
# crash-safety pack — acyclic cross-crate lock order, no guard held
# across catch_unwind/par_map*/WAL appends, justified Relaxed atomics,
# append-before-ack in crates/serve, ordered float reductions, and
# PoisonFree lock recovery (D7-D12; see DESIGN.md "Static invariants").
run_step "static invariants (autotune-lint)" \
  cargo run -q --release -p autotune-lint -- --deny-all

if [ "$FAST" -eq 1 ]; then
  # The "tests" step above already ran the interleaving harness at its
  # 8-seed debug default; only the 64-seed release sweep is skipped.
  skip_step "race interleavings (release, 64 seeds)"
  skip_step "fault determinism (release)"
  skip_step "serve determinism (release)"
  skip_step "chaos recovery determinism (release)"
  skip_step "chaos recovery E34 (release)"
  skip_step "telemetry purity (release)"
  skip_step "perf trajectory (bench_record)"
else
  # Seeded two-thread interleavings over the sharded cache and the
  # tenant router: every schedule must produce byte-identical snapshots
  # and hit/miss sequences, match its serial replay, and keep
  # single-flight admission schedule-invariant. 64 seeds, optimized
  # build, where real races would actually bite.
  race_step() {
    RACE_SEEDS=64 cargo test -q --release -p autotune-tests --test race_harness
  }
  run_step "race interleavings (release, 64 seeds)" race_step

  # The resilience stack (retries, timeouts, quarantine) must keep the
  # byte-identical k=1 schedule-policy contract; run its regression test
  # against the optimized build, where any wall-clock/thread-timing leak
  # would surface.
  run_step "fault determinism (release)" \
    cargo test -q --release -p autotune-tests --test fault_resilience

  # ISSUE 6 acceptance: interleaving campaigns through the serving layer —
  # any worker count, any round schedule, snapshot/resume mid-flight,
  # through the wire protocol — must leave every campaign's history
  # byte-identical to running it alone.
  run_step "serve determinism (release)" \
    cargo test -q --release -p autotune-serve -- determinism

  # ISSUE 7 acceptance: crash the durable fleet at chaos-chosen WAL
  # appends, inject worker panics, recover from the log, and demand
  # byte-identical campaign histories; fuzz the frame codec; shed
  # overload without perturbing accepted campaigns.
  chaos_step() {
    cargo test -q --release -p autotune-serve &&
      cargo test -q --release -p autotune-tests --test serve_robustness
  }
  run_step "chaos recovery determinism (release)" chaos_step

  # The 128-campaign chaos drive: repeated simulated crashes + reopens
  # across two chaos seeds must leave 128/128 recovered histories
  # byte-identical, with torn WAL tails truncated, not fatal.
  run_step "chaos recovery E34 (release)" \
    cargo run -q --release -p autotune-bench --bin repro -- e34

  # ISSUE 3 acceptance: enabling every telemetry subscriber leaves k=1
  # campaigns byte-identical.
  run_step "telemetry purity (release)" \
    cargo test -q --release -p autotune-tests --test telemetry

  # Perf trajectory: perf_smoke (ISSUE 4's 2x suggest-path tripwire) +
  # serve_fleet + cache_fleet, appending {commit, date, metrics} rows to
  # the BENCH_*.json trajectories and failing on a >20% regression vs
  # the committed baseline. See tools/bench_record.sh.
  run_step "perf trajectory (bench_record)" tools/bench_record.sh
fi

echo
echo "== summary =="
for i in "${!STEP_NAMES[@]}"; do
  printf '  %-42s %s\n' "${STEP_NAMES[$i]}" "${STEP_RESULTS[$i]}"
done

if [ "$FAILED" -ne 0 ]; then
  echo "CI gate FAILED."
  exit 1
fi
if [ "$FAST" -eq 1 ]; then
  echo "CI gate passed (--fast: release gates skipped)."
else
  echo "CI gate passed."
fi

//! Allow-hatch fixture: the allow on line 4 suppresses exactly that
//! line; the identical call on line 5 still fires.

pub fn pair(xs: &[u32]) -> (u32, u32) {
    let a = *xs.first().unwrap(); // lint: allow(D5) caller asserts non-empty
    let b = *xs.last().unwrap();
    (a, b)
}

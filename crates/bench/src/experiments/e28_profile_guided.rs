//! E28 (slide 68, the tutorial's flagged opportunity): PGO/FDO-style
//! profile-guided knob prioritization — "run workload, capture stack
//! traces, identify hotspots, prioritize tuning the surrounding knobs".
//!
//! One profiled run of the *default* configuration ranks the knobs; tuning
//! only the profile-guided top-3 is compared against a deliberately
//! unrelated knob subset and against tuning everything, at equal budget.
//! Unlike Lasso/SHAP importance (E18), this needs zero tuning history.

use crate::experiments::dbms_target;
use crate::report::{f, Report};
use autotune::KnobComponentMap;
use autotune_optimizer::{BayesianOptimizer, Optimizer};
use autotune_sim::{DbmsSim, Environment, SimSystem, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    let target = dbms_target();
    let space = target.space().clone();
    let map = KnobComponentMap::dbms();

    // One profiled run of the default config = the entire "history".
    let sim = DbmsSim::new();
    let mut rng = StdRng::seed_from_u64(1);
    let profiled = sim.run_trial(
        &space.default_config(),
        &Workload::tpcc(500.0),
        &Environment::medium(),
        &mut rng,
    );
    let ranking = map.rank_knobs(&profiled.profile);
    let pgo_knobs = map.top_knobs(&profiled.profile, 3);
    let anti_knobs: Vec<String> = ranking
        .iter()
        .rev()
        .take(3)
        .map(|(n, _)| n.clone())
        .collect();

    let budget = 20;
    let tune_subset = |knobs: Option<&[String]>, seed: u64| -> f64 {
        let sub = match knobs {
            Some(knobs) => {
                let mut b = autotune_space::Space::builder();
                for p in space.params() {
                    if knobs.contains(&p.name) {
                        b = b.add(p.clone());
                    }
                }
                b.build().expect("subset valid")
            }
            None => space.clone(),
        };
        let mut opt = BayesianOptimizer::gp(sub);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = f64::INFINITY;
        for _ in 0..budget {
            let c = opt.suggest(&mut rng);
            let mut full = space.default_config();
            for (name, value) in c.iter() {
                full.set(name.clone(), value.clone());
            }
            let e = target.evaluate(&full, &mut rng);
            opt.observe(
                &c,
                if e.cost.is_finite() {
                    e.cost.ln()
                } else {
                    f64::NAN
                },
            );
            if e.cost.is_finite() {
                best = best.min(e.cost);
            }
        }
        best
    };
    let n_seeds = 8;
    let avg = |knobs: Option<&[String]>| -> f64 {
        let runs: Vec<f64> = (0..n_seeds).map(|s| tune_subset(knobs, 700 + s)).collect();
        autotune_linalg::stats::median(&runs)
    };
    let pgo = avg(Some(&pgo_knobs));
    let anti = avg(Some(&anti_knobs));
    let all = avg(None);

    let mut rows: Vec<Vec<String>> = ranking
        .iter()
        .take(5)
        .map(|(n, s)| vec![n.clone(), format!("profile score {}", f(*s, 3))])
        .collect();
    rows.push(vec![
        format!("tune PGO top-3 {pgo_knobs:?}"),
        format!("{} ms", f(pgo, 4)),
    ]);
    rows.push(vec![
        format!("tune bottom-3 {anti_knobs:?}"),
        format!("{} ms", f(anti, 4)),
    ]);
    rows.push(vec!["tune all 12".into(), format!("{} ms", f(all, 4))]);

    let shape_holds = pgo < anti * 0.8 && pgo <= all * 1.5;
    Report {
        id: "E28",
        title: "Profile-guided knob prioritization (slide 68 opportunity)",
        headers: vec!["knob / subset", "value"],
        rows,
        paper_claim:
            "stack-profile hotspots identify the knobs worth tuning — with zero tuning history",
        measured: format!(
            "PGO top-3 {} vs bottom-3 {} vs all-knobs {} ms at {budget} trials",
            f(pgo, 4),
            f(anti, 4),
            f(all, 4)
        ),
        shape_holds,
    }
}

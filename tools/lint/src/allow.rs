//! The `// lint: allow(Dx) <reason>` escape hatch.
//!
//! An allow comment suppresses the named diagnostics **on its own line
//! only** — it is written trailing on the violating line, so every
//! surviving violation carries its justification at the site. A reason
//! is mandatory (an allow without one is itself a diagnostic), and an
//! allow that suppresses nothing is reported too, so stale suppressions
//! cannot accumulate silently.

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// One parsed allow comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Diagnostic codes this comment suppresses (e.g. `["D5"]`).
    pub codes: Vec<String>,
    /// 1-based line the comment sits on (and therefore suppresses).
    pub line: u32,
    /// Codes that actually matched a violation; filled by the rule pass.
    pub used: Vec<String>,
}

/// A malformed allow comment, reported as its own violation.
#[derive(Debug, Clone)]
pub struct MalformedAllow {
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: &'static str,
}

/// All allow comments of a file, keyed by line.
#[derive(Debug, Default)]
pub struct Allows {
    /// Well-formed allows by source line.
    pub by_line: BTreeMap<u32, Allow>,
    /// Comments that look like allows but do not parse.
    pub malformed: Vec<MalformedAllow>,
}

impl Allows {
    /// True (and records the use) when `code` is allowed on `line`.
    pub fn permits(&mut self, code: &str, line: u32) -> bool {
        if let Some(a) = self.by_line.get_mut(&line) {
            if a.codes.iter().any(|c| c == code) {
                if !a.used.iter().any(|c| c == code) {
                    a.used.push(code.to_string());
                }
                return true;
            }
        }
        false
    }

    /// Allows with at least one code that never fired.
    pub fn unused(&self) -> impl Iterator<Item = (&Allow, Vec<&str>)> {
        self.by_line.values().filter_map(|a| {
            let dead: Vec<&str> = a
                .codes
                .iter()
                .filter(|c| !a.used.contains(c))
                .map(|c| c.as_str())
                .collect();
            if dead.is_empty() {
                None
            } else {
                Some((a, dead))
            }
        })
    }
}

/// Extracts allow comments from a lexed file.
pub fn collect(toks: &[Tok]) -> Allows {
    let mut out = Allows::default();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow") else {
            out.malformed.push(MalformedAllow {
                line: t.line,
                problem: "expected `allow(..)` after `lint:`",
            });
            continue;
        };
        let rest = rest.trim_start();
        let (Some(open), Some(close)) = (rest.find('('), rest.find(')')) else {
            out.malformed.push(MalformedAllow {
                line: t.line,
                problem: "missing `(codes)` after `allow`",
            });
            continue;
        };
        if open != 0 || close < open {
            out.malformed.push(MalformedAllow {
                line: t.line,
                problem: "missing `(codes)` after `allow`",
            });
            continue;
        }
        let codes: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|c| c.trim().to_string())
            .filter(|c| !c.is_empty())
            .collect();
        let valid = !codes.is_empty()
            && codes.iter().all(|c| {
                c.starts_with('D')
                    && c[1..].chars().all(|d| d.is_ascii_digit())
                    && c[1..].parse::<u32>().is_ok_and(|n| (1..=12).contains(&n))
            });
        if !valid {
            out.malformed.push(MalformedAllow {
                line: t.line,
                problem: "codes must be D1..D12 (comma-separated)",
            });
            continue;
        }
        let reason = rest[close + 1..].trim();
        if reason.is_empty() {
            out.malformed.push(MalformedAllow {
                line: t.line,
                problem: "a reason is required after the code list",
            });
            continue;
        }
        out.by_line.insert(
            t.line,
            Allow {
                codes,
                line: t.line,
                used: Vec::new(),
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_codes_and_requires_reason() {
        let toks =
            lex("x(); // lint: allow(D5) lock poisoning propagates\ny(); // lint: allow(D4)");
        let allows = collect(&toks);
        assert_eq!(allows.by_line.len(), 1);
        assert!(allows.by_line.contains_key(&1));
        assert_eq!(allows.malformed.len(), 1);
        assert_eq!(allows.malformed[0].line, 2);
    }

    #[test]
    fn multiple_codes() {
        let toks = lex("x(); // lint: allow(D4, D5) scores proven finite above");
        let mut allows = collect(&toks);
        assert!(allows.permits("D4", 1));
        assert!(allows.permits("D5", 1));
        assert!(!allows.permits("D1", 1));
        assert!(!allows.permits("D4", 2));
        assert_eq!(allows.unused().count(), 0);
    }

    #[test]
    fn unused_codes_surface() {
        let toks = lex("x(); // lint: allow(D4, D5) only D5 fires here");
        let mut allows = collect(&toks);
        assert!(allows.permits("D5", 1));
        let unused: Vec<Vec<&str>> = allows.unused().map(|(_, dead)| dead).collect();
        assert_eq!(unused, vec![vec!["D4"]]);
    }

    #[test]
    fn unrelated_comments_ignored() {
        let toks = lex("// just a note about lint behaviour\nx();");
        let allows = collect(&toks);
        assert!(allows.by_line.is_empty());
        assert!(allows.malformed.is_empty());
    }

    #[test]
    fn bad_code_shape_is_malformed() {
        let toks = lex("x(); // lint: allow(D99) nope");
        let allows = collect(&toks);
        assert_eq!(allows.malformed.len(), 1);
    }
}

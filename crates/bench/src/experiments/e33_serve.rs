//! E33 (ROADMAP item 1, tuning-as-a-service): one process serves a fleet
//! of campaigns concurrently without perturbing any of them.
//!
//! Three claims, matching the serving layer's contract:
//!
//! * **Isolation** — N = 256 campaigns (mixed systems, workloads,
//!   schedules, optimizers, noise fleets and fault plans) interleaved
//!   through a [`CampaignRegistry`] produce trial histories byte-identical
//!   to running each campaign alone.
//! * **Durability** — snapshotting any campaign mid-flight (at an
//!   arbitrary scheduling round k) and replaying the snapshot into a
//!   fresh build continues to exactly the standalone history.
//! * **Throughput** — the registry's deterministic virtual-pool model
//!   shows ≥ 3× serving speedup from 1 → 8 workers on this fleet (the
//!   host's real core count is irrelevant: the model assigns measured
//!   benchmark seconds to virtual workers greedily, so the number is
//!   reproducible anywhere).

use crate::report::{f, Report};
use autotune::{Campaign, Objective, SchedulePolicy};
use autotune_serve::{CampaignRegistry, CampaignSpec, NoiseSpec, OptimizerKind, SystemKind};
use autotune_sim::{Environment, FaultPlan, NoiseConfig, Workload};

/// Fleet size for the headline experiment (and the `serve_fleet` bin).
pub const FLEET_N: usize = 256;

/// A deterministic mixed fleet: four simulated systems, three schedule
/// policies, random + BO optimizers, and a third of the campaigns on
/// noisy machine fleets with fault injection.
pub fn fleet_specs(n: usize) -> Vec<CampaignSpec> {
    (0..n)
        .map(|i| {
            let mut s = CampaignSpec::minimal(
                format!("tenant-{i}"),
                match i % 4 {
                    0 => SystemKind::Redis,
                    1 => SystemKind::Dbms,
                    2 => SystemKind::Spark,
                    _ => SystemKind::Nginx,
                },
                5 + i % 4,
                10_000 + i as u64,
            );
            s.workload = match i % 4 {
                0 => Workload::kv_cache(60_000.0),
                1 => Workload::tpcc(1_500.0),
                2 => Workload::tpch(8.0),
                _ => Workload::ycsb_b(40_000.0),
            };
            s.environment = Environment::small();
            s.objective = if i % 2 == 0 {
                Objective::MinimizeLatencyAvg
            } else {
                Objective::MinimizeLatencyP99
            };
            s.policy = match i % 3 {
                0 => SchedulePolicy::Sequential,
                1 => SchedulePolicy::SyncBatch { k: 3 },
                _ => SchedulePolicy::AsyncSlots { k: 2 },
            };
            s.optimizer = if i % 16 == 0 {
                OptimizerKind::BoGp
            } else {
                OptimizerKind::Random
            };
            if i % 3 == 2 {
                s.noise = Some(NoiseSpec {
                    n_machines: 3,
                    config: NoiseConfig::default(),
                    seed: 900 + i as u64,
                });
                s.faults = Some(FaultPlan::new(4_000 + i as u64));
            }
            s
        })
        .collect()
}

fn standalone_histories(specs: &[CampaignSpec]) -> Vec<String> {
    specs
        .iter()
        .map(|s| {
            let mut c = s.build();
            c.run();
            c.storage().to_json()
        })
        .collect()
}

/// Drives a fresh fleet to completion on `workers` virtual workers;
/// returns (per-campaign histories, serial seconds, makespan seconds).
fn drive_fleet(specs: &[CampaignSpec], workers: usize) -> (Vec<String>, f64, f64) {
    let mut reg = CampaignRegistry::new(workers);
    let ids: Vec<u64> = specs.iter().map(|s| reg.register_spec(s)).collect();
    reg.run_all().expect("fleet drive failed");
    let histories = ids
        .iter()
        .map(|id| {
            reg.campaign(*id)
                .expect("registered id")
                .storage()
                .to_json()
        })
        .collect();
    let fs = reg.fleet_stats();
    (histories, fs.virtual_serial_s, fs.virtual_makespan_s)
}

/// Snapshot every sampled campaign after `k` rounds, resume each into a
/// fresh build, run to completion, and count byte-identical histories.
fn resume_matches(
    specs: &[CampaignSpec],
    want: &[String],
    k: usize,
    sample_stride: usize,
) -> (usize, usize) {
    let mut reg = CampaignRegistry::new(4);
    let ids: Vec<u64> = specs.iter().map(|s| reg.register_spec(s)).collect();
    for _ in 0..k {
        if reg.n_active() == 0 {
            break;
        }
        reg.step_round().expect("round failed");
    }
    let mut checked = 0;
    let mut matched = 0;
    for (i, id) in ids.iter().enumerate().step_by(sample_stride) {
        let snap = reg.snapshot(*id).expect("snapshot at round boundary");
        let mut resumed =
            Campaign::resume(&snap, specs[i].build()).expect("resume into fresh build");
        resumed.run();
        checked += 1;
        if resumed.storage().to_json() == want[i] {
            matched += 1;
        }
    }
    (checked, matched)
}

/// Runs the experiment.
pub fn run() -> Report {
    let specs = fleet_specs(FLEET_N);
    let want = standalone_histories(&specs);

    let (served, _, makespan_8) = drive_fleet(&specs, 8);
    let identical = served.iter().zip(&want).filter(|(a, b)| a == b).count();

    let (_, serial_1, makespan_1) = drive_fleet(&specs, 1);
    let speedup = makespan_1 / makespan_8.max(1e-9);

    let (checked_a, matched_a) = resume_matches(&specs, &want, 2, 17);
    let (checked_b, matched_b) = resume_matches(&specs, &want, 6, 29);
    let checked = checked_a + checked_b;
    let matched = matched_a + matched_b;

    let rows = vec![
        vec![
            "interleaved == standalone".into(),
            format!("{identical}/{}", FLEET_N),
            "byte-identical trial histories".into(),
        ],
        vec![
            "snapshot/resume at k=2,6 rounds".into(),
            format!("{matched}/{checked}"),
            "resumed == straight-through".into(),
        ],
        vec![
            "virtual makespan, 1 worker".into(),
            format!("{} s", f(makespan_1, 0)),
            format!("serial work {} s", f(serial_1, 0)),
        ],
        vec![
            "virtual makespan, 8 workers".into(),
            format!("{} s", f(makespan_8, 0)),
            format!("{speedup:.2}x speedup"),
        ],
        vec![
            "serving rate at 8 workers".into(),
            format!(
                "{:.2} campaigns/ks",
                FLEET_N as f64 * 1_000.0 / makespan_8.max(1e-9)
            ),
            String::new(),
        ],
    ];
    let shape_holds = identical == FLEET_N && matched == checked && speedup >= 3.0;
    Report {
        id: "E33",
        title: "Serving a campaign fleet (ROADMAP: tuning-as-a-service)",
        headers: vec!["check", "result", "detail"],
        rows,
        paper_claim: "a tuning service multiplexes many campaigns without changing any campaign's outcome",
        measured: format!(
            "{identical}/{} interleaved histories byte-identical, {matched}/{checked} resumes exact, {speedup:.2}x virtual speedup 1→8 workers",
            FLEET_N
        ),
        shape_holds,
    }
}

//! D6 fixture: stdout/stderr writes from a library crate.

pub fn report(cost: f64) {
    println!("cost = {cost}");
    if cost.is_nan() {
        eprintln!("crashed trial");
    }
    let _ = dbg!(cost);
}

//! E23 (slides 82-83): workload shifting — context-aware tuning (hybrid
//! bandit scoped by detected regime, OPPerTune-style) vs a context-free
//! bandit, on a workload that flips between traffic classes.

use crate::report::{f, Report};
use autotune::{static_config_cost, Objective, OnlineTuner, OnlineTunerConfig, Target};
use autotune_optimizer::bandit::{Bandit, BanditPolicy};
use autotune_sim::{DbmsSim, Environment, Workload, WorkloadSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run() -> Report {
    let target = Target::simulated(
        Box::new(DbmsSim::new()),
        Workload::ycsb_c(2_000.0),
        Environment::medium(),
        Objective::MinimizeLatencyAvg,
    );
    // Alternating phases: the best arm flips every 60 steps.
    let schedule = WorkloadSchedule::new(vec![
        (60, Workload::ycsb_c(2_000.0)),
        (60, Workload::ycsb_a(2_000.0)),
        (60, Workload::ycsb_c(2_000.0)),
        (60, Workload::ycsb_a(2_000.0)),
    ]);
    let steps = 240;
    let base = target.space().default_config().with("buffer_pool_gb", 8.0);
    let candidates = vec![
        base.clone().with("query_cache", true),
        base.clone()
            .with("query_cache", false)
            .with("log_file_size_mb", 2048.0),
    ];

    // Context-aware: regime-scoped hybrid bandit with shift detection.
    let mut aware = OnlineTuner::new(candidates.clone(), OnlineTunerConfig::default());
    aware.run(&target, &schedule, steps, 5);
    let aware_cost = aware.cumulative_cost();
    let shifts = aware.detected_shifts();

    // Context-free: one global bandit, no shift detection.
    let mut global = Bandit::new(candidates.len(), BanditPolicy::Thompson);
    let mut rng = StdRng::seed_from_u64(5);
    let mut free_cost = 0.0;
    for t in 0..steps {
        let arm = global.select(&mut rng);
        let e = target.evaluate_at(&candidates[arm], Some(schedule.at(t)), &mut rng);
        if e.cost.is_finite() {
            free_cost += e.cost;
            global.update(arm, e.cost);
        } else {
            global.update(arm, 1e6);
        }
    }

    // Static baselines.
    let stat0 = static_config_cost(&target, &candidates[0], &schedule, steps, 5);
    let stat1 = static_config_cost(&target, &candidates[1], &schedule, steps, 5);

    let rows = vec![
        vec!["context-aware (hybrid)".into(), f(aware_cost, 2)],
        vec!["context-free bandit".into(), f(free_cost, 2)],
        vec!["static cache=on".into(), f(stat0, 2)],
        vec!["static cache=off".into(), f(stat1, 2)],
        vec![
            "detected shifts".into(),
            format!("{shifts:?} (true: [60,120,180])"),
        ],
    ];
    let detects = [60usize, 120, 180]
        .iter()
        .all(|&b| shifts.iter().any(|&s| s >= b && s <= b + 20));
    let shape_holds = aware_cost < free_cost && detects;
    Report {
        id: "E23",
        title: "Workload shifting: context-aware vs context-free (slides 82-83)",
        headers: vec!["policy", "cumulative latency cost"],
        rows,
        paper_claim: "contextual tuning dominates context-free once the workload shifts",
        measured: format!(
            "aware {} vs free {}; shifts detected near every true boundary: {detects}",
            f(aware_cost, 2),
            f(free_cost, 2)
        ),
        shape_holds,
    }
}

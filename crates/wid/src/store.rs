//! Nearest-neighbour configuration reuse (tutorial slide 92: "apply
//! optimized configurations to other similar systems").
//!
//! A [`ConfigStore`] remembers `(workload embedding, tuned config, score)`
//! triples from past tuning campaigns. A new workload is matched to its
//! nearest stored neighbour; if the match is close enough, the stored
//! config is recommended outright (zero new trials), otherwise it becomes
//! a warm start.

use autotune_space::Config;
use serde::{Deserialize, Serialize};

/// One remembered tuning outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredConfig {
    /// Human-readable workload label (for reports).
    pub label: String,
    /// Embedding of the workload the config was tuned for.
    pub embedding: Vec<f64>,
    /// The tuned configuration.
    pub config: Config,
    /// The objective it achieved (minimization convention).
    pub score: f64,
}

/// A similarity-indexed store of tuned configurations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConfigStore {
    entries: Vec<StoredConfig>,
}

impl ConfigStore {
    /// Empty store.
    pub fn new() -> Self {
        ConfigStore::default()
    }

    /// Records a tuning outcome.
    pub fn insert(&mut self, entry: StoredConfig) {
        self.entries.push(entry);
    }

    /// Number of stored outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[StoredConfig] {
        &self.entries
    }

    /// The stored entry nearest to `embedding`, with its distance.
    pub fn nearest(&self, embedding: &[f64]) -> Option<(&StoredConfig, f64)> {
        self.entries
            .iter()
            .map(|e| {
                let d = autotune_linalg::squared_distance(&e.embedding, embedding).sqrt();
                (e, d)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Recommends a configuration for a new workload: `Some` when the
    /// nearest stored workload is within `max_distance`.
    pub fn recommend(&self, embedding: &[f64], max_distance: f64) -> Option<&StoredConfig> {
        self.nearest(embedding)
            .filter(|(_, d)| *d <= max_distance)
            .map(|(e, _)| e)
    }

    /// The `k` nearest entries, closest first — warm-start donors for a
    /// fresh optimization.
    pub fn k_nearest(&self, embedding: &[f64], k: usize) -> Vec<(&StoredConfig, f64)> {
        let mut scored: Vec<(&StoredConfig, f64)> = self
            .entries
            .iter()
            .map(|e| {
                let d = autotune_linalg::squared_distance(&e.embedding, embedding).sqrt();
                (e, d)
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, emb: &[f64], score: f64) -> StoredConfig {
        StoredConfig {
            label: label.to_string(),
            embedding: emb.to_vec(),
            config: Config::new().with("x", score),
            score,
        }
    }

    #[test]
    fn nearest_finds_closest() {
        let mut store = ConfigStore::new();
        store.insert(entry("oltp", &[0.0, 0.0], 1.0));
        store.insert(entry("olap", &[10.0, 10.0], 2.0));
        let (e, d) = store.nearest(&[1.0, 0.0]).unwrap();
        assert_eq!(e.label, "oltp");
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recommend_respects_distance_gate() {
        let mut store = ConfigStore::new();
        store.insert(entry("oltp", &[0.0, 0.0], 1.0));
        assert!(store.recommend(&[0.5, 0.0], 1.0).is_some());
        assert!(store.recommend(&[5.0, 0.0], 1.0).is_none());
    }

    #[test]
    fn k_nearest_ordered() {
        let mut store = ConfigStore::new();
        store.insert(entry("a", &[0.0], 1.0));
        store.insert(entry("b", &[2.0], 1.0));
        store.insert(entry("c", &[5.0], 1.0));
        let near = store.k_nearest(&[1.0], 2);
        assert_eq!(near.len(), 2);
        assert_eq!(near[0].0.label, "a");
        assert_eq!(near[1].0.label, "b");
        // k larger than store size: everything, still ordered.
        assert_eq!(store.k_nearest(&[1.0], 10).len(), 3);
    }

    #[test]
    fn empty_store_recommends_nothing() {
        let store = ConfigStore::new();
        assert!(store.nearest(&[0.0]).is_none());
        assert!(store.recommend(&[0.0], 1e9).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let mut store = ConfigStore::new();
        store.insert(entry("a", &[1.0, 2.0], 3.0));
        let json = serde_json::to_string(&store).unwrap();
        let back: ConfigStore = serde_json::from_str(&json).unwrap();
        assert_eq!(store.entries(), back.entries());
    }
}

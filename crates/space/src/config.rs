//! Concrete configurations: assignments of values to parameters.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single parameter value.
///
/// The variants mirror [`crate::Domain`]: numeric knobs carry `Float` or
/// `Int`, categorical knobs carry the chosen category string, boolean knobs
/// carry `Bool`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Continuous value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// Chosen category (by name, not index, so configs stay readable when
    /// serialized into trial history).
    Cat(String),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Numeric view of the value: ints and floats as themselves, bools as
    /// 0/1. Returns `None` for categoricals, which have no numeric meaning.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Cat(_) => None,
        }
    }

    /// The category name, if this is a categorical value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Cat(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Cat(v.to_string())
    }
}

/// A full configuration: a name → value map.
///
/// Backed by a `BTreeMap` so iteration order (and therefore serialization
/// and hashing of the rendered form) is deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Config {
    values: BTreeMap<String, Value>,
}

impl Config {
    /// Empty configuration.
    pub fn new() -> Self {
        Config::default()
    }

    /// Sets a value, replacing any previous assignment.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.values.insert(name.into(), value.into());
    }

    /// Builder-style [`Config::set`].
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Looks a value up by parameter name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Numeric view of a parameter, if present and numeric.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// Categorical view of a parameter, if present and categorical.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Boolean view of a parameter, if present and boolean.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(Value::as_bool)
    }

    /// Integer view of a parameter, if present and integer.
    pub fn get_i64(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_i64)
    }

    /// Removes a value (used when deactivating conditional parameters).
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.values.remove(name)
    }

    /// Number of assigned parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.values.iter()
    }

    /// A stable, human-readable one-line rendering, e.g.
    /// `a=1, b=fsync, c=true`. Used as a dedup key by trial storage.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .values
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        parts.join(", ")
    }
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}}}", self.render())
    }
}

impl FromIterator<(String, Value)> for Config {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Config {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut c = Config::new();
        c.set("x", 1.5);
        c.set("n", 42i64);
        c.set("mode", "fast");
        c.set("jit", true);
        assert_eq!(c.get_f64("x"), Some(1.5));
        assert_eq!(c.get_i64("n"), Some(42));
        assert_eq!(c.get_str("mode"), Some("fast"));
        assert_eq!(c.get_bool("jit"), Some(true));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn numeric_view_of_bool_and_int() {
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Bool(false).as_f64(), Some(0.0));
        assert_eq!(Value::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::Cat("x".into()).as_f64(), None);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let c = Config::new().with("zeta", 1.0).with("alpha", 2i64);
        assert_eq!(c.render(), "alpha=2, zeta=1");
    }

    #[test]
    fn overwrite_replaces() {
        let mut c = Config::new();
        c.set("x", 1.0);
        c.set("x", 2.0);
        assert_eq!(c.get_f64("x"), Some(2.0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_and_empty() {
        let mut c = Config::new().with("x", 1.0);
        assert!(!c.is_empty());
        assert_eq!(c.remove("x"), Some(Value::Float(1.0)));
        assert!(c.is_empty());
        assert_eq!(c.remove("x"), None);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Config::new()
            .with("bp", 4.0)
            .with("flush", "O_DIRECT")
            .with("threads", 8i64);
        let json = serde_json::to_string(&c).unwrap();
        let back: Config = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn from_iterator_collects() {
        let c: Config = vec![
            ("a".to_string(), Value::Float(1.0)),
            ("b".to_string(), Value::Bool(false)),
        ]
        .into_iter()
        .collect();
        assert_eq!(c.len(), 2);
    }
}

//! Knowledge transfer between tuning campaigns (tutorial slide 67).
//!
//! The policy table from the slide:
//!
//! | Sample quality | Action |
//! |---|---|
//! | Good (low cost) | reuse from *similar* workloads, keep the score |
//! | Poor (mediocre) | keep exploring — could be good in the new context |
//! | Bad (crash) | reuse **everywhere**: a config that crashes the system probably always does; score it `N x worst` so the optimizer avoids the region |
//!
//! [`transfer_observations`] rewrites a donor history into observations a
//! fresh optimizer can be warm-started with, applying that policy.

use crate::{Trial, TrialStatus};
use autotune_optimizer::Observation;
use serde::{Deserialize, Serialize};

/// How donor trials map into the new campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferPolicy {
    /// Keep only the best `good_fraction` of completed donor trials
    /// (good samples transfer; mediocre ones mislead more than they help
    /// when the context differs).
    pub good_fraction: f64,
    /// Crash score multiplier: crashes import at
    /// `crash_penalty x worst_donor_cost`.
    pub crash_penalty: f64,
    /// Import crashes even when contexts differ (slide 67: "bad samples:
    /// reuse everywhere").
    pub always_transfer_crashes: bool,
}

impl Default for TransferPolicy {
    fn default() -> Self {
        TransferPolicy {
            good_fraction: 0.3,
            crash_penalty: 2.0,
            always_transfer_crashes: true,
        }
    }
}

/// Rewrites a donor trial history into warm-start observations.
///
/// `context_compatible` declares whether the donor's environment/workload
/// is similar enough for *good* scores to transfer (crashes transfer
/// regardless when the policy says so).
pub fn transfer_observations(
    donor: &[Trial],
    policy: &TransferPolicy,
    context_compatible: bool,
) -> Vec<Observation> {
    let mut completed: Vec<&Trial> = donor
        .iter()
        .filter(|t| t.status == TrialStatus::Complete && t.cost.is_finite())
        .collect();
    completed.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    let worst = completed.last().map_or(1.0, |t| t.cost);

    let mut out = Vec::new();
    if context_compatible {
        let keep =
            ((completed.len() as f64 * policy.good_fraction).ceil() as usize).min(completed.len());
        for t in &completed[..keep] {
            out.push(Observation {
                config: t.config.clone(),
                value: t.cost,
            });
        }
    }
    if context_compatible || policy.always_transfer_crashes {
        let crash_score = policy.crash_penalty * worst.abs().max(1.0) + worst.max(0.0);
        for t in donor.iter().filter(|t| t.status == TrialStatus::Crashed) {
            out.push(Observation {
                config: t.config.clone(),
                value: crash_score,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::Config;

    fn history() -> Vec<Trial> {
        let mut trials = Vec::new();
        for (i, cost) in [5.0, 1.0, 9.0, 3.0].iter().enumerate() {
            trials.push(Trial::complete(
                Config::new().with("x", i as f64),
                *cost,
                10.0,
            ));
        }
        trials.push(Trial::crashed(Config::new().with("x", 99.0), 2.0));
        trials
    }

    #[test]
    fn compatible_context_keeps_best_fraction_and_crashes() {
        let obs = transfer_observations(&history(), &TransferPolicy::default(), true);
        // 30% of 4 completed = 2 best (costs 1, 3) + 1 crash.
        assert_eq!(obs.len(), 3);
        let values: Vec<f64> = obs.iter().map(|o| o.value).collect();
        assert!(values.contains(&1.0));
        assert!(values.contains(&3.0));
        // Crash scored beyond the worst observed cost.
        let crash = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            crash > 9.0,
            "crash score {crash} must exceed worst donor cost"
        );
    }

    #[test]
    fn incompatible_context_transfers_only_crashes() {
        let obs = transfer_observations(&history(), &TransferPolicy::default(), false);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].config.get_f64("x"), Some(99.0));
        assert!(obs[0].value > 9.0);
    }

    #[test]
    fn crash_transfer_can_be_disabled() {
        let policy = TransferPolicy {
            always_transfer_crashes: false,
            ..Default::default()
        };
        let obs = transfer_observations(&history(), &policy, false);
        assert!(obs.is_empty());
    }

    #[test]
    fn empty_donor_history_is_fine() {
        let obs = transfer_observations(&[], &TransferPolicy::default(), true);
        assert!(obs.is_empty());
    }

    #[test]
    fn warm_start_accelerates_bo_on_same_function() {
        use autotune_optimizer::{BayesianOptimizer, Optimizer};
        use autotune_space::{Param, Space};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let space = Space::builder()
            .add(Param::float("x", -3.0, 3.0))
            .add(Param::float("y", -3.0, 3.0))
            .build()
            .unwrap();
        let f = |c: &Config| {
            (c.get_f64("x").unwrap() - 1.0).powi(2) + (c.get_f64("y").unwrap() + 1.0).powi(2)
        };
        // Donor campaign.
        let mut donor_trials = Vec::new();
        {
            let mut opt = BayesianOptimizer::gp(space.clone());
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..25 {
                let cfg = opt.suggest(&mut rng);
                let v = f(&cfg);
                opt.observe(&cfg, v);
                donor_trials.push(Trial::complete(cfg, v, 1.0));
            }
        }
        let budget = 8;
        // Transfer the whole donor history: the surrogate needs contrast
        // (good AND bad regions) to exploit rather than explore.
        let policy = TransferPolicy {
            good_fraction: 1.0,
            ..Default::default()
        };
        let run = |warm: bool, seed: u64| {
            let mut opt = BayesianOptimizer::gp(space.clone());
            if warm {
                let obs = transfer_observations(&donor_trials, &policy, true);
                opt.warm_start(&obs);
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut best = f64::INFINITY;
            for _ in 0..budget {
                let cfg = opt.suggest(&mut rng);
                let v = f(&cfg);
                opt.observe(&cfg, v);
                best = best.min(v);
            }
            best
        };
        // Averaged over seeds to tame noise.
        let cold: f64 = (0..4).map(|s| run(false, 50 + s)).sum::<f64>() / 4.0;
        let warm: f64 = (0..4).map(|s| run(true, 50 + s)).sum::<f64>() / 4.0;
        assert!(
            warm < cold,
            "warm start ({warm}) should beat cold start ({cold}) at a tiny budget"
        );
    }
}

//! Actor–critic with linear function approximation (tutorial slide 79).
//!
//! * **Actor** — softmax policy `π(a|s) ∝ exp(wₐ·φ(s))` over discrete
//!   actions, updated by the policy gradient;
//! * **Critic** — linear state-value function `V(s) = v·φ(s)`, updated by
//!   TD(0); the TD error `δ = r + γV(s') − V(s)` is the advantage signal
//!   fed to the actor.
//!
//! Feature vectors `φ(s)` are whatever the caller supplies — telemetry
//! snapshots, workload embeddings from `autotune-wid`, or one-hot state
//! indicators.

use crate::{Result, RlError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`ActorCritic`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorCriticConfig {
    /// Actor learning rate.
    pub alpha_actor: f64,
    /// Critic learning rate.
    pub alpha_critic: f64,
    /// Discount factor γ ∈ [0, 1).
    pub gamma: f64,
}

impl Default for ActorCriticConfig {
    fn default() -> Self {
        ActorCriticConfig {
            alpha_actor: 0.05,
            alpha_critic: 0.1,
            gamma: 0.9,
        }
    }
}

/// Linear actor–critic agent over `n_actions` discrete actions and
/// `n_features`-dimensional state features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorCritic {
    n_features: usize,
    n_actions: usize,
    /// Actor weights, row per action.
    actor_w: Vec<Vec<f64>>,
    /// Critic weights.
    critic_w: Vec<f64>,
    config: ActorCriticConfig,
}

impl ActorCritic {
    /// Creates a zero-initialized agent.
    pub fn new(n_features: usize, n_actions: usize, config: ActorCriticConfig) -> Self {
        assert!(
            n_features > 0 && n_actions > 0,
            "dimensions must be positive"
        );
        assert!((0.0..1.0).contains(&config.gamma), "gamma must be in [0,1)");
        ActorCritic {
            n_features,
            n_actions,
            actor_w: vec![vec![0.0; n_features]; n_actions],
            critic_w: vec![0.0; n_features],
            config,
        }
    }

    fn check_features(&self, phi: &[f64]) -> Result<()> {
        if phi.len() != self.n_features {
            return Err(RlError::FeatureDimension {
                expected: self.n_features,
                actual: phi.len(),
            });
        }
        Ok(())
    }

    /// The policy distribution `π(·|s)` at features `phi`.
    pub fn policy(&self, phi: &[f64]) -> Result<Vec<f64>> {
        self.check_features(phi)?;
        let logits: Vec<f64> = self
            .actor_w
            .iter()
            .map(|w| w.iter().zip(phi).map(|(&wi, &p)| wi * p).sum::<f64>())
            .collect();
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        Ok(exps.into_iter().map(|e| e / z).collect())
    }

    /// Samples an action from the softmax policy.
    pub fn select_action(&self, phi: &[f64], rng: &mut impl Rng) -> Result<usize> {
        let probs = self.policy(phi)?;
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (a, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return Ok(a);
            }
        }
        Ok(probs.len() - 1)
    }

    /// The most probable action (deployment mode).
    pub fn greedy_action(&self, phi: &[f64]) -> Result<usize> {
        let probs = self.policy(phi)?;
        Ok(probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("n_actions > 0")) // lint: allow(D5) n_actions asserted nonzero at construction
    }

    /// Critic's state-value estimate `V(s)`.
    pub fn value(&self, phi: &[f64]) -> Result<f64> {
        self.check_features(phi)?;
        Ok(self.critic_w.iter().zip(phi).map(|(&w, &p)| w * p).sum())
    }

    /// One TD(0) actor-critic update for the transition
    /// `(phi, action, reward, phi_next)`. Returns the TD error δ.
    pub fn update(
        &mut self,
        phi: &[f64],
        action: usize,
        reward: f64,
        phi_next: &[f64],
    ) -> Result<f64> {
        self.check_features(phi)?;
        self.check_features(phi_next)?;
        if action >= self.n_actions {
            return Err(RlError::IndexOutOfRange {
                what: "action",
                index: action,
                bound: self.n_actions,
            });
        }
        let v = self.value(phi)?;
        let v_next = self.value(phi_next)?;
        let delta = reward + self.config.gamma * v_next - v;
        // Critic: v += α_c δ φ(s).
        for (w, &p) in self.critic_w.iter_mut().zip(phi) {
            *w += self.config.alpha_critic * delta * p;
        }
        // Actor: ∇ log π(a|s) = φ(s) (1{a=b} − π(b|s)) for each action b.
        let probs = self.policy(phi)?;
        for (b, w_row) in self.actor_w.iter_mut().enumerate() {
            let indicator = if b == action { 1.0 } else { 0.0 };
            let coeff = self.config.alpha_actor * delta * (indicator - probs[b]);
            for (w, &p) in w_row.iter_mut().zip(phi) {
                *w += coeff * p;
            }
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Contextual task: in context A (phi=[1,0]) action 0 pays, in context
    /// B (phi=[0,1]) action 1 pays. The agent must learn a context-
    /// dependent policy — exactly the "workload shifting" structure of
    /// online tuning.
    #[test]
    fn learns_context_dependent_policy() {
        let mut agent = ActorCritic::new(2, 2, ActorCriticConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let contexts = [[1.0, 0.0], [0.0, 1.0]];
        for step in 0..4000 {
            let ctx = contexts[step % 2];
            let a = agent.select_action(&ctx, &mut rng).unwrap();
            let good = (ctx[0] > 0.5 && a == 0) || (ctx[1] > 0.5 && a == 1);
            let r = if good { 1.0 } else { -1.0 };
            agent.update(&ctx, a, r, &ctx).unwrap();
        }
        assert_eq!(agent.greedy_action(&contexts[0]).unwrap(), 0);
        assert_eq!(agent.greedy_action(&contexts[1]).unwrap(), 1);
        // Policy should be decisive.
        let p = agent.policy(&contexts[0]).unwrap();
        assert!(p[0] > 0.85, "policy not decisive: {p:?}");
    }

    #[test]
    fn critic_tracks_values() {
        let mut agent = ActorCritic::new(1, 1, ActorCriticConfig::default());
        // Single state, single action, constant reward 2: V -> r/(1-γ)·(1-γ)
        // Under TD(0) with a self-loop, V converges to r / (1 − γ).
        for _ in 0..3000 {
            agent.update(&[1.0], 0, 2.0, &[1.0]).unwrap();
        }
        let v = agent.value(&[1.0]).unwrap();
        assert!(
            (v - 20.0).abs() < 1.0,
            "V {v} should approach 2/(1-0.9) = 20"
        );
    }

    #[test]
    fn policy_is_a_distribution() {
        let agent = ActorCritic::new(3, 4, ActorCriticConfig::default());
        let p = agent.policy(&[0.2, -0.4, 1.0]).unwrap();
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn td_error_shrinks_with_learning() {
        let mut agent = ActorCritic::new(1, 1, ActorCriticConfig::default());
        let first = agent.update(&[1.0], 0, 1.0, &[1.0]).unwrap().abs();
        for _ in 0..2000 {
            agent.update(&[1.0], 0, 1.0, &[1.0]).unwrap();
        }
        let last = agent.update(&[1.0], 0, 1.0, &[1.0]).unwrap().abs();
        assert!(
            last < first * 0.1,
            "TD error {last} did not shrink from {first}"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut agent = ActorCritic::new(2, 2, ActorCriticConfig::default());
        assert!(matches!(
            agent.policy(&[1.0]),
            Err(RlError::FeatureDimension { .. })
        ));
        assert!(agent.update(&[1.0, 0.0], 5, 0.0, &[1.0, 0.0]).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let mut agent = ActorCritic::new(2, 2, ActorCriticConfig::default());
        agent.update(&[1.0, 0.0], 0, 1.0, &[0.0, 1.0]).unwrap();
        let json = serde_json::to_string(&agent).unwrap();
        let back: ActorCritic = serde_json::from_str(&json).unwrap();
        assert_eq!(
            agent.policy(&[1.0, 0.0]).unwrap(),
            back.policy(&[1.0, 0.0]).unwrap()
        );
    }
}

//! Serialization half of the stub: [`Serialize`] and [`Serializer`].

use crate::content::{to_content, Content};

/// Errors produced by serializers.
pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
    /// Builds an error from a message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A sink for one serialized value. The stub's data model is a built
/// [`Content`] tree, delivered through [`Serializer::serialize_content`];
/// the named `serialize_*` helpers exist for hand-written impls (e.g.
/// `nan_as_null`).
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully built value tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes `None` / null.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }

    /// Serializes `Some(value)` (transparently, like serde's JSON form).
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(to_content(value))
    }

    /// Serializes a unit / null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v))
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_string()))
    }
}

/// A value that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

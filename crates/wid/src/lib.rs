//! Workload identification (tutorial slides 88-93).
//!
//! "Systems with similar workloads can benefit from the same optimal
//! config": optimize one system, identify similar ones, reuse the tuned
//! configuration. The pieces:
//!
//! * [`Fingerprint`] — featurization of a workload from its telemetry time
//!   series and operation mix (slide 90's "data to embed");
//! * [`Embedder`] — standardization + PCA (or random projection) into a
//!   compact embedding space (slide 89);
//! * [`KMeans`] — clustering of embeddings into workload families;
//! * [`ConfigStore`] — nearest-neighbour reuse of tuned configurations
//!   (slide 92's "knowledge transfer" application);
//! * [`ShiftDetector`] — CUSUM-style detection of workload change over
//!   time (slide 92's "workload shift detection");
//! * [`synthesize_mixture`] — synthetic benchmark generation: find the
//!   mixture of base benchmarks whose fingerprint best matches production
//!   telemetry (slide 92, Stitcher-style);
//! * [`StreamingClusters`] — online nearest-centroid assignment of incoming
//!   fingerprints to workload families, spawning a new family past a
//!   distance threshold (the routing layer of the serve-time config cache);
//! * [`TenantFleet`] — synthetic Zipf-popularity tenant populations drawn
//!   from workload-family mixtures, for exercising cache hit rates.

mod cluster;
mod embedding;
mod fingerprint;
mod shift;
mod store;
mod synth;

pub use cluster::{purity, KMeans, StreamAssignment, StreamCentroid, StreamingClusters};
pub use embedding::{Embedder, EmbedderKind};
pub use fingerprint::Fingerprint;
pub use shift::{ShiftDetector, ShiftDetectorConfig};
pub use store::{ConfigStore, StoredConfig};
pub use synth::{synthesize_mixture, Tenant, TenantFleet, TenantFleetConfig};

/// Errors produced by workload-identification components.
#[derive(Debug, Clone, PartialEq)]
pub enum WidError {
    /// Not enough data to fit the requested model.
    NotEnoughData {
        /// What was being fitted.
        what: &'static str,
        /// Samples required.
        needed: usize,
        /// Samples available.
        got: usize,
    },
    /// Feature vectors disagree in dimension.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// The underlying linear algebra failed to converge.
    Numerical(String),
}

impl std::fmt::Display for WidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WidError::NotEnoughData { what, needed, got } => {
                write!(f, "not enough data for {what}: need {needed}, got {got}")
            }
            WidError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            WidError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for WidError {}

/// Convenience alias for results from this crate.
pub type Result<T> = std::result::Result<T, WidError>;
